//! Dark-silicon estimation — the paper's primary contribution.
//!
//! This crate glues the substrates together into the Figure 1 tool
//! flow: application profiles and a scaled power model feed a mapping
//! onto a floorplan, the thermal model evaluates it, and the result is
//! a dark-silicon estimate under a chosen constraint:
//!
//! * [`DarkSiliconEstimator::under_power_budget`] — the conventional
//!   TDP-constrained estimate (§3.1, Figure 5), optionally revealing
//!   that the budget *violates* the DTM threshold (optimistic TDP) or
//!   leaves thermal headroom unused (pessimistic TDP),
//! * [`DarkSiliconEstimator::under_temperature_constraint`] — the
//!   paper's proposed estimate: keep mapping until the peak temperature
//!   reaches `T_DTM` (§3.2, Figure 6),
//! * [`scenarios`] — the two DVFS scenarios of §3.3 (Figure 7):
//!   nominal frequency with 8 threads everywhere, vs per-application
//!   (threads, V/f) selection by TLP/ILP characteristics,
//! * [`tsp_eval`] — system performance under TSP budgets across
//!   technology nodes (§5, Figure 10),
//! * [`dtm`] — the reactive Dynamic Thermal Management response that
//!   optimistic TDP values provoke, quantifying the *hidden* dark
//!   silicon the budget view undercounts (§3.1),
//! * [`sensitivity`] — dark silicon as a function of the cooling
//!   solution (laptop / desktop / server packages), the corollary of
//!   treating dark silicon thermally,
//! * [`pareto`] — the full (threads, V/f) configuration space of §3.3
//!   and its thermally feasible performance/power Pareto frontier.
//!
//! # Examples
//!
//! ```no_run
//! use darksil_core::DarkSiliconEstimator;
//! use darksil_power::TechnologyNode;
//! use darksil_units::{Hertz, Watts};
//! use darksil_workload::ParsecApp;
//!
//! let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)?;
//! let tdp = est.under_power_budget(
//!     ParsecApp::Swaptions,
//!     8,
//!     Hertz::from_ghz(3.6),
//!     Watts::new(185.0),
//! )?;
//! let thermal = est.under_temperature_constraint(
//!     ParsecApp::Swaptions,
//!     8,
//!     Hertz::from_ghz(3.6),
//! )?;
//! // Observation 1: the temperature-constrained estimate lights more
//! // cores than the pessimistic TDP estimate.
//! assert!(thermal.dark_fraction <= tdp.dark_fraction);
//! # Ok::<(), darksil_core::EstimateError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dtm;
mod estimator;
pub mod pareto;
pub mod scenarios;
pub mod sensitivity;
pub mod tsp_eval;

pub use estimator::{DarkSiliconEstimator, Estimate, EstimateError};
