//! The dark-silicon estimator.

use std::error::Error;
use std::fmt;

use darksil_mapping::{place_contiguous, Mapping, MappingError, Platform};
use darksil_power::{PowerError, TechnologyNode, VfLevel};
use darksil_thermal::ThermalError;
use darksil_units::{Celsius, Gips, Hertz, Watts};
use darksil_workload::{AppInstance, ParsecApp, Workload, WorkloadError};

/// Errors produced by estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The requested frequency is not on the platform's DVFS ladder.
    UnknownLevel {
        /// Requested frequency in GHz.
        ghz: f64,
    },
    /// Propagated mapping/platform failure.
    Mapping(MappingError),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownLevel { ghz } => {
                write!(
                    f,
                    "frequency {ghz} GHz is not a DVFS level of this platform"
                )
            }
            Self::Mapping(e) => write!(f, "estimation failed: {e}"),
        }
    }
}

impl Error for EstimateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Mapping(e) => Some(e),
            Self::UnknownLevel { .. } => None,
        }
    }
}

impl From<MappingError> for EstimateError {
    fn from(e: MappingError) -> Self {
        Self::Mapping(e)
    }
}

impl From<WorkloadError> for EstimateError {
    fn from(e: WorkloadError) -> Self {
        Self::Mapping(MappingError::Workload(e))
    }
}

impl From<ThermalError> for EstimateError {
    fn from(e: ThermalError) -> Self {
        Self::Mapping(MappingError::Thermal(e))
    }
}

impl From<PowerError> for EstimateError {
    fn from(e: PowerError) -> Self {
        Self::Mapping(MappingError::Power(e))
    }
}

/// The outcome of one dark-silicon estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Cores running threads.
    pub active_cores: usize,
    /// Cores left dark.
    pub dark_cores: usize,
    /// `dark_cores / total`.
    pub dark_fraction: f64,
    /// Total chip power at the converged temperatures.
    pub total_power: Watts,
    /// Peak steady-state die temperature.
    pub peak_temperature: Celsius,
    /// Whether the peak exceeds the DTM threshold — true for
    /// "optimistic" TDP values (Observation 1).
    pub thermal_violation: bool,
    /// Total system throughput.
    pub total_gips: Gips,
}

/// The Figure 1 tool flow as a queryable object.
#[derive(Debug, Clone)]
pub struct DarkSiliconEstimator {
    platform: Platform,
}

impl DarkSiliconEstimator {
    /// Wraps an existing platform.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Self { platform }
    }

    /// Builds the paper's platform for a node (see
    /// [`Platform::for_node`]).
    ///
    /// # Errors
    ///
    /// Propagates platform-construction failures.
    pub fn for_node(node: TechnologyNode) -> Result<Self, EstimateError> {
        Ok(Self::new(Platform::for_node(node)?))
    }

    /// The underlying platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Resolves a frequency to a ladder level.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownLevel`] if `f` is not on the
    /// ladder (within 1 MHz).
    pub fn level_for(&self, f: Hertz) -> Result<VfLevel, EstimateError> {
        self.platform
            .dvfs()
            .levels()
            .iter()
            .find(|l| (l.frequency - f).abs() < Hertz::from_mhz(1.0))
            .copied()
            .ok_or(EstimateError::UnknownLevel { ghz: f.as_ghz() })
    }

    /// Evaluates a mapping into an [`Estimate`] (fixed-point thermal
    /// solve included).
    fn evaluate(&self, mapping: &Mapping) -> Result<Estimate, EstimateError> {
        let map = if mapping.entries().is_empty() {
            None
        } else {
            Some(mapping.steady_temperatures(&self.platform)?)
        };
        let (peak, power) = match &map {
            Some(m) => {
                let temps: Vec<Celsius> = m.die_temperatures().collect();
                let total: Watts = mapping.power_map_at(&self.platform, &temps).iter().sum();
                (m.peak(), total)
            }
            None => (self.platform.thermal().ambient(), Watts::zero()),
        };
        Ok(Estimate {
            active_cores: mapping.active_core_count(),
            dark_cores: mapping.dark_core_count(),
            dark_fraction: mapping.dark_fraction(),
            total_power: power,
            peak_temperature: peak,
            thermal_violation: peak > self.platform.t_dtm(),
            total_gips: mapping.total_gips(&self.platform),
        })
    }

    /// Dark silicon as a **power budget** constraint (§3.1): map
    /// `threads`-thread instances of `app` at the given frequency until
    /// the next instance would exceed `tdp`, then report the result —
    /// including whether the budget choice violates the thermal
    /// threshold.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownLevel`] for off-ladder
    /// frequencies and propagates mapping/thermal failures.
    pub fn under_power_budget(
        &self,
        app: ParsecApp,
        threads: usize,
        frequency: Hertz,
        tdp: Watts,
    ) -> Result<Estimate, EstimateError> {
        let level = self.level_for(frequency)?;
        let n = self.platform.core_count();
        let model = self.platform.app_model(app);
        let alpha = app.profile().activity(threads);
        // Admission at the DTM reference temperature, like TdpMap.
        let per_core = model.power(alpha, level.voltage, level.frequency, Celsius::new(80.0));
        let per_instance = per_core * threads as f64;
        let by_budget = (tdp / per_instance).floor() as usize;
        let by_capacity = n / threads;
        let count = by_budget.min(by_capacity);

        let workload = Workload::uniform(app, count, threads)?;
        let mapping = place_contiguous(self.platform.floorplan(), &workload, level)?;
        self.evaluate(&mapping)
    }

    /// Dark silicon as a **temperature** constraint (§3.2): map
    /// instances until the peak steady-state temperature (with the
    /// leakage fixed point) would exceed `T_DTM`. Uses binary search on
    /// the instance count — the peak is monotone in it.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownLevel`] for off-ladder
    /// frequencies and propagates mapping/thermal failures.
    pub fn under_temperature_constraint(
        &self,
        app: ParsecApp,
        threads: usize,
        frequency: Hertz,
    ) -> Result<Estimate, EstimateError> {
        let level = self.level_for(frequency)?;
        let n = self.platform.core_count();
        let max_count = n / threads;

        let peak_of = |count: usize| -> Result<Celsius, EstimateError> {
            if count == 0 {
                return Ok(self.platform.thermal().ambient());
            }
            let workload = Workload::uniform(app, count, threads)?;
            let mapping = place_contiguous(self.platform.floorplan(), &workload, level)?;
            Ok(mapping.steady_temperatures(&self.platform)?.peak())
        };

        let t_dtm = self.platform.t_dtm();
        // Binary search the largest count with peak ≤ T_DTM.
        let mut lo = 0; // known safe
        let mut hi = max_count + 1; // first unsafe candidate bound
        if peak_of(max_count)? <= t_dtm {
            lo = max_count;
        } else {
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if peak_of(mid)? <= t_dtm {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }

        let workload = Workload::uniform(app, lo, threads)?;
        let mapping = place_contiguous(self.platform.floorplan(), &workload, level)?;
        self.evaluate(&mapping)
    }

    /// Evaluates an arbitrary pre-built workload mapped contiguously at
    /// one level — the generic entry point behind the figure harnesses.
    ///
    /// # Errors
    ///
    /// Propagates mapping/thermal failures.
    pub fn evaluate_workload(
        &self,
        workload: &Workload,
        level: VfLevel,
    ) -> Result<Estimate, EstimateError> {
        let mapping = place_contiguous(self.platform.floorplan(), workload, level)?;
        self.evaluate(&mapping)
    }

    /// Evaluates an already-constructed mapping.
    ///
    /// # Errors
    ///
    /// Propagates thermal failures.
    pub fn evaluate_mapping(&self, mapping: &Mapping) -> Result<Estimate, EstimateError> {
        self.evaluate(mapping)
    }

    /// Convenience: a single instance descriptor for this platform's
    /// workloads.
    ///
    /// # Errors
    ///
    /// Propagates thread-count validation.
    pub fn instance(&self, app: ParsecApp, threads: usize) -> Result<AppInstance, EstimateError> {
        Ok(AppInstance::new(app, threads)?)
    }
}

impl From<EstimateError> for darksil_robust::DarksilError {
    fn from(e: EstimateError) -> Self {
        match e {
            EstimateError::UnknownLevel { .. } => {
                darksil_robust::DarksilError::unsupported(e.to_string())
            }
            EstimateError::Mapping(inner) => {
                darksil_robust::DarksilError::from(inner).context("estimation")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> DarkSiliconEstimator {
        DarkSiliconEstimator::for_node(TechnologyNode::Nm16).expect("valid platform")
    }

    #[test]
    fn figure5_pessimistic_tdp_no_violation() {
        // §3.1: at TDP = 185 W "no thermal violations occur", with up
        // to ≈46 % dark silicon for the hungriest application.
        let est = estimator();
        let e = est
            .under_power_budget(
                ParsecApp::Swaptions,
                8,
                Hertz::from_ghz(3.6),
                Watts::new(185.0),
            )
            .expect("test value");
        assert!(!e.thermal_violation, "peak {}", e.peak_temperature);
        assert!(
            (0.40..=0.56).contains(&e.dark_fraction),
            "dark {}",
            e.dark_fraction
        );
    }

    #[test]
    fn figure5_optimistic_tdp_violates() {
        // §3.1: the optimistic 220 W TDP "leads to thermal violations".
        let est = estimator();
        let e = est
            .under_power_budget(
                ParsecApp::Swaptions,
                8,
                Hertz::from_ghz(3.6),
                Watts::new(220.0),
            )
            .expect("test value");
        assert!(e.thermal_violation, "peak {}", e.peak_temperature);
        assert!(e.dark_fraction < 0.46);
    }

    #[test]
    fn dark_silicon_shrinks_at_lower_frequency() {
        // Observation 2 / Figure 5: scaling down v/f reduces dark
        // silicon.
        let est = estimator();
        let mut last = 1.0;
        for ghz in [3.6, 3.2, 2.8] {
            let e = est
                .under_power_budget(ParsecApp::X264, 8, Hertz::from_ghz(ghz), Watts::new(185.0))
                .expect("test value");
            assert!(
                e.dark_fraction <= last + 1e-12,
                "{ghz} GHz gives {}",
                e.dark_fraction
            );
            last = e.dark_fraction;
        }
    }

    #[test]
    fn figure6_temperature_constraint_reduces_dark_silicon() {
        // §3.2: modelling dark silicon as a temperature constraint
        // lights more cores than the 185 W TDP for every application.
        let est = estimator();
        for app in [ParsecApp::X264, ParsecApp::Canneal, ParsecApp::Swaptions] {
            let budget = est
                .under_power_budget(app, 8, Hertz::from_ghz(3.6), Watts::new(185.0))
                .expect("test value");
            let thermal = est
                .under_temperature_constraint(app, 8, Hertz::from_ghz(3.6))
                .expect("test value");
            assert!(
                thermal.active_cores >= budget.active_cores,
                "{app}: thermal {} vs budget {}",
                thermal.active_cores,
                budget.active_cores
            );
            assert!(!thermal.thermal_violation);
        }
    }

    #[test]
    fn temperature_constraint_is_tight() {
        // One more instance than the estimate must violate.
        let est = estimator();
        let e = est
            .under_temperature_constraint(ParsecApp::Swaptions, 8, Hertz::from_ghz(3.6))
            .expect("test value");
        let count = e.active_cores / 8;
        if count * 8 < est.platform().core_count() {
            let w = Workload::uniform(ParsecApp::Swaptions, count + 1, 8).expect("valid workload");
            if w.total_threads() <= est.platform().core_count() {
                let level = est.level_for(Hertz::from_ghz(3.6)).expect("test value");
                let over = est.evaluate_workload(&w, level).expect("numerics succeed");
                assert!(over.thermal_violation, "peak {}", over.peak_temperature);
            }
        }
    }

    #[test]
    fn light_app_fills_whole_chip_under_thermal_constraint() {
        let est = estimator();
        let e = est
            .under_temperature_constraint(ParsecApp::Canneal, 8, Hertz::from_ghz(2.8))
            .expect("test value");
        assert!(e.dark_fraction < 0.1, "dark {}", e.dark_fraction);
    }

    #[test]
    fn off_ladder_frequency_rejected() {
        let est = estimator();
        assert!(matches!(
            est.under_power_budget(ParsecApp::X264, 8, Hertz::from_ghz(3.33), Watts::new(185.0)),
            Err(EstimateError::UnknownLevel { .. })
        ));
    }

    #[test]
    fn empty_estimate_is_ambient() {
        let est = estimator();
        // A budget too small for even one instance.
        let e = est
            .under_power_budget(
                ParsecApp::Swaptions,
                8,
                Hertz::from_ghz(3.6),
                Watts::new(5.0),
            )
            .expect("test value");
        assert_eq!(e.active_cores, 0);
        assert_eq!(e.dark_fraction, 1.0);
        assert_eq!(e.total_power, Watts::zero());
        assert!(!e.thermal_violation);
    }

    #[test]
    fn estimate_fields_are_consistent() {
        let est = estimator();
        let e = est
            .under_power_budget(
                ParsecApp::Ferret,
                8,
                Hertz::from_ghz(3.0),
                Watts::new(185.0),
            )
            .expect("test value");
        assert_eq!(e.active_cores + e.dark_cores, 100);
        assert!((e.dark_fraction - e.dark_cores as f64 / 100.0).abs() < 1e-12);
        assert!(e.total_gips.value() > 0.0);
        assert!(e.total_power.value() > 0.0);
    }
}
