//! The two DVFS scenarios of §3.3 (Figure 7).
//!
//! Scenario 1 runs every application at the node's nominal maximum
//! frequency with 8 threads per instance. Scenario 2 selects the
//! (threads, V/f) configuration per application according to its
//! TLP/ILP characteristics. Both respect the same TDP **and the same
//! fixed set of applications** — scenario 2 may shrink an
//! application's thread count but may not split it into independent
//! copies. Figure 7 shows scenario 2 always wins on total performance
//! (up to 32 % at 16 nm and 38 % at 11 nm).

use darksil_units::{Celsius, Hertz, Watts};
use darksil_workload::{ParsecApp, Workload, MAX_THREADS_PER_INSTANCE};

use crate::{DarkSiliconEstimator, Estimate, EstimateError};

/// The configuration scenario 2 picked for an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChosenConfig {
    /// Threads per instance.
    pub threads: usize,
    /// Frequency per instance.
    pub frequency: Hertz,
    /// Instances mapped (≤ the offered application count).
    pub instances: usize,
}

/// Result of comparing the two scenarios for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioComparison {
    /// The application.
    pub app: ParsecApp,
    /// Scenario 1: nominal frequency, 8 threads.
    pub nominal: Estimate,
    /// Scenario 2: characteristics-aware DVFS.
    pub tuned: Estimate,
    /// What scenario 2 chose.
    pub config: ChosenConfig,
}

impl ScenarioComparison {
    /// Performance gain of scenario 2 over scenario 1.
    #[must_use]
    pub fn gain(&self) -> f64 {
        if self.nominal.total_gips.value() == 0.0 {
            return 1.0;
        }
        self.tuned.total_gips / self.nominal.total_gips
    }
}

/// The number of application copies both scenarios are offered: enough
/// 8-thread instances to fill the chip.
#[must_use]
pub fn offered_instances(est: &DarkSiliconEstimator) -> usize {
    est.platform()
        .core_count()
        .div_ceil(MAX_THREADS_PER_INSTANCE)
}

/// Scenario 1: nominal maximum frequency, 8 threads per instance,
/// mapped until `tdp` (instances beyond the budget stay unmapped).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn nominal_scenario(
    est: &DarkSiliconEstimator,
    app: ParsecApp,
    tdp: Watts,
) -> Result<Estimate, EstimateError> {
    est.under_power_budget(
        app,
        MAX_THREADS_PER_INSTANCE,
        est.platform().node().nominal_max_frequency(),
        tdp,
    )
}

/// Scenario 2: for the same offered application set, exhaustively
/// searches a uniform (threads, ladder level) configuration and maps as
/// many of the offered instances as fit under `tdp`, maximising total
/// GIPS. High-TLP applications keep their threads and drop frequency;
/// high-ILP applications shrink to fewer, faster cores (§3.3).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn characterized_scenario(
    est: &DarkSiliconEstimator,
    app: ParsecApp,
    tdp: Watts,
) -> Result<(Estimate, ChosenConfig), EstimateError> {
    let platform = est.platform();
    let n = platform.core_count();
    let offered = offered_instances(est);
    let profile = app.profile();
    let model = platform.app_model(app);
    let admission = Celsius::new(80.0);

    let mut best: Option<(f64, ChosenConfig)> = None;
    for threads in 1..=MAX_THREADS_PER_INSTANCE {
        for level in platform.dvfs().levels() {
            if level.frequency > platform.node().nominal_max_frequency() {
                break;
            }
            let alpha = profile.activity(threads);
            let per_core = model.power(alpha, level.voltage, level.frequency, admission);
            let per_instance = per_core * threads as f64;
            let by_budget = (tdp / per_instance).floor() as usize;
            let by_capacity = n / threads;
            let instances = by_budget.min(by_capacity).min(offered);
            if instances == 0 {
                continue;
            }
            let gips = profile
                .instance_gips(platform.core_model(), threads, level.frequency)
                .value()
                * instances as f64;
            if best.as_ref().is_none_or(|(g, _)| gips > *g) {
                best = Some((
                    gips,
                    ChosenConfig {
                        threads,
                        frequency: level.frequency,
                        instances,
                    },
                ));
            }
        }
    }

    let (_, config) = best.ok_or(EstimateError::UnknownLevel { ghz: 0.0 })?;
    let workload =
        Workload::uniform(app, config.instances, config.threads).map_err(EstimateError::from)?;
    let level = est.level_for(config.frequency)?;
    let estimate = est.evaluate_workload(&workload, level)?;
    Ok((estimate, config))
}

/// Runs both scenarios for one application.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn compare(
    est: &DarkSiliconEstimator,
    app: ParsecApp,
    tdp: Watts,
) -> Result<ScenarioComparison, EstimateError> {
    let nominal = nominal_scenario(est, app, tdp)?;
    let (tuned, config) = characterized_scenario(est, app, tdp)?;
    Ok(ScenarioComparison {
        app,
        nominal,
        tuned,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;

    fn estimator() -> DarkSiliconEstimator {
        DarkSiliconEstimator::for_node(TechnologyNode::Nm16).expect("valid platform")
    }

    #[test]
    fn figure7_tuned_always_wins() {
        let est = estimator();
        for app in ParsecApp::ALL {
            let c = compare(&est, app, Watts::new(185.0)).expect("test value");
            assert!(
                c.gain() >= 1.0,
                "{app}: tuned {} < nominal {}",
                c.tuned.total_gips,
                c.nominal.total_gips
            );
        }
    }

    #[test]
    fn figure7_gains_are_substantial_for_some_apps() {
        // "performance gain up to 32 %" at 16 nm — at least one
        // application should gain double digits, and nothing should
        // blow past a plausible band.
        let est = estimator();
        let gains: Vec<f64> = ParsecApp::ALL
            .iter()
            .map(|&app| {
                compare(&est, app, Watts::new(185.0))
                    .expect("test value")
                    .gain()
            })
            .collect();
        let best = gains.iter().copied().fold(0.0, f64::max);
        assert!(best > 1.10, "best gain only {best}");
        assert!(best < 2.2, "gain {best} suspiciously large");
    }

    #[test]
    fn high_tlp_app_prefers_threads_over_frequency() {
        // Swaptions (p = 0.93) should keep wide instances and drop
        // frequency rather than shrink to one fast core.
        let est = estimator();
        let (_, config) = characterized_scenario(&est, ParsecApp::Swaptions, Watts::new(185.0))
            .expect("test value");
        assert!(config.threads >= 4, "chose {} threads", config.threads);
        assert!(config.frequency < Hertz::from_ghz(3.6));
    }

    #[test]
    fn memory_bound_app_gains_least_and_sheds_threads() {
        // Canneal gains little from either axis (§3.3): its scenario-2
        // gain is the smallest of the suite and, unlike the high-TLP
        // apps, it gives up threads (extra canneal threads buy little).
        let est = estimator();
        let canneal = compare(&est, ParsecApp::Canneal, Watts::new(185.0)).expect("test value");
        for app in [ParsecApp::X264, ParsecApp::Swaptions, ParsecApp::Bodytrack] {
            let c = compare(&est, app, Watts::new(185.0)).expect("test value");
            assert!(
                c.gain() >= canneal.gain() - 1e-9,
                "{app} gain {} below canneal {}",
                c.gain(),
                canneal.gain()
            );
        }
        let swaptions = characterized_scenario(&est, ParsecApp::Swaptions, Watts::new(185.0))
            .expect("test value");
        assert!(canneal.config.threads <= swaptions.1.threads);
    }

    #[test]
    fn tuned_respects_budget_and_app_count() {
        let est = estimator();
        let offered = offered_instances(&est);
        for app in [ParsecApp::X264, ParsecApp::Ferret] {
            let (e, config) =
                characterized_scenario(&est, app, Watts::new(185.0)).expect("test value");
            assert!(config.instances <= offered);
            // Allow the thermal fixed point a little leakage slack over
            // the 80 °C admission estimate.
            assert!(
                e.total_power <= Watts::new(190.0),
                "{app}: {}",
                e.total_power
            );
        }
    }

    #[test]
    fn dark_silicon_can_move_either_way() {
        // Figure 7: DVFS "decreases the amount of dark cores in some
        // applications and increases it for others" — at least the
        // lit-more-cores direction must exist across the suite.
        let est = estimator();
        let mut less_dark = 0;
        for app in ParsecApp::ALL {
            let c = compare(&est, app, Watts::new(185.0)).expect("test value");
            if c.tuned.dark_fraction < c.nominal.dark_fraction - 1e-9 {
                less_dark += 1;
            }
        }
        assert!(less_dark > 0, "no application lit more cores");
    }

    #[test]
    fn offered_count_covers_chip() {
        let est = estimator();
        assert_eq!(offered_instances(&est), 13); // ⌈100 / 8⌉
    }
}
