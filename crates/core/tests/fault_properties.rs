//! Property tests for graceful degradation under injected faults.
//!
//! Whatever the fault plan throws at the DTM loop — noisy sensors,
//! dropped (NaN) readings, off-ladder frequency requests — the
//! simulation must neither panic nor report *less* dark silicon than
//! the fault-free budget view: corrupted readings can only power cores
//! down.

use darksil_core::dtm::simulate_dtm_with_faults;
use darksil_core::DarkSiliconEstimator;
use darksil_power::TechnologyNode;
use darksil_robust::{Fault, FaultPlan};
use darksil_units::{Hertz, Watts};
use darksil_workload::ParsecApp;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-injected DTM never panics and the fail-safe direction
    /// holds: sustained dark silicon ≥ admitted dark silicon.
    #[test]
    fn faulty_dtm_degrades_gracefully(
        seed in 0_u64..1_000_000,
        sigma in 0.0_f64..5.0,
        period in 2_u64..6,
        tdp in 180.0_f64..260.0,
    ) {
        let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)
            .expect("16 nm platform");
        let faults = FaultPlan::new(seed)
            .with(Fault::SensorNoise { sigma_celsius: sigma })
            .with(Fault::SensorDropout { period });
        let out = simulate_dtm_with_faults(
            &est,
            ParsecApp::Swaptions,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(tdp),
            &faults,
        )
        .expect("faulty DTM must degrade gracefully, not error");
        prop_assert!(out.sustained.dark_fraction >= out.admitted.dark_fraction);
        prop_assert!(out.sustained.dark_fraction.is_finite());
        prop_assert!((0.0..=1.0).contains(&out.sustained.dark_fraction));
    }

    /// Off-ladder frequency requests are throttled to the ladder, never
    /// rejected, for any requested frequency in the plausible range.
    #[test]
    fn off_ladder_requests_are_always_clamped(
        ghz in 0.05_f64..5.0,
        seed in 0_u64..1_000,
    ) {
        let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)
            .expect("16 nm platform");
        let faults = FaultPlan::new(seed).with(Fault::OffLadderFrequency { ghz });
        let out = simulate_dtm_with_faults(
            &est,
            ParsecApp::X264,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(185.0),
            &faults,
        )
        .expect("off-ladder request must be clamped, not rejected");
        prop_assert!(out.admitted.active_cores > 0);
    }
}
