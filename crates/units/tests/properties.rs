//! Property tests for the quantity newtypes: the arithmetic surface
//! must behave exactly like the underlying `f64` algebra.

use darksil_units::{Celsius, Hertz, Joules, Kelvin, Seconds, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn addition_is_commutative(a in -1e6_f64..1e6, b in -1e6_f64..1e6) {
        prop_assert_eq!(Watts::new(a) + Watts::new(b), Watts::new(b) + Watts::new(a));
    }

    #[test]
    fn scaling_distributes(a in -1e4_f64..1e4, b in -1e4_f64..1e4, k in -100.0_f64..100.0) {
        let lhs = (Watts::new(a) + Watts::new(b)) * k;
        let rhs = Watts::new(a) * k + Watts::new(b) * k;
        prop_assert!((lhs.value() - rhs.value()).abs() <= 1e-9 * (1.0 + lhs.value().abs()));
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless(a in 0.1_f64..1e6, k in 0.1_f64..100.0) {
        let q = Watts::new(a);
        prop_assert!(((q * k) / q - k).abs() < 1e-9 * k);
    }

    #[test]
    fn energy_round_trips(p in 0.001_f64..1e4, t in 0.001_f64..1e4) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        let back_p = e / Seconds::new(t);
        let back_t = e / Watts::new(p);
        prop_assert!((back_p.value() - p).abs() < 1e-9 * p);
        prop_assert!((back_t.value() - t).abs() < 1e-9 * t);
    }

    #[test]
    fn frequency_units_are_consistent(ghz in 0.0_f64..100.0) {
        let f = Hertz::from_ghz(ghz);
        prop_assert!((f.as_mhz() - ghz * 1000.0).abs() < 1e-6 * (1.0 + ghz));
        prop_assert!((f.value() - ghz * 1e9).abs() < 1.0);
    }

    #[test]
    fn celsius_kelvin_round_trip(c in -273.15_f64..1e4) {
        let t = Celsius::new(c);
        let back = t.to_kelvin().to_celsius();
        prop_assert!((back.value() - c).abs() < 1e-9);
        // Differences are invariant under the scale change.
        let other = Celsius::new(c + 7.25);
        prop_assert!(((other.to_kelvin() - t.to_kelvin()) - 7.25).abs() < 1e-9);
        prop_assert!(Kelvin::from(t).value() >= 0.0 - 1e-9);
    }

    #[test]
    fn clamp_is_bounded(v in -1e6_f64..1e6, lo in -100.0_f64..0.0, hi in 0.0_f64..100.0) {
        let c = Watts::new(v).clamp(Watts::new(lo), Watts::new(hi));
        prop_assert!(c >= Watts::new(lo) && c <= Watts::new(hi));
        // Idempotent.
        prop_assert_eq!(c.clamp(Watts::new(lo), Watts::new(hi)), c);
    }

    #[test]
    fn min_max_partition(a in -1e6_f64..1e6, b in -1e6_f64..1e6) {
        let (x, y) = (Volts::new(a), Volts::new(b));
        prop_assert!((x.min(y).value() + x.max(y).value() - (a + b)).abs() < 1e-9);
        prop_assert!(x.min(y) <= x.max(y));
    }

    #[test]
    fn sum_matches_fold(values in prop::collection::vec(-1e3_f64..1e3, 0..20)) {
        let by_sum: Watts = values.iter().map(|&v| Watts::new(v)).sum();
        let by_fold = values
            .iter()
            .fold(Watts::zero(), |acc, &v| acc + Watts::new(v));
        prop_assert!((by_sum.value() - by_fold.value()).abs() < 1e-9);
    }
}
