//! Physical quantity newtypes for the `darksil` toolkit.
//!
//! Every quantity that crosses a crate boundary in the workspace — supply
//! voltages, clock frequencies, power, temperatures, energies, areas and
//! throughputs — is wrapped in a dedicated newtype so that, e.g., a
//! frequency can never be passed where a voltage is expected
//! (cf. Eq. (1)/(2) of Henkel et al., DAC 2015, which mix `V`, `f`, `P`
//! and `T` in a single expression).
//!
//! All quantities are thin wrappers around `f64`, are `Copy`, and support
//! the arithmetic that is dimensionally meaningful:
//!
//! * same-type addition/subtraction/negation,
//! * scaling by a bare `f64` (both `q * s` and `s * q`),
//! * `q / q` yielding a dimensionless `f64` ratio,
//! * selected cross-type products (`Watts * Seconds = Joules`,
//!   `Volts * Amperes = Watts`, …).
//!
//! # Examples
//!
//! ```
//! use darksil_units::{Hertz, Volts, Watts, Seconds};
//!
//! let f = Hertz::from_ghz(3.6);
//! let v = Volts::new(1.05);
//! assert!(f.as_ghz() > 3.5 && f.as_ghz() < 3.7);
//!
//! let p = Watts::new(3.4);
//! let e = p * Seconds::new(2.0);
//! assert_eq!(e.value(), 6.8); // joules
//! assert_eq!(v.value(), 1.05);
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod quantity;
mod temperature;

pub use quantity::{
    Amperes, Farads, Gips, Hertz, Joules, Seconds, SquareMillimeters, Volts, Watts,
    WattsPerSquareMillimeter,
};
pub use temperature::{Celsius, Kelvin, ABSOLUTE_ZERO_CELSIUS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_unit_power_energy() {
        let e = Watts::new(10.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(30.0));
        let p = Joules::new(30.0) / Seconds::new(3.0);
        assert_eq!(p, Watts::new(10.0));
    }

    #[test]
    fn electrical_power() {
        let p = Volts::new(2.0) * Amperes::new(1.5);
        assert_eq!(p, Watts::new(3.0));
    }

    #[test]
    fn power_density() {
        let d = Watts::new(9.6) / SquareMillimeters::new(9.6);
        assert_eq!(d, WattsPerSquareMillimeter::new(1.0));
        let back = d * SquareMillimeters::new(2.0);
        assert_eq!(back, Watts::new(2.0));
    }

    #[test]
    fn frequency_constructors_roundtrip() {
        let f = Hertz::from_mhz(200.0);
        assert!((f.as_ghz() - 0.2).abs() < 1e-12);
        assert!((f.as_mhz() - 200.0).abs() < 1e-9);
        assert_eq!(Hertz::from_ghz(1.0), Hertz::new(1.0e9));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Watts::new(1.5)), "1.5 W");
        assert_eq!(format!("{}", Volts::new(0.92)), "0.92 V");
        assert_eq!(format!("{}", Hertz::from_ghz(3.0)), "3 GHz");
        assert_eq!(format!("{}", Gips::new(245.3)), "245.3 GIPS");
    }

    #[test]
    fn ordering_and_ratio() {
        assert!(Watts::new(220.0) > Watts::new(185.0));
        let ratio = Watts::new(220.0) / Watts::new(110.0);
        assert_eq!(ratio, 2.0);
    }
}
