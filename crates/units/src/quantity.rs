//! Scalar physical quantities and their arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Declares an `f64`-backed quantity newtype with the standard arithmetic
/// surface (same-type add/sub/neg, `f64` scaling, same-type ratio, `Sum`).
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the quantity's base unit.
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the zero quantity.
            #[inline]
            #[must_use]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the raw value in the quantity's base unit.
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the element-wise minimum of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the element-wise maximum of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is finite (not NaN or ±∞).
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// The ratio of two like quantities is dimensionless.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        /// Serialises transparently as the raw number.
        impl darksil_json::ToJson for $name {
            fn to_json(&self) -> darksil_json::Json {
                darksil_json::ToJson::to_json(&self.0)
            }
        }

        impl darksil_json::FromJson for $name {
            fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
                <f64 as darksil_json::FromJson>::from_json(v).map(Self)
            }
        }
    };
}

quantity!(
    /// Supply voltage in volts (`Vdd` in Eq. (1)/(2)).
    Volts,
    "V"
);

quantity!(
    /// Electrical power in watts.
    Watts,
    "W"
);

quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

quantity!(
    /// Wall-clock duration in seconds.
    Seconds,
    "s"
);

quantity!(
    /// Electrical current in amperes (`Ileak` in Eq. (1)).
    Amperes,
    "A"
);

quantity!(
    /// Capacitance in farads (`Ceff` in Eq. (1)).
    Farads,
    "F"
);

quantity!(
    /// Silicon area in square millimetres.
    SquareMillimeters,
    "mm²"
);

quantity!(
    /// Areal power density in watts per square millimetre — the quantity
    /// the paper identifies as the real driver of dark silicon.
    WattsPerSquareMillimeter,
    "W/mm²"
);

/// Clock frequency. Stored internally in hertz; the paper works in GHz so
/// [`Hertz::from_ghz`]/[`Hertz::as_ghz`] are the most common accessors.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(f64);

impl Hertz {
    /// Wraps a raw frequency in hertz.
    #[inline]
    #[must_use]
    pub const fn new(hz: f64) -> Self {
        Self(hz)
    }

    /// Zero frequency (a halted / power-gated core).
    #[inline]
    #[must_use]
    pub const fn zero() -> Self {
        Self(0.0)
    }

    /// Constructs a frequency from a value in gigahertz.
    #[inline]
    #[must_use]
    pub const fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1.0e9)
    }

    /// Constructs a frequency from a value in megahertz.
    #[inline]
    #[must_use]
    pub const fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1.0e6)
    }

    /// Returns the frequency in hertz.
    #[inline]
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the frequency in gigahertz.
    #[inline]
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.0 / 1.0e9
    }

    /// Returns the frequency in megahertz.
    #[inline]
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Returns the absolute value (useful for level-matching deltas).
    #[inline]
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// Returns the element-wise minimum of `self` and `other`.
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the element-wise maximum of `self` and `other`.
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps the frequency into `[lo, hi]`.
    #[inline]
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }
}

impl Add for Hertz {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Hertz {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Hertz {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for Hertz {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Hertz {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul<Hertz> for f64 {
    type Output = Hertz;
    #[inline]
    fn mul(self, rhs: Hertz) -> Hertz {
        Hertz(self * rhs.0)
    }
}

impl Div<f64> for Hertz {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div for Hertz {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Self) -> f64 {
        self.0 / rhs.0
    }
}

impl From<Hertz> for f64 {
    #[inline]
    fn from(q: Hertz) -> f64 {
        q.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0e9 {
            write!(f, "{} GHz", self.as_ghz())
        } else if self.0 >= 1.0e6 {
            write!(f, "{} MHz", self.as_mhz())
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

quantity!(
    /// System throughput in giga-instructions per second, the performance
    /// metric used throughout the paper's evaluation (Figures 7, 9–14).
    Gips,
    "GIPS"
);

// ---------------------------------------------------------------------------
// Dimensionally meaningful cross-type products.
// ---------------------------------------------------------------------------

/// `P · t = E`
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

/// `t · P = E`
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

/// `E / t = P`
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

/// `E / P = t`
impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

/// `V · I = P`
impl Mul<Amperes> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amperes) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

/// `I · V = P`
impl Mul<Volts> for Amperes {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

/// `P / A = density`
impl Div<SquareMillimeters> for Watts {
    type Output = WattsPerSquareMillimeter;
    #[inline]
    fn div(self, rhs: SquareMillimeters) -> WattsPerSquareMillimeter {
        WattsPerSquareMillimeter::new(self.value() / rhs.value())
    }
}

/// `density · A = P`
impl Mul<SquareMillimeters> for WattsPerSquareMillimeter {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: SquareMillimeters) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

/// `A · density = P`
impl Mul<WattsPerSquareMillimeter> for SquareMillimeters {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: WattsPerSquareMillimeter) -> Watts {
        rhs * self
    }
}

/// Serialises transparently as the raw number.
impl darksil_json::ToJson for Hertz {
    fn to_json(&self) -> darksil_json::Json {
        darksil_json::ToJson::to_json(&self.0)
    }
}

impl darksil_json::FromJson for Hertz {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        <f64 as darksil_json::FromJson>::from_json(v).map(Self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_iterates() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5)].iter().sum();
        assert_eq!(total, Watts::new(3.5));
        let owned: Watts = vec![Watts::new(1.0); 4].into_iter().sum();
        assert_eq!(owned, Watts::new(4.0));
    }

    #[test]
    fn clamp_min_max() {
        let f = Hertz::from_ghz(5.0).clamp(Hertz::from_ghz(0.2), Hertz::from_ghz(3.6));
        assert_eq!(f, Hertz::from_ghz(3.6));
        assert_eq!(Watts::new(-1.0).max(Watts::zero()), Watts::zero());
        assert_eq!(Watts::new(2.0).min(Watts::new(1.0)), Watts::new(1.0));
    }

    #[test]
    fn energy_round_trips_through_time() {
        let e = Watts::new(7.0) * Seconds::new(4.0);
        assert_eq!(e / Watts::new(7.0), Seconds::new(4.0));
        assert_eq!(e / Seconds::new(4.0), Watts::new(7.0));
    }

    #[test]
    fn scaling_in_place() {
        let mut p = Watts::new(2.0);
        p *= 3.0;
        assert_eq!(p, Watts::new(6.0));
        p /= 2.0;
        assert_eq!(p, Watts::new(3.0));
        p += Watts::new(1.0);
        p -= Watts::new(0.5);
        assert_eq!(p, Watts::new(3.5));
    }

    #[test]
    fn hertz_display_picks_scale() {
        assert_eq!(format!("{}", Hertz::from_mhz(200.0)), "200 MHz");
        assert_eq!(format!("{}", Hertz::new(50.0)), "50 Hz");
    }

    #[test]
    fn negation_and_abs() {
        assert_eq!((-Watts::new(2.0)).abs(), Watts::new(2.0));
        assert!(Joules::new(-1.0).is_finite());
        assert!(!Watts::new(f64::NAN).is_finite());
    }
}
