//! Temperature quantities.
//!
//! Two scales are kept distinct on purpose: the paper expresses policy
//! thresholds in degrees Celsius (`T_DTM = 80 °C`) while the thermal RC
//! network solves in kelvin-compatible differences. [`Celsius`] and
//! [`Kelvin`] convert explicitly into each other so the 273.15 offset can
//! never be applied twice or forgotten.

use std::fmt;
use std::ops::{Add, Sub};

/// Offset between the Celsius and Kelvin scales.
const KELVIN_OFFSET: f64 = 273.15;

/// The lowest physically meaningful Celsius temperature.
pub const ABSOLUTE_ZERO_CELSIUS: f64 = -KELVIN_OFFSET;

/// Temperature on the Celsius scale (the paper's native scale: the DTM
/// threshold is 80 °C, ambient 45 °C).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Wraps a temperature expressed in degrees Celsius.
    #[inline]
    #[must_use]
    pub const fn new(deg: f64) -> Self {
        Self(deg)
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the Kelvin scale.
    #[inline]
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + KELVIN_OFFSET)
    }

    /// Returns the warmer of two temperatures.
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the cooler of two temperatures.
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns `true` if the value is finite (not NaN or ±∞).
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

/// Temperature on the Kelvin scale.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Wraps a temperature expressed in kelvin.
    #[inline]
    #[must_use]
    pub const fn new(k: f64) -> Self {
        Self(k)
    }

    /// Returns the temperature in kelvin.
    #[inline]
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the Celsius scale.
    #[inline]
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - KELVIN_OFFSET)
    }

    /// Returns the warmer of two temperatures.
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the cooler of two temperatures.
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Self {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Self {
        k.to_celsius()
    }
}

/// Temperature *differences* are scale-free; adding a difference expressed
/// as bare kelvin/celsius degrees is provided through `f64` operands.
impl Add<f64> for Celsius {
    type Output = Self;
    #[inline]
    fn add(self, delta_deg: f64) -> Self {
        Self(self.0 + delta_deg)
    }
}

impl Sub<f64> for Celsius {
    type Output = Self;
    #[inline]
    fn sub(self, delta_deg: f64) -> Self {
        Self(self.0 - delta_deg)
    }
}

/// Difference between two Celsius temperatures, in degrees.
impl Sub for Celsius {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: Self) -> f64 {
        self.0 - rhs.0
    }
}

impl Add<f64> for Kelvin {
    type Output = Self;
    #[inline]
    fn add(self, delta_deg: f64) -> Self {
        Self(self.0 + delta_deg)
    }
}

impl Sub<f64> for Kelvin {
    type Output = Self;
    #[inline]
    fn sub(self, delta_deg: f64) -> Self {
        Self(self.0 - delta_deg)
    }
}

/// Difference between two Kelvin temperatures, in degrees.
impl Sub for Kelvin {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: Self) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} °C", self.0)
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} K", self.0)
    }
}

/// Serialises transparently as the raw number.
impl darksil_json::ToJson for Celsius {
    fn to_json(&self) -> darksil_json::Json {
        darksil_json::ToJson::to_json(&self.0)
    }
}

impl darksil_json::FromJson for Celsius {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        <f64 as darksil_json::FromJson>::from_json(v).map(Self)
    }
}

/// Serialises transparently as the raw number.
impl darksil_json::ToJson for Kelvin {
    fn to_json(&self) -> darksil_json::Json {
        darksil_json::ToJson::to_json(&self.0)
    }
}

impl darksil_json::FromJson for Kelvin {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        <f64 as darksil_json::FromJson>::from_json(v).map(Self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius::new(80.0);
        assert_eq!(t.to_kelvin(), Kelvin::new(353.15));
        assert_eq!(t.to_kelvin().to_celsius(), t);
        assert_eq!(Kelvin::from(Celsius::new(0.0)), Kelvin::new(273.15));
        assert_eq!(Celsius::from(Kelvin::new(273.15)), Celsius::new(0.0));
    }

    #[test]
    fn differences_are_scale_free() {
        let dtm = Celsius::new(80.0);
        let t = Celsius::new(76.5);
        assert!((dtm - t - 3.5).abs() < 1e-12);
        // The same difference measured in kelvin must be identical.
        assert!(((dtm.to_kelvin() - t.to_kelvin()) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn delta_arithmetic() {
        let t = Celsius::new(45.0) + 10.0;
        assert_eq!(t, Celsius::new(55.0));
        assert_eq!(t - 5.0, Celsius::new(50.0));
        assert_eq!(Kelvin::new(300.0) + 1.0 - 2.0, Kelvin::new(299.0));
    }

    #[test]
    fn max_tracks_peak_temperature() {
        let peak = [72.0, 81.3, 79.9]
            .iter()
            .map(|&d| Celsius::new(d))
            .fold(Celsius::new(ABSOLUTE_ZERO_CELSIUS), Celsius::max);
        assert_eq!(peak, Celsius::new(81.3));
        assert_eq!(Celsius::new(5.0).min(Celsius::new(3.0)), Celsius::new(3.0));
        assert_eq!(
            Kelvin::new(5.0).min(Kelvin::new(3.0)).max(Kelvin::new(4.0)),
            Kelvin::new(4.0)
        );
    }

    #[test]
    fn ordering_against_threshold() {
        assert!(Celsius::new(80.5) > Celsius::new(80.0));
        assert!(Celsius::new(79.5) < Celsius::new(80.0));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Celsius::new(80.0)), "80 °C");
        assert_eq!(format!("{}", Kelvin::new(353.15)), "353.15 K");
    }
}
