//! Property tests for the policy-trace accounting.

use darksil_boost::{PolicyTrace, TraceSample};
use darksil_units::{Celsius, Gips, Hertz, Seconds, Watts};
use proptest::prelude::*;

fn build(samples: &[(f64, f64, f64, f64)]) -> PolicyTrace {
    let mut trace = PolicyTrace::new();
    let mut t = 0.0;
    for &(dt, gips, temp, power) in samples {
        t += dt;
        trace.push(TraceSample {
            time: Seconds::new(t),
            frequency: Hertz::from_ghz(3.0),
            peak_temperature: Celsius::new(temp),
            gips: Gips::new(gips),
            power: Watts::new(power),
        });
    }
    trace
}

proptest! {
    /// The tail average lies between the global min and max GIPS for
    /// any trace and any tail fraction.
    #[test]
    fn tail_average_is_bounded(
        samples in prop::collection::vec(
            (0.001_f64..1.0, 0.0_f64..500.0, 40.0_f64..90.0, 0.0_f64..600.0),
            1..40,
        ),
        fraction in 0.01_f64..1.0,
    ) {
        let trace = build(&samples);
        let avg = trace.average_gips_tail(fraction).value();
        let lo = samples.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|s| s.1).fold(0.0, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "{lo} ≤ {avg} ≤ {hi}");
    }

    /// Energy equals the sum of power·Δt exactly.
    #[test]
    fn energy_is_the_power_time_integral(
        samples in prop::collection::vec(
            (0.001_f64..1.0, 0.0_f64..500.0, 40.0_f64..90.0, 0.0_f64..600.0),
            1..40,
        ),
    ) {
        let trace = build(&samples);
        let expect: f64 = samples.iter().map(|s| s.0 * s.3).sum();
        let got = trace.total_energy().value();
        prop_assert!((got - expect).abs() < 1e-6 * (1.0 + expect), "{got} vs {expect}");
    }

    /// Peak statistics match a direct scan, and CSV has one row per
    /// sample plus a header.
    #[test]
    fn peaks_and_csv_shape(
        samples in prop::collection::vec(
            (0.001_f64..1.0, 0.0_f64..500.0, 40.0_f64..90.0, 0.0_f64..600.0),
            1..40,
        ),
    ) {
        let trace = build(&samples);
        let max_power = samples.iter().map(|s| s.3).fold(0.0, f64::max);
        let max_temp = samples.iter().map(|s| s.2).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((trace.peak_power().value() - max_power).abs() < 1e-12);
        prop_assert!((trace.peak_temperature().value() - max_temp).abs() < 1e-12);

        let mut csv = Vec::new();
        trace.write_csv(&mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        prop_assert_eq!(text.lines().count(), samples.len() + 1);
    }
}
