//! Active-core sweeps: performance and power vs number of active cores
//! (Figures 12 and 13).

use darksil_engine::Engine;
use darksil_mapping::{place_patterned, Platform};
use darksil_robust::DarksilError;
use darksil_units::{Gips, Seconds, Watts};
use darksil_workload::{ParsecApp, Workload};

use crate::{run_boosting, run_constant, PolicyConfig};

/// One point of the Figure 12 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Active cores (8 per application instance).
    pub active_cores: usize,
    /// Settled average throughput under boosting.
    pub boosting_gips: Gips,
    /// Peak power under boosting.
    pub boosting_power: Watts,
    /// Settled average throughput at the best constant level.
    pub constant_gips: Gips,
    /// Peak power at the best constant level.
    pub constant_power: Watts,
}

/// Sweeps the number of active cores by adding one 8-thread instance of
/// `app` per step (Figure 12: "a new application instance every 8
/// active cores"), running both policies at each point.
///
/// `settle_time` is the transient horizon per point; the paper uses
/// 100 s at 1 ms, which is what the bench harness runs — tests use a
/// coarser period via `config`.
///
/// The per-instance-count transients are independent, so they fan out
/// over the execution engine (`--jobs` / `DARKSIL_JOBS`); results come
/// back in instance-count order regardless of completion order.
///
/// # Errors
///
/// Propagates mapping and simulation failures, classified into the
/// workspace taxonomy.
pub fn sweep_active_cores(
    platform: &Platform,
    app: ParsecApp,
    max_instances: usize,
    settle_time: Seconds,
    config: &PolicyConfig,
) -> Result<Vec<SweepPoint>, DarksilError> {
    // Build the (cheap) workloads serially so the capacity cut-off
    // stays a plain loop; only the expensive transients fan out.
    let mut workloads = Vec::with_capacity(max_instances);
    for count in 1..=max_instances {
        let workload = Workload::uniform(app, count, 8)?;
        if workload.total_threads() > platform.core_count() {
            break;
        }
        workloads.push(workload);
    }
    Engine::auto().try_par_map(workloads, |workload| {
        let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())?;
        let boost = run_boosting(platform, &mapping, settle_time, config)?;
        let constant = run_constant(platform, &mapping, settle_time, config)?;
        Ok(SweepPoint {
            active_cores: workload.total_threads(),
            boosting_gips: boost.average_gips_tail(0.5),
            boosting_power: boost.peak_power(),
            constant_gips: constant.average_gips_tail(0.5),
            constant_power: constant.peak_power(),
        })
    })
}

darksil_json::impl_json!(struct SweepPoint {
    active_cores,
    boosting_gips,
    boosting_power,
    constant_gips,
    constant_power,
});

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;
    use darksil_units::Hertz;

    fn platform() -> Platform {
        Platform::with_core_count(TechnologyNode::Nm16, 36)
            .expect("test value")
            .with_boost_levels(Hertz::from_ghz(4.4))
            .expect("test value")
    }

    // 36-core test die: regulate to an attainable 62 °C (see turbo.rs).
    fn config() -> PolicyConfig {
        PolicyConfig {
            threshold: darksil_units::Celsius::new(62.0),
            period: Seconds::new(0.05),
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn performance_grows_with_active_cores() {
        let p = platform();
        let points = sweep_active_cores(&p, ParsecApp::X264, 4, Seconds::new(30.0), &config())
            .expect("test value");
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(w[1].constant_gips >= w[0].constant_gips);
            assert!(w[1].active_cores == w[0].active_cores + 8);
        }
    }

    #[test]
    fn boosting_dominates_on_gips_but_costs_power() {
        let p = platform();
        let points = sweep_active_cores(&p, ParsecApp::X264, 3, Seconds::new(30.0), &config())
            .expect("test value");
        for pt in &points {
            assert!(
                pt.boosting_gips.value() >= pt.constant_gips.value() * 0.98,
                "boost {} vs const {} at {} cores",
                pt.boosting_gips,
                pt.constant_gips,
                pt.active_cores
            );
            assert!(pt.boosting_power >= pt.constant_power);
        }
    }

    #[test]
    fn sweep_stops_at_chip_capacity() {
        let p = platform(); // 36 cores → at most 4 instances of 8
        let points = sweep_active_cores(&p, ParsecApp::Canneal, 10, Seconds::new(10.0), &config())
            .expect("test value");
        assert_eq!(points.len(), 4);
        assert_eq!(points.last().expect("test value").active_cores, 32);
    }
}
