//! STC vs NTC iso-performance energy comparison (Figure 14,
//! Observation 4).

use darksil_mapping::Platform;
use darksil_power::OperatingRegion;
use darksil_units::{Celsius, Gips, Hertz, Joules, Seconds, Watts};
use darksil_workload::ParsecApp;

use crate::BoostError;

/// Die temperature at which the comparison evaluates power — a typical
/// loaded-but-safe operating temperature.
const EVAL_TEMPERATURE: Celsius = Celsius::new(70.0);

/// One evaluated configuration of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Threads per instance.
    pub threads: usize,
    /// Chosen frequency.
    pub frequency: Hertz,
    /// The region the operating voltage falls in.
    pub region: OperatingRegion,
    /// Throughput of one instance.
    pub instance_gips: Gips,
    /// Power of one instance.
    pub instance_power: Watts,
    /// Energy for the whole experiment (all instances, fixed work).
    pub energy: Joules,
    /// Whether the performance target was met (an STC point may hit the
    /// nominal-frequency ceiling before matching NTC throughput).
    pub met_target: bool,
}

/// Result of the Figure 14 experiment for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoPerfComparison {
    /// The application compared.
    pub app: ParsecApp,
    /// Number of application instances (24 in the paper).
    pub instances: usize,
    /// NTC: 8 threads at the near-threshold point.
    pub ntc: OperatingPoint,
    /// STC with 1 thread, frequency chosen to match NTC throughput.
    pub stc_one_thread: OperatingPoint,
    /// STC with 2 threads, frequency chosen to match NTC throughput.
    pub stc_two_threads: OperatingPoint,
}

impl IsoPerfComparison {
    /// Whether NTC is the most energy-efficient of the three points —
    /// true for applications whose performance scales with threads,
    /// false for poor scalers like canneal (Observation 4).
    #[must_use]
    pub fn ntc_wins(&self) -> bool {
        self.ntc.energy <= self.stc_one_thread.energy
            && self.ntc.energy <= self.stc_two_threads.energy
    }
}

fn point(
    platform: &Platform,
    app: ParsecApp,
    threads: usize,
    frequency: Hertz,
    instances: usize,
    work_gi_per_instance: f64,
    target: Gips,
) -> Result<OperatingPoint, BoostError> {
    let profile = app.profile();
    let model = platform.app_model(app);
    let voltage = model.vf().voltage_for(frequency)?;
    let instance_gips = profile.instance_gips(platform.core_model(), threads, frequency);
    let per_core = model.power(
        profile.activity(threads),
        voltage,
        frequency,
        EVAL_TEMPERATURE,
    );
    let instance_power = per_core * threads as f64;
    let time = Seconds::new(work_gi_per_instance / instance_gips.value());
    let energy = instance_power * time * instances as f64;
    Ok(OperatingPoint {
        threads,
        frequency,
        region: model.vf().region_of(voltage),
        instance_gips,
        instance_power,
        energy,
        met_target: instance_gips >= target * 0.995,
    })
}

/// Finds the lowest ladder frequency at which `threads` threads of
/// `app` reach `target` throughput; clamps to the nominal maximum when
/// the target is out of reach (reported via `met_target`).
fn matching_frequency(platform: &Platform, app: ParsecApp, threads: usize, target: Gips) -> Hertz {
    let profile = app.profile();
    for level in platform.dvfs().levels() {
        if level.frequency > platform.node().nominal_max_frequency() {
            break;
        }
        let g = profile.instance_gips(platform.core_model(), threads, level.frequency);
        if g >= target {
            return level.frequency;
        }
    }
    platform.node().nominal_max_frequency()
}

/// Runs the Figure 14 experiment for one application: 24 instances
/// (the paper's count) doing `work_gi_per_instance` giga-instructions
/// each, either at NTC (8 threads, 1 GHz) or at STC with 1 or 2 threads
/// and the frequency chosen to match the NTC throughput.
///
/// # Errors
///
/// Propagates power-model failures.
pub fn iso_performance_comparison(
    platform: &Platform,
    app: ParsecApp,
    instances: usize,
    work_gi_per_instance: f64,
) -> Result<IsoPerfComparison, BoostError> {
    let ntc_frequency = Hertz::from_ghz(1.0);
    let profile = app.profile();
    let target = profile.instance_gips(platform.core_model(), 8, ntc_frequency);

    let ntc = point(
        platform,
        app,
        8,
        ntc_frequency,
        instances,
        work_gi_per_instance,
        target,
    )?;
    let f1 = matching_frequency(platform, app, 1, target);
    let stc_one_thread = point(
        platform,
        app,
        1,
        f1,
        instances,
        work_gi_per_instance,
        target,
    )?;
    let f2 = matching_frequency(platform, app, 2, target);
    let stc_two_threads = point(
        platform,
        app,
        2,
        f2,
        instances,
        work_gi_per_instance,
        target,
    )?;

    Ok(IsoPerfComparison {
        app,
        instances,
        ntc,
        stc_one_thread,
        stc_two_threads,
    })
}

darksil_json::impl_json!(struct OperatingPoint {
    threads,
    frequency,
    region,
    instance_gips,
    instance_power,
    energy,
    met_target,
});
darksil_json::impl_json!(struct IsoPerfComparison {
    app,
    instances,
    ntc,
    stc_one_thread,
    stc_two_threads,
});

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;

    fn platform() -> Platform {
        Platform::for_node(TechnologyNode::Nm11).expect("valid platform")
    }

    fn compare(app: ParsecApp) -> IsoPerfComparison {
        iso_performance_comparison(&platform(), app, 24, 500.0).expect("test value")
    }

    #[test]
    fn ntc_point_is_in_the_ntc_region() {
        let c = compare(ParsecApp::X264);
        assert_eq!(c.ntc.region, OperatingRegion::NearThreshold);
        assert_eq!(c.ntc.threads, 8);
        assert_eq!(c.ntc.frequency, Hertz::from_ghz(1.0));
    }

    #[test]
    fn stc_points_are_super_threshold() {
        let c = compare(ParsecApp::X264);
        assert_eq!(c.stc_two_threads.region, OperatingRegion::SuperThreshold);
        // The 1-thread point needs the highest frequency of the three.
        assert!(c.stc_one_thread.frequency >= c.stc_two_threads.frequency);
    }

    #[test]
    fn figure14_ntc_wins_for_scaling_apps() {
        for app in [
            ParsecApp::X264,
            ParsecApp::Blackscholes,
            ParsecApp::Swaptions,
        ] {
            let c = compare(app);
            assert!(
                c.ntc_wins(),
                "{app}: NTC {} vs STC1 {} vs STC2 {}",
                c.ntc.energy,
                c.stc_one_thread.energy,
                c.stc_two_threads.energy
            );
        }
    }

    #[test]
    fn figure14_canneal_prefers_stc() {
        // "canneal does not scale well with more threads, thus running
        // at NTC consumes more energy."
        let c = compare(ParsecApp::Canneal);
        assert!(
            !c.ntc_wins(),
            "canneal NTC {} should lose to STC {}",
            c.ntc.energy,
            c.stc_one_thread.energy.min(c.stc_two_threads.energy)
        );
    }

    #[test]
    fn throughputs_are_comparable_where_target_met() {
        let c = compare(ParsecApp::Dedup);
        if c.stc_two_threads.met_target {
            let ratio = c.stc_two_threads.instance_gips / c.ntc.instance_gips;
            assert!((0.99..1.6).contains(&ratio), "ratio {ratio}");
        }
        // NTC always meets its own target.
        assert!(c.ntc.met_target);
    }

    #[test]
    fn energy_scales_with_instances_and_work() {
        let p = platform();
        let base =
            iso_performance_comparison(&p, ParsecApp::Ferret, 24, 500.0).expect("test value");
        let double_work =
            iso_performance_comparison(&p, ParsecApp::Ferret, 24, 1000.0).expect("test value");
        assert!((double_work.ntc.energy.value() - 2.0 * base.ntc.energy.value()).abs() < 1e-9);
        let half_instances =
            iso_performance_comparison(&p, ParsecApp::Ferret, 12, 500.0).expect("test value");
        assert!((half_instances.ntc.energy.value() * 2.0 - base.ntc.energy.value()).abs() < 1e-9);
    }

    #[test]
    fn single_thread_target_may_be_unreachable() {
        // Swaptions at 8 NTC threads has a speed-up ≈ 5.4; one thread
        // cannot match it below the nominal maximum.
        let c = compare(ParsecApp::Swaptions);
        assert!(!c.stc_one_thread.met_target);
        assert_eq!(
            c.stc_one_thread.frequency,
            TechnologyNode::Nm11.nominal_max_frequency()
        );
    }
}
