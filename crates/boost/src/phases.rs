//! Phased transient runs: workload changes under one thermal history.
//!
//! Boosting budgets are *stateful*: how hard the controller can push
//! depends on how hot the package already is. A cold chip gives a new
//! application tens of seconds of boost residency (the package heat
//! capacity absorbs the burst); the same application arriving after a
//! hot phase starts throttled. [`run_phased_boosting`] strings several
//! (mapping, duration) phases through a single [`TransientSim`] so that
//! thermal history carries across phase boundaries, and returns one
//! trace per phase.

use darksil_mapping::{Mapping, Platform};
use darksil_thermal::TransientSim;
use darksil_units::{Celsius, Gips, Seconds, Watts};

use crate::{BoostError, PolicyConfig, PolicyTrace, TraceSample};

/// One phase of a phased run.
#[derive(Debug, Clone)]
pub struct Phase {
    /// The mapping active during this phase (levels are overridden by
    /// the controller).
    pub mapping: Mapping,
    /// How long the phase lasts.
    pub duration: Seconds,
}

/// Runs the chip-wide boosting controller across consecutive phases,
/// preserving thermal state between them. The controller's level index
/// resets to the nominal maximum at each phase start (a new workload
/// arrives requesting full speed); the package temperature does not.
///
/// # Errors
///
/// Returns [`BoostError::InvalidConfig`] for an empty phase list, a
/// phase shorter than one period, or an empty mapping, and propagates
/// thermal failures.
pub fn run_phased_boosting(
    platform: &Platform,
    phases: &[Phase],
    config: &PolicyConfig,
) -> Result<Vec<PolicyTrace>, BoostError> {
    if phases.is_empty() {
        return Err(BoostError::InvalidConfig {
            reason: "no phases given".into(),
        });
    }
    if config.period.value() <= 0.0 || !config.period.value().is_finite() {
        return Err(BoostError::InvalidConfig {
            reason: format!("period must be positive, got {}", config.period),
        });
    }
    for (i, phase) in phases.iter().enumerate() {
        if phase.duration < config.period || !phase.duration.value().is_finite() {
            return Err(BoostError::InvalidConfig {
                reason: format!("phase {i} shorter than one control period"),
            });
        }
        if phase.mapping.entries().is_empty() {
            return Err(BoostError::InvalidConfig {
                reason: format!("phase {i} has an empty mapping"),
            });
        }
    }

    let dvfs = platform.dvfs();
    let mut sim = TransientSim::new(platform.thermal(), config.period)?;
    let mut traces = Vec::with_capacity(phases.len());

    for phase in phases {
        let mut level_idx = dvfs
            .floor_index(platform.node().nominal_max_frequency())
            .unwrap_or(dvfs.len() - 1);
        let mut working = phase.mapping.clone();
        let steps = (phase.duration.value() / config.period.value()).round() as usize;
        let mut trace = PolicyTrace::new();

        for _ in 0..steps {
            crate::error::check_step("phased boosting step")?;
            let Some(level) = dvfs.get(level_idx) else {
                break;
            };
            for entry in working.entries_mut() {
                entry.level = level;
            }
            let temps: Vec<Celsius> = sim.snapshot().die_temperatures().collect();
            let power_map = working.power_map_at(platform, &temps);
            let total_power: Watts = power_map.iter().sum();
            let map = sim.step(&power_map)?;
            let peak = map.peak();
            let gips: Gips = working.total_gips(platform);
            trace.push(TraceSample {
                time: sim.elapsed(),
                frequency: level.frequency,
                peak_temperature: peak,
                gips,
                power: total_power,
            });
            let over_cap = config.power_cap.is_some_and(|cap| total_power > cap);
            if peak > config.threshold || over_cap {
                level_idx = dvfs.step_down(level_idx);
            } else {
                level_idx = dvfs.step_up(level_idx);
            }
        }
        traces.push(trace);
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_mapping::place_patterned;
    use darksil_power::TechnologyNode;
    use darksil_units::Hertz;
    use darksil_workload::{ParsecApp, Workload};

    fn platform() -> Platform {
        Platform::with_core_count(TechnologyNode::Nm16, 16)
            .expect("test value")
            .with_boost_levels(Hertz::from_ghz(4.4))
            .expect("test value")
    }

    fn mapping(platform: &Platform, app: ParsecApp, instances: usize) -> Mapping {
        let w = Workload::uniform(app, instances, 4).expect("valid workload");
        place_patterned(platform.floorplan(), &w, platform.max_level()).expect("test value")
    }

    fn config() -> PolicyConfig {
        PolicyConfig {
            threshold: Celsius::new(60.0),
            period: Seconds::new(0.02),
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn thermal_history_throttles_the_second_phase() {
        // Phase 1 heats the package with a heavy workload; phase 2 runs
        // the *same* workload again. Compared against a cold-start run
        // of phase 2 alone, the history-carrying run delivers less
        // boost over the same horizon.
        let p = platform();
        let heavy = mapping(&p, ParsecApp::Swaptions, 3);
        let phases = [
            Phase {
                mapping: heavy.clone(),
                duration: Seconds::new(40.0),
            },
            Phase {
                mapping: heavy.clone(),
                duration: Seconds::new(10.0),
            },
        ];
        let traces = run_phased_boosting(&p, &phases, &config()).expect("test value");
        assert_eq!(traces.len(), 2);
        let warm_start = traces[1].average_gips();

        let cold = run_phased_boosting(
            &p,
            &[Phase {
                mapping: heavy,
                duration: Seconds::new(10.0),
            }],
            &config(),
        )
        .expect("test value");
        let cold_start = cold[0].average_gips();
        assert!(
            warm_start.value() < cold_start.value() * 0.97,
            "warm {warm_start} not below cold {cold_start}"
        );
    }

    #[test]
    fn time_is_continuous_across_phases() {
        let p = platform();
        let phases = [
            Phase {
                mapping: mapping(&p, ParsecApp::X264, 2),
                duration: Seconds::new(2.0),
            },
            Phase {
                mapping: mapping(&p, ParsecApp::Canneal, 2),
                duration: Seconds::new(2.0),
            },
        ];
        let traces = run_phased_boosting(&p, &phases, &config()).expect("test value");
        let end_of_first = traces[0].samples().last().expect("test value").time;
        let start_of_second = traces[1].samples().first().expect("test value").time;
        assert!(start_of_second > end_of_first);
        assert!((start_of_second.value() - 2.02).abs() < 1e-9);
    }

    #[test]
    fn light_phase_cools_the_package_for_the_next() {
        // heavy → light → heavy: the cool-down phase restores part of
        // the boost budget.
        let p = platform();
        let heavy = mapping(&p, ParsecApp::Swaptions, 3);
        let light = mapping(&p, ParsecApp::Canneal, 1);
        let phases = [
            Phase {
                mapping: heavy.clone(),
                duration: Seconds::new(40.0),
            },
            Phase {
                mapping: heavy.clone(),
                duration: Seconds::new(8.0),
            },
        ];
        let no_rest = run_phased_boosting(&p, &phases, &config()).expect("test value");

        let rested_phases = [
            Phase {
                mapping: heavy.clone(),
                duration: Seconds::new(40.0),
            },
            Phase {
                mapping: light,
                duration: Seconds::new(30.0),
            },
            Phase {
                mapping: heavy,
                duration: Seconds::new(8.0),
            },
        ];
        let rested = run_phased_boosting(&p, &rested_phases, &config()).expect("test value");
        let g_no_rest = no_rest[1].average_gips().value();
        let g_rested = rested[2].average_gips().value();
        assert!(
            g_rested > g_no_rest,
            "rest did not help: {g_rested} vs {g_no_rest}"
        );
    }

    #[test]
    fn invalid_phase_lists_rejected() {
        let p = platform();
        assert!(run_phased_boosting(&p, &[], &config()).is_err());
        let too_short = [Phase {
            mapping: mapping(&p, ParsecApp::X264, 1),
            duration: Seconds::new(0.001),
        }];
        assert!(run_phased_boosting(&p, &too_short, &config()).is_err());
        let empty = [Phase {
            mapping: Mapping::new(p.core_count()),
            duration: Seconds::new(1.0),
        }];
        assert!(run_phased_boosting(&p, &empty, &config()).is_err());
    }
}
