//! Error type for the boosting crate.

use std::error::Error;
use std::fmt;

use darksil_mapping::MappingError;
use darksil_power::PowerError;
use darksil_thermal::ThermalError;
use darksil_workload::WorkloadError;

/// Errors from transient policy simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum BoostError {
    /// A configuration value was invalid (non-positive duration or
    /// period, empty mapping, …).
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// No V/f level satisfies the thermal/power constraints.
    NoFeasibleLevel,
    /// Propagated mapping/platform failure.
    Mapping(MappingError),
    /// Propagated thermal failure.
    Thermal(ThermalError),
    /// Propagated power-model failure.
    Power(PowerError),
    /// The policy loop observed a tripped cancellation token (deadline
    /// or explicit cancel) at a step boundary and stopped.
    Cancelled {
        /// What was interrupted and why.
        context: String,
    },
}

impl fmt::Display for BoostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid boost configuration: {reason}"),
            Self::NoFeasibleLevel => {
                write!(
                    f,
                    "no v/f level satisfies the thermal and power constraints"
                )
            }
            Self::Mapping(e) => write!(f, "mapping error: {e}"),
            Self::Thermal(e) => write!(f, "thermal error: {e}"),
            Self::Power(e) => write!(f, "power error: {e}"),
            Self::Cancelled { context } => write!(f, "policy loop cancelled: {context}"),
        }
    }
}

impl Error for BoostError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Mapping(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MappingError> for BoostError {
    fn from(e: MappingError) -> Self {
        Self::Mapping(e)
    }
}

impl From<ThermalError> for BoostError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<PowerError> for BoostError {
    fn from(e: PowerError) -> Self {
        Self::Power(e)
    }
}

impl From<WorkloadError> for BoostError {
    fn from(e: WorkloadError) -> Self {
        Self::Mapping(MappingError::Workload(e))
    }
}

impl From<BoostError> for darksil_robust::DarksilError {
    fn from(e: BoostError) -> Self {
        match e {
            BoostError::InvalidConfig { .. } => darksil_robust::DarksilError::config(e.to_string()),
            BoostError::NoFeasibleLevel => darksil_robust::DarksilError::capacity(e.to_string()),
            BoostError::Mapping(inner) => {
                darksil_robust::DarksilError::from(inner).context("boost policy")
            }
            BoostError::Thermal(inner) => {
                darksil_robust::DarksilError::from(inner).context("boost policy")
            }
            BoostError::Power(inner) => {
                darksil_robust::DarksilError::from(inner).context("boost policy")
            }
            BoostError::Cancelled { context } => darksil_robust::DarksilError::deadline(context),
        }
    }
}

/// Polls the current cancellation token at a policy-step boundary.
///
/// # Errors
///
/// [`BoostError::Cancelled`] when the supervising deadline has passed
/// or the job was cancelled; always `Ok` outside a supervised scope.
pub(crate) fn check_step(what: &str) -> Result<(), BoostError> {
    darksil_robust::check_deadline(what).map_err(|e| BoostError::Cancelled {
        context: e.message().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BoostError::NoFeasibleLevel;
        assert!(e.to_string().contains("no v/f level"));
        assert!(e.source().is_none());
        let e: BoostError = ThermalError::PowerMapMismatch {
            got: 1,
            expected: 2,
        }
        .into();
        assert!(e.source().is_some());
    }
}
