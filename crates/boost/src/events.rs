//! Shared `boost.run` / `boost.summary` emission for transient policies.
//!
//! Every policy run restarts the simulated clock at zero, so a stream
//! holding several runs (e.g. a Boost scenario executing boosting and
//! constant back to back) is not globally time-monotone. The `boost.run`
//! marker opens a segment and `boost.summary` closes it; stream
//! consumers (the fuzzing oracle, `darksil events verify`) check
//! per-segment invariants between the two.

use crate::{PolicyConfig, PolicyTrace};

/// Emits the `boost.run` segment-opening marker.
pub(crate) fn emit_run_start(policy: &'static str, config: &PolicyConfig) {
    if !darksil_obs::events_enabled() {
        return;
    }
    let threshold_c = config.threshold.value();
    let period_s = config.period.value();
    let power_cap_w = config.power_cap.map(darksil_units::Watts::value);
    darksil_obs::event("boost.run", move || {
        let mut fields = vec![
            ("policy", policy.into()),
            ("threshold_c", threshold_c.into()),
            ("period_s", period_s.into()),
        ];
        if let Some(cap) = power_cap_w {
            fields.push(("power_cap_w", cap.into()));
        }
        fields
    });
}

/// Emits the `boost.summary` segment-closing marker with the totals the
/// energy-conservation invariant cross-checks against the integrated
/// `thermal.step` power samples.
pub(crate) fn emit_run_summary(policy: &'static str, trace: &PolicyTrace) {
    if !darksil_obs::events_enabled() {
        return;
    }
    let energy_j = trace.total_energy().value();
    let peak_w = trace.peak_power().value();
    let peak_c = trace.peak_temperature().value();
    let samples = trace.len() as u64;
    darksil_obs::event("boost.summary", move || {
        vec![
            ("policy", policy.into()),
            ("energy_j", energy_j.into()),
            ("peak_w", peak_w.into()),
            ("peak_c", peak_c.into()),
            ("samples", samples.into()),
        ]
    });
}
