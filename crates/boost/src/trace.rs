//! Time series produced by transient policy runs.

use std::io::{self, Write};

use darksil_units::{Celsius, Gips, Hertz, Joules, Seconds, Watts};

/// One control-period snapshot of a transient policy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Simulated time at the end of the period.
    pub time: Seconds,
    /// Chip-wide frequency during the period.
    pub frequency: Hertz,
    /// Peak die temperature at the end of the period.
    pub peak_temperature: Celsius,
    /// Total system throughput during the period.
    pub gips: Gips,
    /// Total chip power during the period.
    pub power: Watts,
}

/// The full trace of a transient policy run (Figure 11's curves).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyTrace {
    samples: Vec<TraceSample>,
}

impl PolicyTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: TraceSample) {
        self.samples.push(sample);
    }

    /// The samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time-average throughput over the whole run.
    #[must_use]
    pub fn average_gips(&self) -> Gips {
        if self.samples.is_empty() {
            return Gips::zero();
        }
        let sum: f64 = self.samples.iter().map(|s| s.gips.value()).sum();
        Gips::new(sum / self.samples.len() as f64)
    }

    /// Time-average throughput over the last `fraction` of the run —
    /// useful to exclude the cold-start warm-up (the paper's Figure 11
    /// averages are quoted over the thermally settled region).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn average_gips_tail(&self, fraction: f64) -> Gips {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        if self.samples.is_empty() {
            return Gips::zero();
        }
        let start = self.samples.len() - (self.samples.len() as f64 * fraction).ceil() as usize;
        let tail = &self.samples[start..];
        let sum: f64 = tail.iter().map(|s| s.gips.value()).sum();
        Gips::new(sum / tail.len() as f64)
    }

    /// The largest instantaneous power observed — the "total peak
    /// power" of Figure 13.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.samples
            .iter()
            .map(|s| s.power)
            .fold(Watts::zero(), Watts::max)
    }

    /// The hottest observed peak temperature.
    #[must_use]
    pub fn peak_temperature(&self) -> Celsius {
        self.samples
            .iter()
            .map(|s| s.peak_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// The coolest observed peak temperature in the tail `fraction` —
    /// together with [`PolicyTrace::peak_temperature`] this brackets the
    /// oscillation band of a boosting run.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn min_peak_temperature_tail(&self, fraction: f64) -> Celsius {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        if self.samples.is_empty() {
            return Celsius::new(f64::INFINITY);
        }
        let start = self.samples.len() - (self.samples.len() as f64 * fraction).ceil() as usize;
        self.samples[start..]
            .iter()
            .map(|s| s.peak_temperature)
            .fold(Celsius::new(f64::INFINITY), Celsius::min)
    }

    /// Total energy consumed over the run (Σ P·Δt).
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        let mut energy = Joules::zero();
        let mut last_t = Seconds::zero();
        for s in &self.samples {
            let dt = s.time - last_t;
            energy += s.power * dt;
            last_t = s.time;
        }
        energy
    }

    /// Writes the trace as CSV (`time_s,frequency_ghz,peak_c,gips,power_w`)
    /// to any writer. Remember that a `&mut` reference to a writer also
    /// implements [`Write`], so a `File` or `Vec<u8>` can be passed by
    /// mutable reference.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_csv<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "time_s,frequency_ghz,peak_c,gips,power_w")?;
        for s in &self.samples {
            writeln!(
                writer,
                "{},{},{},{},{}",
                s.time.value(),
                s.frequency.as_ghz(),
                s.peak_temperature.value(),
                s.gips.value(),
                s.power.value()
            )?;
        }
        Ok(())
    }

    /// Frequencies visited in the tail `fraction`, as (min, max) — a
    /// boosting run oscillates; a constant run returns a single value.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]` or the trace is empty.
    #[must_use]
    pub fn frequency_band_tail(&self, fraction: f64) -> (Hertz, Hertz) {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        assert!(!self.samples.is_empty(), "trace is empty");
        let start = self.samples.len() - (self.samples.len() as f64 * fraction).ceil() as usize;
        let tail = &self.samples[start..];
        let min = tail
            .iter()
            .map(|s| s.frequency)
            .fold(Hertz::new(f64::INFINITY), Hertz::min);
        let max = tail
            .iter()
            .map(|s| s.frequency)
            .fold(Hertz::zero(), Hertz::max);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, f_ghz: f64, temp: f64, gips: f64, w: f64) -> TraceSample {
        TraceSample {
            time: Seconds::new(t),
            frequency: Hertz::from_ghz(f_ghz),
            peak_temperature: Celsius::new(temp),
            gips: Gips::new(gips),
            power: Watts::new(w),
        }
    }

    fn trace() -> PolicyTrace {
        let mut t = PolicyTrace::new();
        t.push(sample(1.0, 3.0, 70.0, 200.0, 180.0));
        t.push(sample(2.0, 3.2, 78.0, 220.0, 200.0));
        t.push(sample(3.0, 3.4, 80.5, 240.0, 230.0));
        t.push(sample(4.0, 3.2, 79.5, 220.0, 205.0));
        t
    }

    #[test]
    fn averages() {
        let t = trace();
        assert_eq!(t.average_gips(), Gips::new(220.0));
        assert_eq!(t.average_gips_tail(0.5), Gips::new(230.0));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn peaks() {
        let t = trace();
        assert_eq!(t.peak_power(), Watts::new(230.0));
        assert_eq!(t.peak_temperature(), Celsius::new(80.5));
        assert_eq!(t.min_peak_temperature_tail(0.5), Celsius::new(79.5));
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let t = trace();
        // 180·1 + 200·1 + 230·1 + 205·1
        assert_eq!(t.total_energy(), Joules::new(815.0));
    }

    #[test]
    fn frequency_band() {
        let t = trace();
        let (lo, hi) = t.frequency_band_tail(1.0);
        assert_eq!(lo, Hertz::from_ghz(3.0));
        assert_eq!(hi, Hertz::from_ghz(3.4));
    }

    #[test]
    fn empty_trace_defaults() {
        let t = PolicyTrace::new();
        assert_eq!(t.average_gips(), Gips::zero());
        assert_eq!(t.total_energy(), Joules::zero());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_panics() {
        let _ = trace().average_gips_tail(0.0);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut buf = Vec::new();
        trace().write_csv(&mut buf).expect("test value");
        let text = String::from_utf8(buf).expect("test value");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 samples
        assert_eq!(lines[0], "time_s,frequency_ghz,peak_c,gips,power_w");
        assert!(lines[1].starts_with("1,3,70,200,180"));
        // Every row has exactly five fields.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 5);
        }
    }
}
