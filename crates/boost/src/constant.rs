//! The constant-frequency alternative to boosting.

use darksil_mapping::{Mapping, Platform};
use darksil_power::VfLevel;
use darksil_thermal::TransientSim;
use darksil_units::{Celsius, Seconds, Watts};

use crate::{BoostError, PolicyConfig, PolicyTrace, TraceSample};

/// Finds the highest discrete V/f level whose *steady state* keeps the
/// peak temperature at or below the threshold and the total power under
/// the cap — the constant-frequency operating point of §6. Because
/// levels are 200 MHz apart, the chosen point typically settles a few
/// degrees below the threshold (Figure 11's lower curve).
///
/// # Errors
///
/// Returns [`BoostError::NoFeasibleLevel`] if even the lowest level
/// violates the constraints, and propagates thermal failures.
pub fn max_safe_level(
    platform: &Platform,
    mapping: &Mapping,
    config: &PolicyConfig,
) -> Result<VfLevel, BoostError> {
    let dvfs = platform.dvfs();
    let mut working = mapping.clone();
    for idx in (0..dvfs.len()).rev() {
        let Some(level) = dvfs.get(idx) else { continue };
        // Never pick boost-region levels for the constant policy: cap
        // at the nominal maximum.
        if level.frequency > platform.node().nominal_max_frequency() {
            continue;
        }
        for entry in working.entries_mut() {
            entry.level = level;
        }
        let map = working.steady_temperatures(platform)?;
        if map.peak() > config.threshold {
            continue;
        }
        if let Some(cap) = config.power_cap {
            let temps: Vec<Celsius> = map.die_temperatures().collect();
            let total: Watts = working.power_map_at(platform, &temps).iter().sum();
            if total > cap {
                continue;
            }
        }
        return Ok(level);
    }
    Err(BoostError::NoFeasibleLevel)
}

/// Runs the constant-frequency policy: pick [`max_safe_level`] once,
/// then simulate the transient at that fixed level for `duration`.
///
/// # Errors
///
/// Propagates [`max_safe_level`] errors and thermal failures; rejects
/// invalid durations/periods like [`crate::run_boosting`].
pub fn run_constant(
    platform: &Platform,
    mapping: &Mapping,
    duration: Seconds,
    config: &PolicyConfig,
) -> Result<PolicyTrace, BoostError> {
    if config.period.value() <= 0.0 || !config.period.value().is_finite() {
        return Err(BoostError::InvalidConfig {
            reason: format!("period must be positive, got {}", config.period),
        });
    }
    if !duration.value().is_finite() || duration.value() <= 0.0 || duration < config.period {
        return Err(BoostError::InvalidConfig {
            reason: format!("duration {duration} shorter than one period"),
        });
    }
    if mapping.entries().is_empty() {
        return Err(BoostError::InvalidConfig {
            reason: "mapping has no instances".into(),
        });
    }

    let level = max_safe_level(platform, mapping, config)?;
    crate::events::emit_run_start("constant", config);
    let mut working = mapping.clone();
    for entry in working.entries_mut() {
        entry.level = level;
    }

    let mut sim = TransientSim::new(platform.thermal(), config.period)?;
    sim.set_watermark(config.threshold);
    let steps = (duration.value() / config.period.value()).round() as usize;
    let gips = working.total_gips(platform);
    let mut trace = PolicyTrace::new();

    for _ in 0..steps {
        crate::error::check_step("constant-frequency policy step")?;
        let temps: Vec<Celsius> = sim.snapshot().die_temperatures().collect();
        let power_map = working.power_map_at(platform, &temps);
        let total_power: Watts = power_map.iter().sum();
        let map = sim.step(&power_map)?;
        trace.push(TraceSample {
            time: sim.elapsed(),
            frequency: level.frequency,
            peak_temperature: map.peak(),
            gips,
            power: total_power,
        });
    }
    crate::events::emit_run_summary("constant", &trace);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_boosting;
    use darksil_mapping::place_patterned;
    use darksil_power::TechnologyNode;
    use darksil_units::Hertz;
    use darksil_workload::{ParsecApp, Workload};

    fn setup() -> (Platform, Mapping) {
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 16)
            .expect("test value")
            .with_boost_levels(Hertz::from_ghz(4.4))
            .expect("test value");
        let w = Workload::uniform(ParsecApp::X264, 3, 4).expect("valid workload");
        let mapping =
            place_patterned(platform.floorplan(), &w, platform.max_level()).expect("test value");
        (platform, mapping)
    }

    // See turbo.rs: small dies regulate to 60 °C in tests.
    fn fast_config() -> PolicyConfig {
        PolicyConfig {
            threshold: Celsius::new(60.0),
            period: Seconds::new(0.02),
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn safe_level_is_actually_safe() {
        let (platform, mapping) = setup();
        let config = fast_config();
        let level = max_safe_level(&platform, &mapping, &config).expect("test value");
        let mut working = mapping.clone();
        for e in working.entries_mut() {
            e.level = level;
        }
        let peak = working.peak_temperature(&platform).expect("test value");
        assert!(peak <= config.threshold, "peak {peak}");
        // And one step up would violate (maximality) unless already at
        // nominal max.
        if level.frequency < platform.node().nominal_max_frequency() {
            let dvfs = platform.dvfs();
            let idx = dvfs.floor_index(level.frequency).expect("test value");
            let up = dvfs.get(dvfs.step_up(idx)).expect("test value");
            for e in working.entries_mut() {
                e.level = up;
            }
            let hotter = working.peak_temperature(&platform).expect("test value");
            assert!(hotter > config.threshold, "not maximal: up gives {hotter}");
        }
    }

    #[test]
    fn constant_run_stays_below_threshold() {
        let (platform, mapping) = setup();
        let trace = run_constant(&platform, &mapping, Seconds::new(60.0), &fast_config())
            .expect("test value");
        assert!(trace.peak_temperature() <= Celsius::new(60.0) + 0.1);
        // Single frequency throughout.
        let (lo, hi) = trace.frequency_band_tail(1.0);
        assert_eq!(lo, hi);
    }

    #[test]
    fn figure11_boosting_beats_constant_slightly() {
        // Observation 3: boosting wins on average GIPS, but only by a
        // small margin.
        let (platform, mapping) = setup();
        let config = fast_config();
        let boost =
            run_boosting(&platform, &mapping, Seconds::new(80.0), &config).expect("test value");
        let constant =
            run_constant(&platform, &mapping, Seconds::new(80.0), &config).expect("test value");
        let g_boost = boost.average_gips_tail(0.5).value();
        let g_const = constant.average_gips_tail(0.5).value();
        assert!(
            g_boost > g_const,
            "boosting {g_boost} should beat constant {g_const}"
        );
        let gain = g_boost / g_const;
        assert!(gain < 1.35, "gain {gain} implausibly large");
    }

    #[test]
    fn boosting_needs_higher_peak_power() {
        // The other half of Observation 3: the small performance gain
        // costs a big peak-power increment.
        let (platform, mapping) = setup();
        let config = fast_config();
        let boost =
            run_boosting(&platform, &mapping, Seconds::new(40.0), &config).expect("test value");
        let constant =
            run_constant(&platform, &mapping, Seconds::new(40.0), &config).expect("test value");
        assert!(boost.peak_power() > constant.peak_power());
    }

    #[test]
    fn infeasible_constraints_reported() {
        let (platform, mapping) = setup();
        let impossible = PolicyConfig {
            threshold: Celsius::new(30.0), // below ambient
            ..fast_config()
        };
        assert_eq!(
            max_safe_level(&platform, &mapping, &impossible),
            Err(BoostError::NoFeasibleLevel)
        );
    }

    #[test]
    fn constant_level_respects_power_cap() {
        let (platform, mapping) = setup();
        let config = PolicyConfig {
            power_cap: Some(Watts::new(15.0)),
            ..fast_config()
        };
        let level = max_safe_level(&platform, &mapping, &config).expect("test value");
        let mut working = mapping.clone();
        for e in working.entries_mut() {
            e.level = level;
        }
        let total = working.total_power(&platform, Celsius::new(70.0));
        assert!(total <= Watts::new(16.0), "total {total}");
    }

    #[test]
    fn constant_never_uses_boost_region() {
        let (platform, mapping) = setup();
        let level = max_safe_level(&platform, &mapping, &fast_config()).expect("test value");
        assert!(level.frequency <= platform.node().nominal_max_frequency());
    }
}
