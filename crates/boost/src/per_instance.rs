//! Per-instance (cluster-level) boosting.
//!
//! The paper's §6 controller moves **all** cores one step together —
//! Intel Turbo Boost circa Nehalem. Modern parts steer finer-grained
//! domains, so a natural extension is one control loop per application
//! instance: every period, each instance whose hottest core is below
//! the threshold steps up and the others step down. Cool-running
//! instances (memory-bound or well-spread) can then hold boost levels
//! that a chip-wide loop, slaved to the single hottest core, would give
//! up.
//!
//! [`run_per_instance_boosting`] produces the same [`PolicyTrace`] as
//! the chip-wide policy, so the two compare directly (the recorded
//! `frequency` is the mean across instances). The measured outcome is
//! itself instructive: with a single shared heat sink the control
//! domains are thermally coupled, and per-instance control lands within
//! a few percent of the chip-wide loop rather than beating it — finer
//! DVFS domains only pay off with finer thermal domains.

use darksil_mapping::{Mapping, Platform};
use darksil_thermal::TransientSim;
use darksil_units::{Celsius, Hertz, Seconds, Watts};

use crate::{BoostError, PolicyConfig, PolicyTrace, TraceSample};

/// Runs the per-instance boosting policy (see module docs).
///
/// # Errors
///
/// Returns [`BoostError::InvalidConfig`] for bad durations/periods or an
/// empty mapping, and propagates thermal failures.
pub fn run_per_instance_boosting(
    platform: &Platform,
    mapping: &Mapping,
    duration: Seconds,
    config: &PolicyConfig,
) -> Result<PolicyTrace, BoostError> {
    if config.period.value() <= 0.0 || !config.period.value().is_finite() {
        return Err(BoostError::InvalidConfig {
            reason: format!("period must be positive, got {}", config.period),
        });
    }
    if !duration.value().is_finite() || duration.value() <= 0.0 || duration < config.period {
        return Err(BoostError::InvalidConfig {
            reason: format!("duration {duration} shorter than one period"),
        });
    }
    if mapping.entries().is_empty() {
        return Err(BoostError::InvalidConfig {
            reason: "mapping has no instances".into(),
        });
    }

    let dvfs = platform.dvfs();
    let start = dvfs
        .floor_index(platform.node().nominal_max_frequency())
        .unwrap_or(dvfs.len() - 1);
    let mut levels = vec![start; mapping.entries().len()];

    let mut sim = TransientSim::new(platform.thermal(), config.period)?;
    let steps = (duration.value() / config.period.value()).round() as usize;
    let mut working = mapping.clone();
    let mut trace = PolicyTrace::new();

    for _ in 0..steps {
        crate::error::check_step("per-instance boosting step")?;
        for (entry, &idx) in working.entries_mut().iter_mut().zip(&levels) {
            if let Some(level) = dvfs.get(idx) {
                entry.level = level;
            }
        }
        let temps: Vec<Celsius> = sim.snapshot().die_temperatures().collect();
        let power_map = working.power_map_at(platform, &temps);
        let total_power: Watts = power_map.iter().sum();
        let map = sim.step(&power_map)?;

        // Mean frequency across instances for the trace.
        let mean_freq = {
            let sum: f64 = levels
                .iter()
                .map(|&i| dvfs.get(i).map_or(0.0, |l| l.frequency.value()))
                .sum();
            Hertz::new(sum / levels.len() as f64)
        };
        trace.push(TraceSample {
            time: sim.elapsed(),
            frequency: mean_freq,
            peak_temperature: map.peak(),
            gips: working.total_gips(platform),
            power: total_power,
        });

        // Per-instance control: each instance reacts to *its own*
        // hottest core; the shared power cap throttles everyone.
        let over_cap = config.power_cap.is_some_and(|cap| total_power > cap);
        for (entry, idx) in working.entries().iter().zip(levels.iter_mut()) {
            let instance_peak = entry
                .cores
                .iter()
                .map(|c| map.core(*c))
                .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max);
            if instance_peak > config.threshold || over_cap {
                *idx = dvfs.step_down(*idx);
            } else {
                *idx = dvfs.step_up(*idx);
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_boosting;
    use darksil_mapping::place_patterned;
    use darksil_power::TechnologyNode;
    use darksil_workload::{ParsecApp, Workload};

    fn setup_mixed() -> (Platform, Mapping) {
        // A hot app (swaptions) and a cool app (canneal) sharing a
        // 16-core chip — the mixed case where finer control domains
        // could in principle differ from the chip-wide loop.
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 16)
            .expect("test value")
            .with_boost_levels(Hertz::from_ghz(4.4))
            .expect("test value");
        let mut workload = Workload::new();
        workload.push(
            darksil_workload::AppInstance::new(ParsecApp::Swaptions, 6).expect("valid workload"),
        );
        workload.push(
            darksil_workload::AppInstance::new(ParsecApp::Canneal, 6).expect("valid workload"),
        );
        let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())
            .expect("test value");
        (platform, mapping)
    }

    fn config() -> PolicyConfig {
        PolicyConfig {
            threshold: Celsius::new(60.0), // attainable on a small die
            period: Seconds::new(0.02),
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn stays_near_threshold_without_runaway() {
        let (platform, mapping) = setup_mixed();
        let trace = run_per_instance_boosting(&platform, &mapping, Seconds::new(60.0), &config())
            .expect("test value");
        let hot = trace.peak_temperature();
        assert!(hot < Celsius::new(64.0), "overshoot {hot}");
        assert!(hot > Celsius::new(56.0), "never engaged: {hot}");
    }

    #[test]
    fn shared_sink_couples_the_control_domains() {
        // A finding, not a win: because the heat sink is shared, the
        // "cool" instance's die cells are heated by its neighbours and
        // its own loop sees nearly the same peak as the chip-wide loop
        // does — per-instance control lands within a few percent of
        // chip-wide throughput instead of beating it. Independent
        // control domains need independent thermal headroom, which a
        // single package does not provide.
        let (platform, mapping) = setup_mixed();
        let cfg = config();
        let per = run_per_instance_boosting(&platform, &mapping, Seconds::new(60.0), &cfg)
            .expect("test value");
        let chip = run_boosting(&platform, &mapping, Seconds::new(60.0), &cfg).expect("test value");
        let ratio = per.average_gips_tail(0.5) / chip.average_gips_tail(0.5);
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
        // Both respect the threshold equally.
        assert!(per.peak_temperature() < Celsius::new(64.0));
    }

    #[test]
    fn homogeneous_workload_matches_chip_wide_closely() {
        // With identical instances there is nothing to differentiate;
        // both controllers converge to similar operating points.
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 16)
            .expect("test value")
            .with_boost_levels(Hertz::from_ghz(4.4))
            .expect("test value");
        let w = Workload::uniform(ParsecApp::X264, 3, 4).expect("valid workload");
        let mapping =
            place_patterned(platform.floorplan(), &w, platform.max_level()).expect("test value");
        let cfg = config();
        let per = run_per_instance_boosting(&platform, &mapping, Seconds::new(40.0), &cfg)
            .expect("test value");
        let chip = run_boosting(&platform, &mapping, Seconds::new(40.0), &cfg).expect("test value");
        let ratio = per.average_gips_tail(0.5) / chip.average_gips_tail(0.5);
        assert!((0.9..=1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (platform, mapping) = setup_mixed();
        assert!(
            run_per_instance_boosting(&platform, &mapping, Seconds::zero(), &config()).is_err()
        );
        let empty = Mapping::new(platform.core_count());
        assert!(
            run_per_instance_boosting(&platform, &empty, Seconds::new(1.0), &config()).is_err()
        );
    }
}
