//! The closed-loop boosting controller.

use darksil_mapping::{Mapping, Platform};
use darksil_thermal::TransientSim;
use darksil_units::{Celsius, Gips, Seconds, Watts};

use crate::{BoostError, PolicyTrace, TraceSample};

/// Configuration shared by the transient policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Thermal threshold the controller regulates to (80 °C in §6).
    pub threshold: Celsius,
    /// Control period (1 ms for Intel-style turbo, §6).
    pub period: Seconds,
    /// Optional electrical power cap (500 W in §6). Exceeding it forces
    /// a step down regardless of temperature.
    pub power_cap: Option<Watts>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            threshold: Celsius::new(80.0),
            period: Seconds::new(1.0e-3),
            power_cap: Some(Watts::new(500.0)),
        }
    }
}

impl PolicyConfig {
    fn validate(&self, mapping: &Mapping, duration: Seconds) -> Result<(), BoostError> {
        if self.period.value() <= 0.0 || !self.period.value().is_finite() {
            return Err(BoostError::InvalidConfig {
                reason: format!("period must be positive, got {}", self.period),
            });
        }
        if !duration.value().is_finite() || duration.value() <= 0.0 || duration < self.period {
            return Err(BoostError::InvalidConfig {
                reason: format!("duration {duration} shorter than one period"),
            });
        }
        if mapping.entries().is_empty() {
            return Err(BoostError::InvalidConfig {
                reason: "mapping has no instances".into(),
            });
        }
        Ok(())
    }
}

/// Runs the boosting policy: every period the chip-wide V/f level steps
/// 200 MHz up if the peak temperature is below the threshold (and the
/// power cap is respected), down otherwise — the oscillating behaviour
/// of Figure 11.
///
/// The mapping's instance placement is kept; its levels are overridden
/// by the controller. The simulation starts from ambient (cold chip),
/// so quote averages over the settled tail.
///
/// # Errors
///
/// Returns [`BoostError::InvalidConfig`] for bad durations/periods or an
/// empty mapping, and propagates thermal failures.
pub fn run_boosting(
    platform: &Platform,
    mapping: &Mapping,
    duration: Seconds,
    config: &PolicyConfig,
) -> Result<PolicyTrace, BoostError> {
    config.validate(mapping, duration)?;
    crate::events::emit_run_start("boosting", config);
    let dvfs = platform.dvfs();
    let mut level_idx = dvfs
        .floor_index(platform.node().nominal_max_frequency())
        .unwrap_or(dvfs.len() - 1);

    let mut sim = TransientSim::new(platform.thermal(), config.period)?;
    sim.set_watermark(config.threshold);
    let steps = (duration.value() / config.period.value()).round() as usize;
    let mut working = mapping.clone();
    let mut trace = PolicyTrace::new();

    for _ in 0..steps {
        crate::error::check_step("turbo boosting step")?;
        let Some(level) = dvfs.get(level_idx) else {
            break;
        };
        for entry in working.entries_mut() {
            entry.level = level;
        }
        // Power from current per-core temperatures (leakage coupling).
        let temps: Vec<Celsius> = sim.snapshot().die_temperatures().collect();
        let power_map = working.power_map_at(platform, &temps);
        let total_power: Watts = power_map.iter().sum();
        let map = sim.step(&power_map)?;
        let peak = map.peak();

        let gips: Gips = working.total_gips(platform);
        trace.push(TraceSample {
            time: sim.elapsed(),
            frequency: level.frequency,
            peak_temperature: peak,
            gips,
            power: total_power,
        });

        let over_cap = config.power_cap.is_some_and(|cap| total_power > cap);
        let prev_idx = level_idx;
        if peak > config.threshold || over_cap {
            level_idx = dvfs.step_down(level_idx);
        } else {
            level_idx = dvfs.step_up(level_idx);
        }
        if level_idx != prev_idx && darksil_obs::events_enabled() {
            // The controller changed the chip-wide V/f level: record the
            // transition with whichever condition forced the decision.
            let reason = if peak > config.threshold {
                "thermal"
            } else if over_cap {
                "power_cap"
            } else {
                "boost"
            };
            let to_ghz = dvfs
                .get(level_idx)
                .map_or(level.frequency.as_ghz(), |l| l.frequency.as_ghz());
            darksil_obs::event("boost.transition", || {
                vec![
                    ("t_s", sim.elapsed().value().into()),
                    ("from_ghz", level.frequency.as_ghz().into()),
                    ("to_ghz", to_ghz.into()),
                    ("peak_c", peak.value().into()),
                    ("reason", reason.into()),
                ]
            });
        }
    }
    crate::events::emit_run_summary("boosting", &trace);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_mapping::place_patterned;
    use darksil_power::TechnologyNode;
    use darksil_units::Hertz;
    use darksil_workload::{ParsecApp, Workload};

    fn setup() -> (Platform, Mapping) {
        // Small 16-core chip so the transient tests stay fast; 12 of 16
        // cores active is the same ~75 % occupancy as Figure 11.
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 16)
            .expect("test value")
            .with_boost_levels(Hertz::from_ghz(4.4))
            .expect("test value");
        let w = Workload::uniform(ParsecApp::X264, 3, 4).expect("valid workload");
        let mapping =
            place_patterned(platform.floorplan(), &w, platform.max_level()).expect("test value");
        (platform, mapping)
    }

    // A 16-core die cannot heat the paper's 6×6 cm sink to 80 °C, so
    // the small-chip tests regulate to an attainable 60 °C threshold;
    // the full 100-core Figure 11 run (bench harness) uses 80 °C.
    fn fast_config() -> PolicyConfig {
        PolicyConfig {
            threshold: Celsius::new(60.0),
            period: Seconds::new(0.02),
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn an_expired_deadline_cancels_the_policy_loop() {
        let (platform, mapping) = setup();
        let ctx = darksil_robust::RunContext::with_token(
            darksil_robust::CancellationToken::with_deadline(std::time::Duration::from_millis(0)),
        );
        let err = darksil_robust::scoped(&ctx, || {
            run_boosting(&platform, &mapping, Seconds::new(60.0), &fast_config())
        })
        .expect_err("expired deadline stops the loop");
        assert!(matches!(err, BoostError::Cancelled { .. }), "{err:?}");
        let classified: darksil_robust::DarksilError = err.into();
        assert_eq!(classified.class(), darksil_robust::ErrorClass::Deadline);
    }

    #[test]
    fn controller_regulates_to_threshold() {
        let (platform, mapping) = setup();
        let trace = run_boosting(&platform, &mapping, Seconds::new(60.0), &fast_config())
            .expect("test value");
        // Settled band straddles/approaches the threshold without
        // running away.
        let hot = trace.peak_temperature();
        assert!(hot < Celsius::new(64.0), "overshoot {hot}");
        let tail_min = trace.min_peak_temperature_tail(0.2);
        let tail_max = trace.peak_temperature();
        assert!(
            tail_max.value() > 56.0,
            "never approached threshold: {tail_max}"
        );
        assert!(tail_min < tail_max);
    }

    #[test]
    fn frequency_oscillates_in_settled_region() {
        let (platform, mapping) = setup();
        let trace = run_boosting(&platform, &mapping, Seconds::new(60.0), &fast_config())
            .expect("test value");
        let (lo, hi) = trace.frequency_band_tail(0.2);
        assert!(hi > lo, "no oscillation: stuck at {lo}");
        // Steps are 200 MHz.
        assert!(hi - lo >= Hertz::from_mhz(199.0));
    }

    #[test]
    fn trace_bookkeeping() {
        let (platform, mapping) = setup();
        let trace = run_boosting(&platform, &mapping, Seconds::new(2.0), &fast_config())
            .expect("test value");
        assert_eq!(trace.len(), 100);
        assert!(trace.total_energy().value() > 0.0);
        assert!(trace.average_gips().value() > 0.0);
        // Time increases monotonically.
        let mut last = Seconds::zero();
        for s in trace.samples() {
            assert!(s.time > last);
            last = s.time;
        }
    }

    #[test]
    fn power_cap_forces_step_down() {
        let (platform, mapping) = setup();
        let capped = PolicyConfig {
            power_cap: Some(Watts::new(20.0)),
            ..fast_config()
        };
        let trace =
            run_boosting(&platform, &mapping, Seconds::new(20.0), &capped).expect("test value");
        // With a 20 W cap on a 12-core active chip the controller must
        // keep power near the cap even though temperature never
        // approaches 80 °C.
        let tail: Vec<_> = trace
            .samples()
            .iter()
            .skip(trace.len() - 20)
            .map(|s| s.power.value())
            .collect();
        let avg = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(avg < 25.0, "tail power {avg} W ignores the cap");
        assert!(trace.peak_temperature() < Celsius::new(58.0));
    }

    #[test]
    fn invalid_configs_rejected() {
        let (platform, mapping) = setup();
        assert!(matches!(
            run_boosting(&platform, &mapping, Seconds::zero(), &fast_config()),
            Err(BoostError::InvalidConfig { .. })
        ));
        let bad = PolicyConfig {
            period: Seconds::zero(),
            ..PolicyConfig::default()
        };
        assert!(run_boosting(&platform, &mapping, Seconds::new(1.0), &bad).is_err());
        let empty = Mapping::new(platform.core_count());
        assert!(run_boosting(&platform, &empty, Seconds::new(1.0), &fast_config()).is_err());
    }
}
