//! Boosting vs constant-frequency operation, STC vs NTC (§6).
//!
//! The paper's final study compares two ways of spending a thermal
//! budget:
//!
//! * **Boosting** ([`run_boosting`]) — an Intel-Turbo-Boost-style
//!   closed-loop controller with a 1 ms period: every period the peak
//!   temperature is compared against the 80 °C threshold and the
//!   chip-wide frequency moves one 200 MHz step up or down, oscillating
//!   around the threshold (Figure 11),
//! * **Constant frequency** ([`run_constant`]) — the highest discrete
//!   V/f level whose *steady state* stays below the threshold; because
//!   levels are discrete it settles a few degrees under it.
//!
//! Both honour an optional electrical power cap (the 500 W constraint
//! of §6). [`sweep_active_cores`] regenerates the Figure 12/13
//! performance-and-power-versus-active-cores curves, and
//! [`iso_performance_comparison`] the Figure 14 STC-vs-NTC
//! iso-performance energy study behind Observation 4.
//! [`run_per_instance_boosting`] extends §6 with a per-cluster control
//! domain (modern per-core DVFS) for comparison against the paper's
//! chip-wide loop, and [`run_phased_boosting`] strings workload phases
//! through one thermal history — the boost budget is stateful.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod constant;
mod error;
mod events;
mod ntc;
mod per_instance;
mod phases;
mod sweep;
mod trace;
mod turbo;

pub use constant::{max_safe_level, run_constant};
pub use error::BoostError;
pub use ntc::{iso_performance_comparison, IsoPerfComparison, OperatingPoint};
pub use per_instance::run_per_instance_boosting;
pub use phases::{run_phased_boosting, Phase};
pub use sweep::{sweep_active_cores, SweepPoint};
pub use trace::{PolicyTrace, TraceSample};
pub use turbo::{run_boosting, PolicyConfig};
