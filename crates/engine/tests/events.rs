//! Determinism of the domain event stream under the engine's fan-out.
//!
//! The contract under test: for the same workload, the drained event
//! stream is **byte-identical** at any worker count, because events are
//! keyed by submission order (fork/child prefixes), not by wall-clock
//! or thread interleaving. And with events disabled, a probe never runs
//! its field closure at all.

use std::sync::Mutex;

use darksil_engine::Engine;
use proptest::prelude::*;

/// Serializes tests that flip the process-global recorder.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs a two-level fan-out (par_map with a nested par_map in flagged
/// jobs), drains, and returns the serialized stream.
fn run_workload(jobs: usize, plan: &[bool]) -> String {
    let engine = Engine::new(jobs);
    let items: Vec<(usize, bool)> = plan.iter().copied().enumerate().collect();
    let results = engine.par_map(items, |(index, nested)| {
        darksil_obs::event("job.start", || vec![("index", (index as u64).into())]);
        if nested {
            // Nested fan-out: inner events key under this job's branch.
            let inner = Engine::new(jobs.min(2)).par_map(vec![0_u64, 1, 2], |k| {
                darksil_obs::event("job.inner", || vec![("k", k.into())]);
                Ok(k)
            });
            for r in inner {
                r.expect("inner job succeeds");
            }
        }
        darksil_obs::event("job.end", || vec![("index", (index as u64).into())]);
        Ok(index)
    });
    for r in results {
        r.expect("job succeeds");
    }
    let (_trace, stream) = darksil_obs::drain_all();
    stream.to_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serial and parallel runs of the same workload produce the same
    /// bytes, event for event, whatever the interleaving was.
    #[test]
    fn event_streams_are_byte_identical_across_worker_counts(
        plan in prop::collection::vec(any::<bool>(), 1..24),
        jobs in 2_usize..6,
    ) {
        let _guard = OBS_LOCK.lock().expect("obs lock");
        darksil_obs::enable_events();
        let serial = run_workload(1, &plan);
        darksil_obs::enable_events();
        let parallel = run_workload(jobs, &plan);
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn jobs_one_and_four_agree_on_a_fixed_workload() {
    let _guard = OBS_LOCK.lock().expect("obs lock");
    let plan = [true, false, true, true, false, false, true, false];
    darksil_obs::enable_events();
    let serial = run_workload(1, &plan);
    darksil_obs::enable_events();
    let parallel = run_workload(4, &plan);
    assert_eq!(serial, parallel);
    assert!(serial.contains("job.inner"), "nested events recorded");
}

#[test]
fn disabled_probes_never_run_their_field_closures() {
    let _guard = OBS_LOCK.lock().expect("obs lock");
    assert!(!darksil_obs::events_enabled());
    // With recording off, the probe must stop at its atomic-load guard:
    // reaching the closure would panic every job.
    let results = Engine::new(4).par_map((0..8).collect::<Vec<u64>>(), |i| {
        darksil_obs::event("never.emitted", || unreachable!("disabled probe ran"));
        Ok(i)
    });
    for r in results {
        r.expect("probe stayed dormant");
    }
}
