//! Integration tests for the execution engine: the determinism
//! contract, cache hit/invalidation/recovery behaviour, and panic
//! isolation under fire.

use std::fs;
use std::path::PathBuf;

use darksil_engine::{CacheKey, CacheOutcome, Engine, ResultCache, ThreadPool};
use darksil_json::{Json, ToJson};
use darksil_robust::{DarksilError, ErrorClass};
use proptest::prelude::*;

/// A fresh scratch directory per test, cleaned up at the end.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("darksil-engine-{test}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The "fixed scenario" of the determinism tests: a deterministic
/// pseudo-workload whose output is sensitive to evaluation order if the
/// engine ever got it wrong.
fn scenario_job(seed: u64) -> Result<Json, DarksilError> {
    let mut acc = 0.0_f64;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for _ in 0..512 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        acc += (state % 1000) as f64 / 997.0;
    }
    Ok(Json::Obj(vec![
        ("seed".to_string(), Json::Num(seed as f64)),
        ("metric".to_string(), Json::Num(acc)),
    ]))
}

#[test]
fn jobs_4_output_is_byte_identical_to_jobs_1() {
    let items: Vec<u64> = (0..57).collect();
    let serial = Engine::new(1).par_map(items.clone(), scenario_job);
    let parallel = Engine::new(4).par_map(items, scenario_job);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let s = s.as_ref().expect("serial job succeeds");
        let p = p.as_ref().expect("parallel job succeeds");
        // Byte-level comparison of the serialised artefacts, the same
        // form repro writes to disk.
        assert_eq!(s.pretty(), p.pretty());
    }
}

#[test]
fn cache_hits_on_unchanged_inputs() {
    let scratch = Scratch::new("hit");
    let cache = ResultCache::open(&scratch.0, "v1");
    let inputs = Json::Obj(vec![("tdp".to_string(), Json::Num(185.0))]);
    let key = cache.key("fig5", &inputs);

    let (first, outcome) = cache
        .get_or_compute(&key, || scenario_job(5))
        .expect("compute succeeds");
    assert_eq!(outcome, CacheOutcome::Miss);

    let (second, outcome) = cache
        .get_or_compute(&key, || panic!("must not recompute on a warm cache"))
        .expect("served from cache");
    assert!(outcome.is_hit());
    assert_eq!(first.pretty(), second.pretty());

    // A second cache instance over the same directory (cold memory,
    // warm disk) also hits.
    let reopened = ResultCache::open(&scratch.0, "v1");
    let (third, outcome) = reopened
        .get_or_compute(&key, || panic!("disk entry must satisfy the lookup"))
        .expect("served from disk");
    assert!(outcome.is_hit());
    assert_eq!(first.pretty(), third.pretty());
}

#[test]
fn cache_invalidates_when_inputs_or_salt_change() {
    let scratch = Scratch::new("invalidate");
    let cache = ResultCache::open(&scratch.0, "v1");
    let inputs = Json::Obj(vec![("tdp".to_string(), Json::Num(185.0))]);
    let key = cache.key("fig5", &inputs);
    cache
        .get_or_compute(&key, || scenario_job(5))
        .expect("seed the cache");

    // Changed scenario JSON → different digest → miss.
    let changed = Json::Obj(vec![("tdp".to_string(), Json::Num(220.0))]);
    let (_, outcome) = cache
        .get_or_compute(&cache.key("fig5", &changed), || scenario_job(6))
        .expect("recompute");
    assert_eq!(outcome, CacheOutcome::Miss);

    // Changed code-version salt → different digest → miss, even for
    // identical inputs.
    let bumped = ResultCache::open(&scratch.0, "v2");
    let (_, outcome) = bumped
        .get_or_compute(&bumped.key("fig5", &inputs), || scenario_job(5))
        .expect("recompute under new salt");
    assert_eq!(outcome, CacheOutcome::Miss);
}

#[test]
fn truncated_or_corrupt_entries_recover_with_a_typed_diagnostic() {
    let scratch = Scratch::new("corrupt");
    let cache = ResultCache::open(&scratch.0, "v1");
    let key = cache.key("fig9", &Json::Null);
    cache
        .get_or_compute(&key, || scenario_job(9))
        .expect("seed the cache");

    // Truncate the entry mid-document.
    let path = scratch.0.join(key.file_name());
    let text = fs::read_to_string(&path).expect("entry exists");
    fs::write(&path, &text[..text.len() / 2]).expect("truncate");

    // A cold cache must recover: recompute, report the diagnostic.
    let cold = ResultCache::open(&scratch.0, "v1");
    let (payload, outcome) = cold
        .get_or_compute(&key, || scenario_job(9))
        .expect("recovery never fails the run");
    match outcome {
        CacheOutcome::Recovered(diag) => {
            assert_eq!(diag.class(), ErrorClass::Cache);
            assert!(diag.to_string().contains("corrupt"), "{diag}");
        }
        other => panic!("expected recovery, got {other:?}"),
    }
    assert_eq!(
        payload.pretty(),
        scenario_job(9).expect("reference value").pretty()
    );

    // The recomputed value was re-stored: next lookup hits again.
    let rewarmed = ResultCache::open(&scratch.0, "v1");
    let (_, outcome) = rewarmed
        .get_or_compute(&key, || panic!("entry was repaired"))
        .expect("hit after repair");
    assert!(outcome.is_hit());

    // An envelope whose salt field was tampered with is stale, not
    // silently trusted.
    let envelope = fs::read_to_string(&path).expect("entry exists");
    fs::write(&path, envelope.replace("\"v1\"", "\"v0\"")).expect("tamper");
    let tampered = ResultCache::open(&scratch.0, "v1");
    let (_, outcome) = tampered
        .get_or_compute(&key, || scenario_job(9))
        .expect("stale envelope recomputes");
    assert!(
        matches!(outcome, CacheOutcome::Recovered(ref d) if d.class() == ErrorClass::Cache),
        "{outcome:?}"
    );
}

#[test]
fn a_flipped_payload_bit_is_caught_by_the_payload_digest() {
    let scratch = Scratch::new("bitflip");
    let cache = ResultCache::open(&scratch.0, "v1");
    let key = cache.key("fig7", &Json::Null);
    cache
        .get_or_compute(&key, || scenario_job(7))
        .expect("seed the cache");

    // Corrupt the payload *inside* an otherwise well-formed envelope:
    // every header field still matches, only the payload digest can
    // catch this.
    let path = scratch.0.join(key.file_name());
    let text = fs::read_to_string(&path).expect("entry exists");
    let tampered = text.replace("\"seed\": 7", "\"seed\": 8");
    assert_ne!(text, tampered, "tamper point must exist");
    fs::write(&path, tampered).expect("tamper");

    let cold = ResultCache::open(&scratch.0, "v1");
    let (_, outcome) = cold
        .get_or_compute(&key, || scenario_job(7))
        .expect("recovery never fails the run");
    assert!(
        matches!(outcome, CacheOutcome::Recovered(ref d)
            if d.to_string().contains("payload digest mismatch")),
        "{outcome:?}"
    );
}

#[test]
fn maintenance_scan_verify_evict_and_clear() {
    let scratch = Scratch::new("maintenance");
    let cache = ResultCache::open(&scratch.0, "v1");
    for (artefact, seed) in [("fig5", 5_u64), ("fig6", 6), ("fig7", 7)] {
        let key = cache.key(artefact, &Json::Null);
        cache
            .get_or_compute(&key, || scenario_job(seed))
            .expect("seed the cache");
    }

    // A clean cache scans valid.
    let reports = darksil_engine::scan_dir(&scratch.0).expect("scan");
    assert_eq!(reports.len(), 3);
    assert!(reports.iter().all(darksil_engine::EntryReport::is_valid));
    assert_eq!(reports[0].artefact.as_deref(), Some("fig5"));
    assert!(reports[0].bytes > 0);

    // Corrupt one entry, plant a leftover temp file, and drop in an
    // unrelated file that maintenance must leave alone.
    let victim = scratch.0.join(cache.key("fig6", &Json::Null).file_name());
    fs::write(&victim, "{ not json").expect("corrupt");
    fs::write(scratch.0.join("orphan.json.tmp"), "partial").expect("tmp leftover");
    fs::write(scratch.0.join("README"), "not a cache entry").expect("bystander");

    let reports = darksil_engine::scan_dir(&scratch.0).expect("scan");
    assert_eq!(reports.len(), 4, "3 entries + 1 tmp, README ignored");
    let corrupt: Vec<_> = reports.iter().filter(|r| !r.is_valid()).collect();
    assert_eq!(corrupt.len(), 2);

    // Evict removes exactly the corrupt files.
    let removed = darksil_engine::evict_corrupt(&scratch.0, &reports).expect("evict");
    assert_eq!(removed, 2);
    let reports = darksil_engine::scan_dir(&scratch.0).expect("rescan");
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().all(darksil_engine::EntryReport::is_valid));

    // Clear removes the remaining entries but not the bystander.
    let removed = darksil_engine::clear_dir(&scratch.0).expect("clear");
    assert_eq!(removed, 2);
    assert!(darksil_engine::scan_dir(&scratch.0)
        .expect("scan")
        .is_empty());
    assert!(scratch.0.join("README").exists());

    // A directory that never existed is clean, not an error.
    let ghost = scratch.0.join("never-created");
    assert!(darksil_engine::scan_dir(&ghost).expect("scan").is_empty());
    assert_eq!(darksil_engine::clear_dir(&ghost).expect("clear"), 0);
}

#[test]
fn cache_key_digest_survives_json_round_trip() {
    // Digests are stored as hex strings because u64 > 2^53 does not
    // survive an f64 round trip; verify the representation is stable.
    let key = CacheKey::new("fig10", &Json::Num(0.3), "v1");
    assert_eq!(key.digest_hex().len(), 16);
    assert_eq!(key.file_name(), format!("fig10-{}.json", key.digest_hex()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A pool fed a mixed batch of healthy and panicking jobs returns
    /// ordered results for the survivors and a typed internal error for
    /// every panicker — regardless of worker count.
    #[test]
    fn pool_with_injected_panics_keeps_survivors_ordered(
        plan in prop::collection::vec(any::<bool>(), 1..40),
        workers in 1_usize..6,
    ) {
        let engine = Engine::new(workers);
        let items: Vec<(usize, bool)> = plan.iter().copied().enumerate().collect();
        let results = engine.par_map(items, |(index, panics)| {
            assert!(!panics, "injected panic in job {index}");
            Ok(index * 10)
        });
        prop_assert_eq!(results.len(), plan.len());
        for (index, (result, panics)) in results.iter().zip(&plan).enumerate() {
            if *panics {
                let err = result.as_ref().expect_err("panicking job must error");
                prop_assert_eq!(err.class(), ErrorClass::Internal);
            } else {
                prop_assert_eq!(*result.as_ref().expect("survivor"), index * 10);
            }
        }
    }

    /// The persistent pool gives the same guarantee via handles.
    #[test]
    fn persistent_pool_survives_panic_storms(
        plan in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        let pool = ThreadPool::new(3).expect("spawn pool");
        let handles: Vec<_> = plan
            .iter()
            .copied()
            .enumerate()
            .map(|(index, panics)| {
                pool.submit(move || {
                    assert!(!panics, "injected panic in job {index}");
                    Ok(index)
                })
            })
            .collect();
        for (index, (handle, panics)) in handles.into_iter().zip(&plan).enumerate() {
            let result = handle.join();
            if *panics {
                prop_assert_eq!(
                    result.expect_err("panic surfaces").class(),
                    ErrorClass::Internal
                );
            } else {
                prop_assert_eq!(result.expect("survivor"), index);
            }
        }
    }
}

#[test]
fn outcome_labels_are_stable() {
    assert_eq!(CacheOutcome::Hit.label(), "hit");
    assert_eq!(CacheOutcome::Miss.label(), "miss");
    assert_eq!(
        CacheOutcome::Recovered(DarksilError::cache("x")).label(),
        "recovered"
    );
    // Serialisable into reports.
    assert_eq!("hit".to_json(), Json::Str("hit".into()));
}
