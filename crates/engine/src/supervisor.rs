//! Job supervision: deadlines, retries with deterministic backoff, a
//! per-class circuit breaker, and declared graceful degradation.
//!
//! The [`Supervisor`] wraps one job closure and drives it through a
//! policy described by a [`JobSpec`]:
//!
//! 1. Every attempt runs under a fresh [`CancellationToken`] carrying
//!    the spec's wall-clock budget, installed as the thread-scoped
//!    [`RunContext`] — CG iterations and policy-step loops below poll
//!    it and return `ErrorClass::Deadline` instead of wedging the
//!    worker.
//! 2. Failures whose [`ErrorClass::is_retryable`] re-run up to
//!    `max_retries` times, sleeping a seeded, jittered exponential
//!    backoff between attempts ([`BackoffPolicy`]). The delays are a
//!    pure function of (seed, job name, attempt), so a replayed run
//!    waits exactly the same milliseconds.
//! 3. A [`CircuitBreaker`] counts consecutive failures per artefact
//!    class; once a class trips, further retries in that class are
//!    skipped (first attempts still run), stopping retry storms when a
//!    whole family of jobs is broken.
//! 4. When retries are exhausted and the spec allows it, one final
//!    attempt runs in *declared degraded mode* (`RunContext::is_degraded`
//!    set): solvers relax their tolerances, injected hangs stand down,
//!    and a success is reported with `degraded = true` so the artefact
//!    can be tagged rather than dropped.
//!
//! Every attempt is recorded as an [`AttemptRecord`] (outcome, class,
//! backoff, wall-clock) for the run journal and error report.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use darksil_json::{Json, ToJson};
use darksil_robust::{CancellationToken, DarksilError, RunContext, SplitMix64};

/// A lifecycle transition reported through the supervisor's attempt
/// hook ([`Supervisor::set_attempt_hook`]). Observers — the service's
/// job-status stream, most notably — receive one of these per attempt
/// boundary, tagged with the job name, while the attempt is happening
/// rather than after `run` returns.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptTransition {
    /// An attempt is about to run.
    Started {
        /// 0-based attempt number.
        attempt: u32,
        /// Whether this attempt runs in declared degraded mode.
        degraded: bool,
    },
    /// An attempt failed retryably; a retry follows after backoff.
    Backoff {
        /// The failed attempt's 0-based number.
        attempt: u32,
        /// The failing error's class label.
        outcome: String,
        /// Milliseconds the supervisor sleeps before the retry.
        backoff_ms: u64,
    },
    /// The job reached a terminal outcome.
    Finished {
        /// The final attempt's 0-based number.
        attempt: u32,
        /// Whether a success came from a degraded attempt.
        degraded: bool,
        /// `"ok"` or the failing error's class label.
        outcome: String,
    },
}

impl ToJson for AttemptTransition {
    fn to_json(&self) -> Json {
        match self {
            Self::Started { attempt, degraded } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("attempt".to_string())),
                ("attempt".to_string(), Json::Num(f64::from(*attempt))),
                ("degraded".to_string(), Json::Bool(*degraded)),
            ]),
            Self::Backoff {
                attempt,
                outcome,
                backoff_ms,
            } => {
                #[allow(clippy::cast_precision_loss)]
                let backoff = *backoff_ms as f64;
                Json::Obj(vec![
                    ("kind".to_string(), Json::Str("backoff".to_string())),
                    ("attempt".to_string(), Json::Num(f64::from(*attempt))),
                    ("outcome".to_string(), Json::Str(outcome.clone())),
                    ("backoff_ms".to_string(), Json::Num(backoff)),
                ])
            }
            Self::Finished {
                attempt,
                degraded,
                outcome,
            } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("finished".to_string())),
                ("attempt".to_string(), Json::Num(f64::from(*attempt))),
                ("degraded".to_string(), Json::Bool(*degraded)),
                ("outcome".to_string(), Json::Str(outcome.clone())),
            ]),
        }
    }
}

/// Observer callback for [`AttemptTransition`]s; receives the job name
/// from the [`JobSpec`] plus the transition. Must be cheap and must
/// not call back into the same supervisor.
pub type AttemptHook = Arc<dyn Fn(&str, &AttemptTransition) + Send + Sync>;

/// Seeded, jittered exponential backoff. `delay_ms(name, retry)` is a
/// pure function of the policy and its inputs — deterministic across
/// runs, de-synchronised across jobs (the job name salts the jitter).
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `1 ± jitter`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base_ms: 50,
            cap_ms: 2_000,
            jitter: 0.25,
            seed: 0x5eed_ba5e,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `retry` (1-based) of the job
    /// called `name`, in milliseconds.
    #[must_use]
    pub fn delay_ms(&self, name: &str, retry: u32) -> u64 {
        let exponential = self
            .base_ms
            .saturating_mul(1_u64 << retry.saturating_sub(1).min(20))
            .min(self.cap_ms);
        let salt = crate::stable_hash(name.as_bytes());
        let mut rng = SplitMix64::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt)
                .wrapping_add(u64::from(retry)),
        );
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = 1.0 - jitter + 2.0 * jitter * rng.next_f64();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let jittered = (exponential as f64 * factor).round() as u64;
        jittered.min(self.cap_ms)
    }
}

/// Consecutive-failure counter per artefact class. A class whose count
/// reaches the threshold is *open*: the supervisor stops retrying jobs
/// of that class (first attempts still run, and a success resets the
/// counter and closes the breaker).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: Mutex<HashMap<String, u32>>,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures in
    /// one class (clamped to at least 1).
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        Self {
            threshold: threshold.max(1),
            consecutive: Mutex::new(HashMap::new()),
        }
    }

    /// Whether `class` has tripped the breaker.
    #[must_use]
    pub fn is_open(&self, class: &str) -> bool {
        self.consecutive
            .lock()
            .map(|map| map.get(class).copied().unwrap_or(0) >= self.threshold)
            .unwrap_or(false)
    }

    /// Records a successful attempt, closing the class's breaker.
    pub fn record_success(&self, class: &str) {
        if let Ok(mut map) = self.consecutive.lock() {
            map.remove(class);
        }
    }

    /// Records a failed attempt.
    pub fn record_failure(&self, class: &str) {
        if let Ok(mut map) = self.consecutive.lock() {
            *map.entry(class.to_string()).or_insert(0) += 1;
        }
    }
}

/// The supervision policy for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name, used in diagnostics and to salt the backoff jitter.
    pub name: String,
    /// Artefact class for the circuit breaker (jobs sharing a class
    /// share a consecutive-failure counter).
    pub class: String,
    /// Wall-clock budget per attempt; `None` runs unbounded.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Whether to run one final declared-degraded attempt after the
    /// retry budget is exhausted on a retryable failure.
    pub degrade_on_exhaustion: bool,
}

impl JobSpec {
    /// A spec with the given name and class, no deadline, two retries,
    /// and no degradation.
    #[must_use]
    pub fn new(name: impl Into<String>, class: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            class: class.into(),
            deadline: None,
            max_retries: 2,
            degrade_on_exhaustion: false,
        }
    }
}

/// One attempt in a supervised job's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// 0-based attempt number.
    pub attempt: u32,
    /// Whether this attempt ran in declared degraded mode.
    pub degraded: bool,
    /// `"ok"` or the failing error's class label.
    pub outcome: String,
    /// The failure message, for non-`ok` attempts.
    pub error: Option<String>,
    /// Backoff slept *after* this attempt before the next one, in
    /// milliseconds (0 when no retry followed).
    pub backoff_ms: u64,
    /// Wall-clock seconds this attempt took.
    pub seconds: f64,
}

impl ToJson for AttemptRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("attempt".to_string(), Json::Num(f64::from(self.attempt))),
            ("degraded".to_string(), Json::Bool(self.degraded)),
            ("outcome".to_string(), Json::Str(self.outcome.clone())),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), Json::Str(error.clone())));
        }
        #[allow(clippy::cast_precision_loss)]
        fields.push(("backoff_ms".to_string(), Json::Num(self.backoff_ms as f64)));
        fields.push(("seconds".to_string(), Json::Num(self.seconds)));
        Json::Obj(fields)
    }
}

/// The outcome of a supervised job: the final result, the per-attempt
/// timeline, and whether the success came from a degraded attempt.
#[derive(Debug)]
pub struct Supervised<T> {
    /// The last attempt's result.
    pub result: Result<T, DarksilError>,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Whether [`Self::result`] is a success produced in declared
    /// degraded mode.
    pub degraded: bool,
}

/// Drives jobs through deadline/retry/degrade supervision. Safe to
/// share across worker threads by reference (the breaker state is
/// internally locked).
pub struct Supervisor {
    backoff: BackoffPolicy,
    breaker: CircuitBreaker,
    /// Sleeps are real by default; tests shrink them via the policy.
    sleep: fn(Duration),
    /// Optional attempt-transition observer.
    hook: Option<AttemptHook>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("backoff", &self.backoff)
            .field("breaker", &self.breaker)
            .field("hook", &self.hook.as_ref().map(|_| "…"))
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// A supervisor with the given backoff policy and circuit-breaker
    /// threshold.
    #[must_use]
    pub fn new(backoff: BackoffPolicy, breaker_threshold: u32) -> Self {
        Self {
            backoff,
            breaker: CircuitBreaker::new(breaker_threshold),
            sleep: std::thread::sleep,
            hook: None,
        }
    }

    /// Installs the attempt-transition observer (replacing any prior
    /// one). Install before the supervisor starts running jobs; the
    /// hook fires on every attempt start, scheduled backoff, and
    /// terminal outcome, on the thread driving the job.
    pub fn set_attempt_hook(&mut self, hook: AttemptHook) {
        self.hook = Some(hook);
    }

    /// Fires the hook, if installed.
    fn notify(&self, name: &str, transition: &AttemptTransition) {
        if let Some(hook) = &self.hook {
            hook(name, transition);
        }
    }

    /// The breaker, for reporting which classes have tripped.
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Runs `job` under `spec`'s policy. The job closure observes its
    /// deadline, attempt number, and degraded flag through the
    /// thread-scoped [`RunContext`] (`darksil_robust::check_deadline`
    /// and friends); it needs no supervision-aware signature.
    pub fn run<T>(
        &self,
        spec: &JobSpec,
        job: impl Fn() -> Result<T, DarksilError>,
    ) -> Supervised<T> {
        let mut attempts = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            self.notify(
                &spec.name,
                &AttemptTransition::Started {
                    attempt,
                    degraded: false,
                },
            );
            let (result, seconds) = self.attempt(spec, attempt, false, &job);
            match result {
                Ok(value) => {
                    self.breaker.record_success(&spec.class);
                    attempts.push(AttemptRecord {
                        attempt,
                        degraded: false,
                        outcome: "ok".to_string(),
                        error: None,
                        backoff_ms: 0,
                        seconds,
                    });
                    self.notify(
                        &spec.name,
                        &AttemptTransition::Finished {
                            attempt,
                            degraded: false,
                            outcome: "ok".to_string(),
                        },
                    );
                    return Supervised {
                        result: Ok(value),
                        attempts,
                        degraded: false,
                    };
                }
                Err(error) => {
                    self.breaker.record_failure(&spec.class);
                    let retryable = error.class().is_retryable();
                    let breaker_open = self.breaker.is_open(&spec.class);
                    if retryable && attempt < spec.max_retries && !breaker_open {
                        let next_retry = attempt + 1;
                        let backoff_ms = self.backoff.delay_ms(&spec.name, next_retry);
                        darksil_obs::counter("engine.supervisor.retry", 1);
                        attempts.push(AttemptRecord {
                            attempt,
                            degraded: false,
                            outcome: error.class().label().to_string(),
                            error: Some(error.to_string()),
                            backoff_ms,
                            seconds,
                        });
                        self.notify(
                            &spec.name,
                            &AttemptTransition::Backoff {
                                attempt,
                                outcome: error.class().label().to_string(),
                                backoff_ms,
                            },
                        );
                        (self.sleep)(Duration::from_millis(backoff_ms));
                        attempt = next_retry;
                        continue;
                    }
                    if retryable && attempt < spec.max_retries && breaker_open {
                        // The retry budget was there but the breaker
                        // vetoed it — operators watching `trace
                        // summarize` need this distinct from ordinary
                        // exhaustion to spot a failing class.
                        darksil_obs::counter("engine.supervisor.breaker_open", 1);
                    }
                    attempts.push(AttemptRecord {
                        attempt,
                        degraded: false,
                        outcome: error.class().label().to_string(),
                        error: Some(error.to_string()),
                        backoff_ms: 0,
                        seconds,
                    });
                    // Last resort: one declared-degraded attempt with a
                    // fresh deadline. The breaker does not gate it — it
                    // is the escape hatch, not another retry.
                    if retryable && spec.degrade_on_exhaustion {
                        let degraded_attempt = attempt + 1;
                        darksil_obs::counter("engine.supervisor.degraded", 1);
                        self.notify(
                            &spec.name,
                            &AttemptTransition::Started {
                                attempt: degraded_attempt,
                                degraded: true,
                            },
                        );
                        let (result, seconds) = self.attempt(spec, degraded_attempt, true, &job);
                        match result {
                            Ok(value) => {
                                self.breaker.record_success(&spec.class);
                                attempts.push(AttemptRecord {
                                    attempt: degraded_attempt,
                                    degraded: true,
                                    outcome: "ok".to_string(),
                                    error: None,
                                    backoff_ms: 0,
                                    seconds,
                                });
                                self.notify(
                                    &spec.name,
                                    &AttemptTransition::Finished {
                                        attempt: degraded_attempt,
                                        degraded: true,
                                        outcome: "ok".to_string(),
                                    },
                                );
                                return Supervised {
                                    result: Ok(value),
                                    attempts,
                                    degraded: true,
                                };
                            }
                            Err(final_error) => {
                                self.breaker.record_failure(&spec.class);
                                attempts.push(AttemptRecord {
                                    attempt: degraded_attempt,
                                    degraded: true,
                                    outcome: final_error.class().label().to_string(),
                                    error: Some(final_error.to_string()),
                                    backoff_ms: 0,
                                    seconds,
                                });
                                self.notify(
                                    &spec.name,
                                    &AttemptTransition::Finished {
                                        attempt: degraded_attempt,
                                        degraded: true,
                                        outcome: final_error.class().label().to_string(),
                                    },
                                );
                                return Supervised {
                                    result: Err(final_error),
                                    attempts,
                                    degraded: false,
                                };
                            }
                        }
                    }
                    self.notify(
                        &spec.name,
                        &AttemptTransition::Finished {
                            attempt,
                            degraded: false,
                            outcome: error.class().label().to_string(),
                        },
                    );
                    return Supervised {
                        result: Err(error),
                        attempts,
                        degraded: false,
                    };
                }
            }
        }
    }

    /// Runs one attempt under a fresh token scoped to the thread.
    fn attempt<T>(
        &self,
        spec: &JobSpec,
        attempt: u32,
        degraded: bool,
        job: &impl Fn() -> Result<T, DarksilError>,
    ) -> (Result<T, DarksilError>, f64) {
        let token = spec.deadline.map_or_else(
            CancellationToken::unbounded,
            CancellationToken::with_deadline,
        );
        let context = RunContext::with_token(token)
            .attempt_number(attempt)
            .degraded_mode(degraded);
        let _span = darksil_obs::span("engine.supervisor.attempt");
        let started = Instant::now();
        let result = darksil_robust::scoped(&context, job);
        (result, started.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_supervisor(threshold: u32) -> Supervisor {
        Supervisor::new(
            BackoffPolicy {
                base_ms: 0,
                cap_ms: 0,
                ..BackoffPolicy::default()
            },
            threshold,
        )
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let policy = BackoffPolicy::default();
        let a = policy.delay_ms("fig5", 1);
        let b = policy.delay_ms("fig5", 1);
        assert_eq!(a, b, "same inputs, same delay");
        assert_ne!(
            policy.delay_ms("fig5", 1),
            policy.delay_ms("fig6", 1),
            "different jobs de-synchronise"
        );
        // Jitter stays within ±25% of the exponential schedule.
        for retry in 1..=4 {
            let nominal = 50 * (1 << (retry - 1));
            let delay = policy.delay_ms("fig5", retry);
            #[allow(clippy::cast_precision_loss)]
            let ratio = delay as f64 / f64::from(nominal);
            assert!((0.75..=1.25).contains(&ratio), "retry {retry}: {delay} ms");
        }
        // The cap bounds even deep retries.
        assert!(policy.delay_ms("fig5", 30) <= policy.cap_ms);
    }

    #[test]
    fn first_success_needs_no_retries() {
        let sup = fast_supervisor(4);
        let spec = JobSpec::new("job", "fast");
        let out = sup.run(&spec, || Ok(42));
        assert_eq!(out.result.expect("ok"), 42);
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.attempts[0].outcome, "ok");
        assert!(!out.degraded);
    }

    #[test]
    fn transient_failures_are_retried_until_success() {
        let sup = fast_supervisor(10);
        let spec = JobSpec {
            max_retries: 3,
            ..JobSpec::new("flaky", "thermal")
        };
        let calls = AtomicU32::new(0);
        let out = sup.run(&spec, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(DarksilError::injected("transient"))
            } else {
                Ok("done")
            }
        });
        assert_eq!(out.result.expect("third attempt wins"), "done");
        assert_eq!(out.attempts.len(), 3);
        assert_eq!(out.attempts[0].outcome, "injected");
        assert_eq!(out.attempts[2].outcome, "ok");
        // Attempt numbers line up with the RunContext the job saw.
        assert_eq!(out.attempts[2].attempt, 2);
    }

    #[test]
    fn breaker_vetoed_retries_are_counted_for_operators() {
        darksil_obs::enable();
        let sup = fast_supervisor(1);
        let spec = JobSpec {
            max_retries: 3,
            ..JobSpec::new("storm", "storm-class")
        };
        // First failure trips the threshold-1 breaker; the remaining
        // retry budget is vetoed and surfaced as a counter.
        let out = sup.run(&spec, || -> Result<(), DarksilError> {
            Err(DarksilError::injected("always fails"))
        });
        assert!(out.result.is_err());
        assert_eq!(out.attempts.len(), 1, "no retries once the breaker opens");
        let trace = darksil_obs::drain();
        assert_eq!(trace.counter("engine.supervisor.breaker_open"), 1);
        assert_eq!(trace.counter("engine.supervisor.retry"), 0);
        darksil_obs::disable();
    }

    #[test]
    fn non_retryable_failures_fail_fast() {
        let sup = fast_supervisor(4);
        let spec = JobSpec {
            max_retries: 5,
            ..JobSpec::new("bad-config", "fast")
        };
        let calls = AtomicU32::new(0);
        let out = sup.run(&spec, || -> Result<(), DarksilError> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(DarksilError::config("node 14 does not exist"))
        });
        assert!(out.result.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1, "config errors never retry");
    }

    #[test]
    fn the_job_observes_its_attempt_number_and_deadline() {
        let sup = fast_supervisor(10);
        let spec = JobSpec {
            deadline: Some(Duration::from_secs(3600)),
            max_retries: 2,
            ..JobSpec::new("ctx", "fast")
        };
        let out = sup.run(&spec, || {
            let attempt = darksil_robust::current_attempt();
            darksil_robust::check_deadline("probe")?;
            if attempt < 2 {
                Err(DarksilError::solver(format!("stall on attempt {attempt}")))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.result.expect("succeeds on attempt 2"), 2);
    }

    #[test]
    fn exhausted_retries_degrade_when_allowed() {
        let sup = fast_supervisor(10);
        let spec = JobSpec {
            max_retries: 1,
            degrade_on_exhaustion: true,
            ..JobSpec::new("hot", "thermal")
        };
        let out = sup.run(&spec, || {
            if darksil_robust::is_degraded() {
                Ok("coarse answer")
            } else {
                Err(DarksilError::deadline("full-accuracy solve too slow"))
            }
        });
        assert_eq!(out.result.expect("degraded attempt wins"), "coarse answer");
        assert!(out.degraded);
        let last = out.attempts.last().expect("records");
        assert!(last.degraded);
        assert_eq!(last.outcome, "ok");
        assert_eq!(out.attempts.len(), 3, "2 strict attempts + 1 degraded");
    }

    #[test]
    fn an_open_breaker_stops_retries_but_not_first_attempts() {
        let sup = fast_supervisor(2);
        let spec = JobSpec {
            max_retries: 5,
            ..JobSpec::new("storm", "thermal")
        };
        let calls = AtomicU32::new(0);
        let out = sup.run(&spec, || -> Result<(), DarksilError> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(DarksilError::solver("still broken"))
        });
        assert!(out.result.is_err());
        // Threshold 2: first attempt + one retry, then the breaker opens.
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert!(sup.breaker().is_open("thermal"));
        // A different job in the tripped class fails fast on attempt 1.
        let calls2 = AtomicU32::new(0);
        let out2 = sup.run(&spec, || -> Result<(), DarksilError> {
            calls2.fetch_add(1, Ordering::SeqCst);
            Err(DarksilError::solver("same storm"))
        });
        assert!(out2.result.is_err());
        assert_eq!(calls2.load(Ordering::SeqCst), 1, "no retry while open");
        // A success closes the breaker again.
        let _ = sup.run(&spec, || Ok(()));
        assert!(!sup.breaker().is_open("thermal"));
    }

    #[test]
    fn a_deadline_cancels_a_cooperative_spin_and_degrades() {
        let sup = fast_supervisor(10);
        let spec = JobSpec {
            deadline: Some(Duration::from_millis(30)),
            max_retries: 1,
            degrade_on_exhaustion: true,
            ..JobSpec::new("hang", "thermal")
        };
        let out = sup.run(&spec, || {
            if darksil_robust::is_degraded() {
                return Ok("relaxed solve converged");
            }
            loop {
                darksil_robust::check_deadline("spin")?;
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert_eq!(
            out.result.expect("degraded rescue"),
            "relaxed solve converged"
        );
        assert!(out.degraded);
        assert_eq!(out.attempts[0].outcome, "deadline");
        assert_eq!(out.attempts[1].outcome, "deadline");
    }

    #[test]
    fn the_attempt_hook_sees_every_transition_in_order() {
        let mut sup = fast_supervisor(10);
        let seen: Arc<Mutex<Vec<(String, AttemptTransition)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        sup.set_attempt_hook(Arc::new(move |name, transition| {
            if let Ok(mut log) = sink.lock() {
                log.push((name.to_string(), transition.clone()));
            }
        }));
        let spec = JobSpec {
            max_retries: 1,
            degrade_on_exhaustion: true,
            ..JobSpec::new("watched", "thermal")
        };
        let out = sup.run(&spec, || {
            if darksil_robust::is_degraded() {
                Ok("coarse")
            } else {
                Err(DarksilError::deadline("slow"))
            }
        });
        assert!(out.degraded);
        let log = seen.lock().expect("hook log");
        assert!(log.iter().all(|(name, _)| name == "watched"));
        let transitions: Vec<&AttemptTransition> = log.iter().map(|(_, t)| t).collect();
        assert_eq!(
            transitions,
            vec![
                &AttemptTransition::Started {
                    attempt: 0,
                    degraded: false
                },
                &AttemptTransition::Backoff {
                    attempt: 0,
                    outcome: "deadline".to_string(),
                    backoff_ms: 0
                },
                &AttemptTransition::Started {
                    attempt: 1,
                    degraded: false
                },
                &AttemptTransition::Started {
                    attempt: 2,
                    degraded: true
                },
                &AttemptTransition::Finished {
                    attempt: 2,
                    degraded: true,
                    outcome: "ok".to_string()
                },
            ]
        );
    }

    #[test]
    fn transitions_serialise_with_a_kind_tag() {
        let started = AttemptTransition::Started {
            attempt: 0,
            degraded: false,
        }
        .to_json();
        assert_eq!(started.get("kind"), Some(&Json::Str("attempt".into())));
        let backoff = AttemptTransition::Backoff {
            attempt: 1,
            outcome: "deadline".to_string(),
            backoff_ms: 75,
        }
        .to_json();
        assert_eq!(backoff.get("backoff_ms"), Some(&Json::Num(75.0)));
        let finished = AttemptTransition::Finished {
            attempt: 2,
            degraded: true,
            outcome: "ok".to_string(),
        }
        .to_json();
        assert_eq!(finished.get("kind"), Some(&Json::Str("finished".into())));
        assert_eq!(finished.get("degraded"), Some(&Json::Bool(true)));
    }

    #[test]
    fn attempt_records_serialise() {
        let record = AttemptRecord {
            attempt: 1,
            degraded: false,
            outcome: "deadline".to_string(),
            error: Some("[deadline] cg iteration: wall-clock deadline exceeded".to_string()),
            backoff_ms: 75,
            seconds: 0.5,
        };
        let json = record.to_json();
        assert_eq!(json.get("outcome"), Some(&Json::Str("deadline".into())));
        assert_eq!(json.get("backoff_ms"), Some(&Json::Num(75.0)));
        assert!(json.get("error").is_some());
    }
}
