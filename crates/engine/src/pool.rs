//! A fixed-size worker thread pool with panic isolation per job.
//!
//! Workers block on a `Condvar` over a shared `Mutex<VecDeque>` job
//! queue; each submitted job reports back through its own `mpsc`
//! channel. A panicking job is caught inside the worker, converted into
//! a [`DarksilError`] of class `internal`, and delivered on the job's
//! [`JobHandle`] — the worker itself survives and keeps serving the
//! queue.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use darksil_robust::DarksilError;

/// A queued unit of work, already wrapped so it cannot unwind.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state guarded by the pool mutex.
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// Shared between the pool handle and its workers.
struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A fixed-size pool of worker threads for `'static` jobs.
///
/// Dropping the pool drains no further work: pending jobs still in the
/// queue are executed before the workers exit, so every issued
/// [`JobHandle`] resolves.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads (at least one).
    ///
    /// # Errors
    ///
    /// Returns a [`DarksilError`] of class `internal` if the OS refuses
    /// to spawn a thread.
    pub fn new(workers: usize) -> Result<Self, DarksilError> {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(workers.max(1));
        for index in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("darksil-worker-{index}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| DarksilError::internal(format!("cannot spawn worker: {e}")))?;
            handles.push(handle);
        }
        Ok(Self {
            shared,
            workers: handles,
        })
    }

    /// The number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` and returns a handle to its eventual result.
    ///
    /// A panic inside `job` is isolated: the handle resolves to a
    /// [`DarksilError`] of class `internal` carrying the panic message.
    pub fn submit<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T, DarksilError> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        // Capture the submitter's RunContext so a supervised caller's
        // deadline/degraded state travels with the job onto the worker;
        // the trace parent rides along so the job's spans hang off the
        // submitter's open span.
        let context = darksil_robust::run_context();
        let trace_parent = darksil_obs::current_span();
        // Each submission is its own event-ordering fork, captured on
        // the submitting thread; the worker enters the (single) child
        // branch so the job's events order at the submission point.
        let fork = darksil_obs::event_fork();
        let submitted = std::time::Instant::now();
        let wrapped: Job = Box::new(move || {
            let _trace_scope = darksil_obs::parent_scope(trace_parent);
            darksil_obs::observe_hist("engine.queue_wait_s", submitted.elapsed().as_secs_f64());
            let outcome = {
                // Dropped (flushing the event buffer) before the result
                // is sent, so a join can never observe missing events.
                let _event_scope = fork.child(0);
                darksil_robust::scoped(&context, || {
                    let _job_span = darksil_obs::span("engine.pool.job");
                    match catch_unwind(AssertUnwindSafe(job)) {
                        Ok(result) => result,
                        Err(payload) => Err(DarksilError::internal(format!(
                            "job panicked: {}",
                            crate::panic_message(payload.as_ref())
                        ))),
                    }
                })
            };
            // The receiver may have been dropped; nothing to do then.
            let _ = tx.send(outcome);
        });
        if let Ok(mut state) = self.shared.state.lock() {
            state.queue.push_back(wrapped);
            self.shared.work_ready.notify_one();
        }
        JobHandle { rx }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: pop jobs until the queue is empty *and* shutdown is
/// requested. Jobs never unwind (they are wrapped at submission).
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let Ok(mut state) = shared.state.lock() else {
                return;
            };
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = match shared.work_ready.wait(state) {
                    Ok(guard) => guard,
                    Err(_) => return,
                };
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// The pending result of one submitted job.
pub struct JobHandle<T> {
    rx: mpsc::Receiver<Result<T, DarksilError>>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// Propagates the job's own error; a vanished worker yields a
    /// [`DarksilError`] of class `internal`.
    pub fn join(self) -> Result<T, DarksilError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(DarksilError::internal(
                "worker dropped the job without reporting a result",
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_results_match_handles() {
        let pool = ThreadPool::new(3).expect("spawn pool");
        assert_eq!(pool.workers(), 3);
        let handles: Vec<JobHandle<usize>> =
            (0..20).map(|i| pool.submit(move || Ok(i * i))).collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.join().expect("job succeeds"), i * i);
        }
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = ThreadPool::new(1).expect("spawn pool");
        let bad: JobHandle<usize> = pool.submit(|| panic!("deliberate"));
        let good = pool.submit(|| Ok(7_usize));
        let err = bad.join().expect_err("panic surfaces as an error");
        assert_eq!(err.class(), darksil_robust::ErrorClass::Internal);
        assert!(err.to_string().contains("deliberate"), "{err}");
        // The single worker survived the panic and served the next job.
        assert_eq!(good.join().expect("worker survived"), 7);
    }

    #[test]
    fn pending_jobs_finish_before_shutdown() {
        let pool = ThreadPool::new(2).expect("spawn pool");
        let handles: Vec<JobHandle<u64>> = (0..50)
            .map(|i| {
                pool.submit(move || {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    Ok(i)
                })
            })
            .collect();
        drop(pool);
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.join().expect("job survived shutdown"), i as u64);
        }
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = ThreadPool::new(0).expect("spawn pool");
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.submit(|| Ok(1_u8)).join().expect("runs"), 1);
    }
}
