//! Content-addressed result cache with an in-memory front and an
//! on-disk store.
//!
//! A cache key is a stable 64-bit FNV-1a digest over the artefact
//! name, a code-version salt, and the canonical (compact) JSON of the
//! job's scenario inputs. Changing any of the three changes the digest
//! and therefore the on-disk file name, so stale entries simply miss —
//! no mtime heuristics. Entries that *do* resolve but are unreadable
//! (truncated file, hand-edited garbage, digest/salt mismatch inside
//! the envelope) are reported as [`CacheOutcome::Recovered`] with a
//! typed [`DarksilError`] diagnostic and the value is recomputed; a bad
//! cache can never fail a run.
//!
//! Envelopes additionally carry `payload_fnv`, the FNV-1a digest of the
//! canonical payload text, so a flipped bit inside an otherwise
//! well-formed entry is caught on load — and so the offline maintenance
//! pass ([`scan_dir`]) can verify entries without knowing the scenario
//! inputs or salt that keyed them.

use std::collections::HashMap;
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use darksil_json::Json;
use darksil_robust::DarksilError;

/// Where drivers keep the on-disk store by default.
pub const DEFAULT_CACHE_DIR: &str = "results/.cache";

/// Envelope schema marker; bump when the on-disk layout changes.
/// v2 added `payload_fnv` (self-verifying payload digest); v1 entries
/// read as stale and are recomputed.
const SCHEMA: &str = "darksil-cache-v2";

/// Stable 64-bit FNV-1a hash. Not cryptographic — it keys a local
/// result cache, where speed and stability across runs are what
/// matters.
#[must_use]
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The content address of one cached result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    artefact: String,
    digest: u64,
}

impl CacheKey {
    /// Builds the key for `artefact` with the given scenario `inputs`
    /// and code-version `salt`.
    #[must_use]
    pub fn new(artefact: &str, inputs: &Json, salt: &str) -> Self {
        let mut material = String::new();
        material.push_str(artefact);
        material.push('\0');
        material.push_str(salt);
        material.push('\0');
        material.push_str(&inputs.compact());
        Self {
            artefact: artefact.to_string(),
            digest: stable_hash(material.as_bytes()),
        }
    }

    /// The artefact name this key belongs to.
    #[must_use]
    pub fn artefact(&self) -> &str {
        &self.artefact
    }

    /// The digest as a fixed-width hex string (JSON-safe: a raw u64
    /// does not survive an f64 round trip).
    #[must_use]
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }

    /// The on-disk file name: `<artefact>-<digest>.json`, with the
    /// artefact sanitised to a conservative character set.
    #[must_use]
    pub fn file_name(&self) -> String {
        let safe: String = self
            .artefact
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}-{}.json", self.digest_hex())
    }
}

/// How a cache consultation went.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheOutcome {
    /// The entry was served from memory or disk.
    Hit,
    /// No entry existed; the value was (or must be) computed.
    Miss,
    /// An entry existed but was corrupt or stale; it was discarded and
    /// the value recomputed. Carries the diagnostic.
    Recovered(DarksilError),
}

impl CacheOutcome {
    /// Stable lowercase label for machine-readable reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Recovered(_) => "recovered",
        }
    }

    /// Whether the value was served without recomputation.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, Self::Hit)
    }
}

/// The cache: an in-memory map in front of a directory of JSON
/// envelopes. Safe to share across worker threads by reference.
pub struct ResultCache {
    dir: PathBuf,
    salt: String,
    memory: Mutex<HashMap<String, Json>>,
}

impl ResultCache {
    /// Opens (lazily — the directory is created on first store) a cache
    /// rooted at `dir` with the given code-version `salt`.
    pub fn open(dir: impl Into<PathBuf>, salt: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            salt: salt.into(),
            memory: Mutex::new(HashMap::new()),
        }
    }

    /// The on-disk root.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Builds the content address for `artefact` under this cache's
    /// salt.
    #[must_use]
    pub fn key(&self, artefact: &str, inputs: &Json) -> CacheKey {
        CacheKey::new(artefact, inputs, &self.salt)
    }

    /// Looks the key up in memory, then on disk. Never fails: disk
    /// problems are folded into the returned [`CacheOutcome`].
    pub fn lookup(&self, key: &CacheKey) -> (Option<Json>, CacheOutcome) {
        let _span = darksil_obs::span("engine.cache.lookup");
        let name = key.file_name();
        if let Ok(memory) = self.memory.lock() {
            if let Some(payload) = memory.get(&name) {
                darksil_obs::counter("engine.cache.hit", 1);
                return (Some(payload.clone()), CacheOutcome::Hit);
            }
        }
        match self.load_from_disk(key, &name) {
            Ok(Some(payload)) => {
                if let Ok(mut memory) = self.memory.lock() {
                    memory.insert(name, payload.clone());
                }
                darksil_obs::counter("engine.cache.hit", 1);
                (Some(payload), CacheOutcome::Hit)
            }
            Ok(None) => {
                darksil_obs::counter("engine.cache.miss", 1);
                (None, CacheOutcome::Miss)
            }
            Err(diagnostic) => {
                darksil_obs::counter("engine.cache.recovered", 1);
                (None, CacheOutcome::Recovered(diagnostic))
            }
        }
    }

    /// Writes `payload` for `key` to memory and disk (atomically, via a
    /// temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns a [`DarksilError`] of class `io` when the store cannot
    /// be written; callers that only cache opportunistically may ignore
    /// it.
    pub fn store(&self, key: &CacheKey, payload: &Json) -> Result<(), DarksilError> {
        let _span = darksil_obs::span("engine.cache.store");
        darksil_obs::counter("engine.cache.store", 1);
        let name = key.file_name();
        let envelope = Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            (
                "artefact".to_string(),
                Json::Str(key.artefact().to_string()),
            ),
            ("salt".to_string(), Json::Str(self.salt.clone())),
            ("digest".to_string(), Json::Str(key.digest_hex())),
            (
                "payload_fnv".to_string(),
                Json::Str(payload_fnv_hex(payload)),
            ),
            ("payload".to_string(), payload.clone()),
        ]);
        fs::create_dir_all(&self.dir)
            .map_err(|e| DarksilError::io(format!("cannot create {}: {e}", self.dir.display())))?;
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        fs::write(&tmp, envelope.pretty())
            .map_err(|e| DarksilError::io(format!("cannot write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &path)
            .map_err(|e| DarksilError::io(format!("cannot commit {}: {e}", path.display())))?;
        if let Ok(mut memory) = self.memory.lock() {
            memory.insert(name, payload.clone());
        }
        Ok(())
    }

    /// Serves `key` from the cache or computes and stores it.
    ///
    /// A corrupt or stale entry is discarded ([`CacheOutcome::Recovered`])
    /// and the value recomputed; a failure to *store* the fresh value is
    /// likewise folded into the outcome rather than failing the call.
    ///
    /// # Errors
    ///
    /// Only `compute`'s own error is propagated.
    pub fn get_or_compute(
        &self,
        key: &CacheKey,
        compute: impl FnOnce() -> Result<Json, DarksilError>,
    ) -> Result<(Json, CacheOutcome), DarksilError> {
        let (cached, outcome) = self.lookup(key);
        if let Some(payload) = cached {
            return Ok((payload, outcome));
        }
        let payload = compute()?;
        let outcome = match (self.store(key, &payload), outcome) {
            (Ok(()), outcome) => outcome,
            (Err(diag), CacheOutcome::Recovered(prior)) => {
                CacheOutcome::Recovered(diag.context(prior.to_string()))
            }
            (Err(diag), _) => CacheOutcome::Recovered(diag),
        };
        Ok((payload, outcome))
    }

    /// Reads and validates one envelope. `Ok(None)` means "no entry";
    /// `Err` means "entry present but unusable".
    fn load_from_disk(&self, key: &CacheKey, name: &str) -> Result<Option<Json>, DarksilError> {
        let path = self.dir.join(name);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(DarksilError::io(format!(
                    "cannot read cache entry {}: {e}",
                    path.display()
                )))
            }
        };
        let envelope = darksil_json::parse(&text).map_err(|e| {
            DarksilError::cache(format!("corrupt cache entry {}: {e}", path.display()))
        })?;
        let field = |name: &str| {
            envelope.get(name).and_then(|v| match v {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            })
        };
        if field("schema") != Some(SCHEMA)
            || field("salt") != Some(self.salt.as_str())
            || field("digest") != Some(key.digest_hex().as_str())
            || field("artefact") != Some(key.artefact())
        {
            return Err(DarksilError::cache(format!(
                "stale cache entry {} (schema/salt/digest mismatch)",
                path.display()
            )));
        }
        let payload = envelope.get("payload").cloned().ok_or_else(|| {
            DarksilError::cache(format!("cache entry {} has no payload", path.display()))
        })?;
        let expected = payload_fnv_hex(&payload);
        if field("payload_fnv") != Some(expected.as_str()) {
            return Err(DarksilError::cache(format!(
                "corrupt cache entry {} (payload digest mismatch)",
                path.display()
            )));
        }
        Ok(Some(payload))
    }
}

/// The FNV-1a digest of a payload's canonical (compact) text, as a
/// fixed-width hex string.
fn payload_fnv_hex(payload: &Json) -> String {
    format!("{:016x}", stable_hash(payload.compact().as_bytes()))
}

/// The condition of one on-disk entry as judged by [`scan_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryCondition {
    /// The envelope parses, carries the current schema, and its stored
    /// payload digest re-checks against the payload.
    Valid,
    /// The entry is unusable; carries the reason. Includes leftover
    /// `.tmp` files from interrupted writes and stale-schema entries.
    Corrupt(String),
}

/// One entry from a maintenance scan of a cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryReport {
    /// File name inside the cache directory.
    pub file_name: String,
    /// The artefact recorded in the envelope, when readable.
    pub artefact: Option<String>,
    /// On-disk size in bytes.
    pub bytes: u64,
    /// Verification verdict.
    pub condition: EntryCondition,
}

impl EntryReport {
    /// Whether this entry verified clean.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.condition == EntryCondition::Valid
    }
}

/// Scans a cache directory and verifies every entry *structurally*:
/// envelope parses, schema is current, required fields are present, and
/// the stored `payload_fnv` digest matches the payload. This is
/// salt-agnostic — it needs no knowledge of the scenario inputs that
/// keyed the entries, so it works on any cache directory, whichever
/// driver produced it. Leftover `.tmp` files from interrupted writes
/// are reported as corrupt. Reports come back sorted by file name.
///
/// A missing directory scans as empty (a cache that was never written
/// is clean, not broken).
///
/// # Errors
///
/// Returns a [`DarksilError`] of class `io` when the directory itself
/// cannot be listed.
pub fn scan_dir(dir: &Path) -> Result<Vec<EntryReport>, DarksilError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(DarksilError::io(format!(
                "cannot list cache dir {}: {e}",
                dir.display()
            )))
        }
    };
    let mut reports = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| DarksilError::io(format!("cannot list {}: {e}", dir.display())))?;
        let file_name = entry.file_name().to_string_lossy().into_owned();
        let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        if file_name.ends_with(".json.tmp") {
            reports.push(EntryReport {
                file_name,
                artefact: None,
                bytes,
                condition: EntryCondition::Corrupt(
                    "leftover temp file from an interrupted write".to_string(),
                ),
            });
            continue;
        }
        if !file_name.ends_with(".json") {
            continue;
        }
        let (artefact, condition) = verify_entry(&dir.join(&file_name));
        reports.push(EntryReport {
            file_name,
            artefact,
            bytes,
            condition,
        });
    }
    reports.sort_by(|a, b| a.file_name.cmp(&b.file_name));
    Ok(reports)
}

/// Deletes the corrupt entries named in `reports` from `dir`, returning
/// how many were removed.
///
/// # Errors
///
/// Returns a [`DarksilError`] of class `io` on the first failed delete.
pub fn evict_corrupt(dir: &Path, reports: &[EntryReport]) -> Result<usize, DarksilError> {
    let mut removed = 0;
    for report in reports.iter().filter(|r| !r.is_valid()) {
        let path = dir.join(&report.file_name);
        fs::remove_file(&path)
            .map_err(|e| DarksilError::io(format!("cannot remove {}: {e}", path.display())))?;
        removed += 1;
    }
    Ok(removed)
}

/// Deletes every cache entry (valid or not, including `.tmp` leftovers)
/// from `dir`, returning how many files were removed. The directory
/// itself and any unrelated files are left alone; a missing directory
/// clears zero entries.
///
/// # Errors
///
/// Returns a [`DarksilError`] of class `io` when listing or deleting
/// fails.
pub fn clear_dir(dir: &Path) -> Result<usize, DarksilError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(0),
        Err(e) => {
            return Err(DarksilError::io(format!(
                "cannot list cache dir {}: {e}",
                dir.display()
            )))
        }
    };
    let mut removed = 0;
    for entry in entries {
        let entry =
            entry.map_err(|e| DarksilError::io(format!("cannot list {}: {e}", dir.display())))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.ends_with(".json") || name.ends_with(".json.tmp")) {
            continue;
        }
        let path = entry.path();
        fs::remove_file(&path)
            .map_err(|e| DarksilError::io(format!("cannot remove {}: {e}", path.display())))?;
        removed += 1;
    }
    Ok(removed)
}

/// Structural verification of one envelope file.
fn verify_entry(path: &Path) -> (Option<String>, EntryCondition) {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return (None, EntryCondition::Corrupt(format!("unreadable: {e}"))),
    };
    let envelope = match darksil_json::parse(&text) {
        Ok(envelope) => envelope,
        Err(e) => return (None, EntryCondition::Corrupt(format!("invalid JSON: {e}"))),
    };
    let field = |name: &str| {
        envelope.get(name).and_then(|v| match v {
            Json::Str(s) => Some(s.to_string()),
            _ => None,
        })
    };
    let artefact = field("artefact");
    match field("schema") {
        Some(schema) if schema == SCHEMA => {}
        Some(schema) => {
            return (
                artefact,
                EntryCondition::Corrupt(format!("stale schema {schema}, expected {SCHEMA}")),
            )
        }
        None => {
            return (
                artefact,
                EntryCondition::Corrupt("no schema field".to_string()),
            )
        }
    }
    if field("salt").is_none() || field("digest").is_none() || artefact.is_none() {
        return (
            artefact,
            EntryCondition::Corrupt("missing envelope fields".to_string()),
        );
    }
    let Some(payload) = envelope.get("payload") else {
        return (artefact, EntryCondition::Corrupt("no payload".to_string()));
    };
    let expected = payload_fnv_hex(payload);
    if field("payload_fnv").as_deref() != Some(expected.as_str()) {
        return (
            artefact,
            EntryCondition::Corrupt("payload digest mismatch".to_string()),
        );
    }
    (artefact, EntryCondition::Valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn keys_are_stable_and_sensitive_to_every_component() {
        let inputs = Json::Obj(vec![("fidelity".into(), Json::Str("quick".into()))]);
        let a = CacheKey::new("fig5", &inputs, "v1");
        let b = CacheKey::new("fig5", &inputs, "v1");
        assert_eq!(a, b);
        assert_ne!(a, CacheKey::new("fig6", &inputs, "v1"));
        assert_ne!(a, CacheKey::new("fig5", &inputs, "v2"));
        let other = Json::Obj(vec![("fidelity".into(), Json::Str("paper".into()))]);
        assert_ne!(a, CacheKey::new("fig5", &other, "v1"));
    }

    #[test]
    fn file_names_are_sanitised() {
        let key = CacheKey::new("weird/../name", &Json::Null, "v1");
        let name = key.file_name();
        assert!(!name.contains('/'), "{name}");
        assert!(name.ends_with(".json"), "{name}");
    }
}
