//! `darksil-engine` — the workspace's parallel execution subsystem.
//!
//! Three pieces, all std-only (the workspace is dependency-free by
//! design):
//!
//! - [`ThreadPool`], a fixed-size worker pool over `std::thread` with a
//!   `Mutex`/`Condvar` job queue and `mpsc` result channels. Every job
//!   runs under `catch_unwind`, so a panicking job surfaces as a
//!   classified [`DarksilError`](darksil_robust::DarksilError) on its
//!   [`JobHandle`] instead of taking a worker (or the process) down.
//! - [`Engine::par_map`], a deterministic fan-out primitive: results
//!   come back **in submission order** regardless of completion order,
//!   so `--jobs 4` output is byte-identical to `--jobs 1`. With one job
//!   the pool is bypassed entirely — jobs run inline on the caller's
//!   thread, which keeps serial debugging trivial.
//! - [`ResultCache`], a content-addressed result cache. Jobs are keyed
//!   by a stable FNV-1a hash of their scenario inputs plus a
//!   code-version salt; hits are served from an in-memory map backed by
//!   an on-disk store (default `results/.cache/`) written via
//!   `darksil-json`. Corrupt or stale entries fall back to
//!   recomputation with a typed
//!   [`DarksilError`](darksil_robust::DarksilError) diagnostic
//!   (`cache`/`io` class) rather than failing the run.
//! - [`Supervisor`], the job-supervision layer: per-attempt wall-clock
//!   deadlines delivered through `darksil-robust`'s scoped
//!   `RunContext`, retries with seeded jittered exponential backoff
//!   ([`BackoffPolicy`]), a per-class [`CircuitBreaker`] against retry
//!   storms, and an optional final declared-degraded attempt. Every
//!   attempt is journalled as an [`AttemptRecord`].
//!
//! # Worker-count resolution
//!
//! Drivers pick the parallelism once via [`set_default_jobs`] (the
//! `--jobs` flag); otherwise the `DARKSIL_JOBS` environment variable
//! applies, and failing that [`std::thread::available_parallelism`].
//! [`Engine::auto`] reads the resolved value.
//!
//! # Example
//!
//! Fan a batch out over four workers and collect the results in
//! submission order:
//!
//! ```
//! use darksil_engine::Engine;
//! use darksil_robust::DarksilError;
//!
//! # fn main() -> Result<(), DarksilError> {
//! let engine = Engine::new(4);
//! let squares = engine.try_par_map((0_u64..8).collect(), |i| Ok(i * i))?;
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! When tracing is on (`darksil_obs::enable()`, e.g. via
//! `repro --profile`), the engine records `engine.par_map` /
//! `engine.job` / `engine.supervisor.attempt` spans, per-job
//! `engine.queue_wait_s` observations, and
//! `engine.cache.{hit,miss,recovered,store}` plus
//! `engine.supervisor.{retry,degraded}` counters. Worker threads
//! inherit the submitting thread's open span, so job spans nest under
//! the fan-out that scheduled them. Disabled, every probe is a single
//! relaxed atomic load.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cache;
mod par_map;
mod pool;
mod supervisor;

pub use cache::{
    clear_dir, evict_corrupt, scan_dir, stable_hash, CacheKey, CacheOutcome, EntryCondition,
    EntryReport, ResultCache, DEFAULT_CACHE_DIR,
};
pub use par_map::Engine;
pub use pool::{JobHandle, ThreadPool};
pub use supervisor::{
    AttemptHook, AttemptRecord, AttemptTransition, BackoffPolicy, CircuitBreaker, JobSpec,
    Supervised, Supervisor,
};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count; 0 means "not configured".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used by [`Engine::auto`].
///
/// Passing 0 clears the override, restoring the `DARKSIL_JOBS` /
/// `available_parallelism` fallback chain.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::SeqCst);
}

/// Resolves the default worker count.
///
/// Precedence, highest first:
///
/// 1. the [`set_default_jobs`] override — the CLI's `--jobs` flag lands
///    here, so `--jobs` always beats the environment;
/// 2. a positive integer `DARKSIL_JOBS` environment variable;
/// 3. [`std::thread::available_parallelism`], else 1.
///
/// A `DARKSIL_JOBS` value that is set but not a positive integer is
/// ignored, but no longer silently: a warning naming the bad value is
/// printed to stderr once per process.
#[must_use]
pub fn default_jobs() -> usize {
    let configured = DEFAULT_JOBS.load(Ordering::SeqCst);
    if configured > 0 {
        return configured;
    }
    if let Ok(value) = std::env::var("DARKSIL_JOBS") {
        match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring DARKSIL_JOBS={value:?}: \
                         expected a positive integer; falling back to \
                         available parallelism (use --jobs to override)"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn panic_messages_are_extracted() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(boxed.as_ref()), "static str");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        assert_eq!(panic_message(boxed.as_ref()), "opaque panic payload");
    }
}
