//! Deterministic parallel map: submission-order results, serial bypass.
//!
//! [`Engine::par_map`] fans a batch of jobs out over a fixed-size set
//! of scoped workers and returns the results **in submission order**,
//! whatever order they completed in. Workers pull indices from a shared
//! queue and report `(index, result)` pairs over an `mpsc` channel;
//! the caller slots each result into its submission position. Because
//! the jobs themselves must be pure functions of their items, the
//! output of `jobs = N` is byte-identical to `jobs = 1` — the
//! determinism contract the repro harness and CI rely on.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};

use darksil_robust::DarksilError;

/// A handle carrying the resolved worker count for fan-out calls.
///
/// `Engine` is cheap to copy; it holds no threads. Worker sets are
/// created per [`par_map`](Self::par_map) call inside a scope, which
/// lets jobs borrow from the caller's stack (platforms, estimators,
/// options) without `'static` gymnastics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    jobs: usize,
}

impl Engine {
    /// An engine running `jobs` workers (at least one).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// An engine sized by [`crate::default_jobs`] (`--jobs` override,
    /// then `DARKSIL_JOBS`, then the machine's parallelism).
    #[must_use]
    pub fn auto() -> Self {
        Self::new(crate::default_jobs())
    }

    /// The worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether this engine bypasses the pool and runs jobs inline.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.jobs == 1
    }

    /// Maps `f` over `items` in parallel, returning one result per item
    /// **in submission order**.
    ///
    /// Panicking jobs are isolated: their slot holds a
    /// [`DarksilError`] of class `internal` and every other job still
    /// completes. With `jobs == 1` (or a single item) no thread is
    /// spawned at all — jobs run inline, in order, with the same panic
    /// isolation, so serial and parallel runs are behaviourally
    /// identical.
    pub fn par_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<Result<T, DarksilError>>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> Result<T, DarksilError> + Sync,
    {
        let total = items.len();
        let _map_span = darksil_obs::span("engine.par_map");
        // Every fan-out is an event-ordering fork: each job gets its own
        // branch keyed by submission index, on the serial path too, so
        // the drained event stream is identical at any worker count.
        let fork = darksil_obs::event_fork();
        if self.jobs == 1 || total <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(index, item)| {
                    let _event_scope = fork.child(index as u64);
                    let _job_span = darksil_obs::span("engine.job");
                    run_job(&f, item)
                })
                .collect();
        }

        let queue: Mutex<VecDeque<(usize, I)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let workers = self.jobs.min(total);
        let (tx, rx) = mpsc::channel::<(usize, Result<T, DarksilError>)>();
        let mut slots: Vec<Option<Result<T, DarksilError>>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);

        // The caller's RunContext (cancellation token, degraded flag,
        // attempt number) is re-installed inside every worker, so a
        // supervised job's deadline reaches nested fan-outs too. The
        // trace parent travels the same way: spans a job opens hang off
        // the submitter's `engine.par_map` span. The serial path above
        // needs nothing: it never leaves the caller's thread.
        let context = darksil_robust::run_context();
        let trace_parent = darksil_obs::current_span();
        let submitted = std::time::Instant::now();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                let f = &f;
                let context = &context;
                let fork = &fork;
                scope.spawn(move || {
                    let _trace_scope = darksil_obs::parent_scope(trace_parent);
                    loop {
                        // The lock is only held to pop; jobs run
                        // unlocked, so a panicking job can never poison
                        // the queue.
                        let next = queue.lock().map(|mut q| q.pop_front());
                        let Ok(Some((index, item))) = next else {
                            break;
                        };
                        darksil_obs::observe_hist(
                            "engine.queue_wait_s",
                            submitted.elapsed().as_secs_f64(),
                        );
                        let outcome = {
                            let _event_scope = fork.child(index as u64);
                            darksil_robust::scoped(context, || {
                                let _job_span = darksil_obs::span("engine.job");
                                run_job(f, item)
                            })
                        };
                        if tx.send((index, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (index, outcome) in rx {
                slots[index] = Some(outcome);
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(DarksilError::internal(
                        "worker vanished before delivering a result",
                    ))
                })
            })
            .collect()
    }

    /// Like [`par_map`](Self::par_map), but collects into a single
    /// `Result`: every job still runs to completion, then the first
    /// error (in submission order) is returned.
    ///
    /// # Errors
    ///
    /// The submission-order-first failure among the jobs.
    pub fn try_par_map<I, T, F>(&self, items: Vec<I>, f: F) -> Result<Vec<T>, DarksilError>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> Result<T, DarksilError> + Sync,
    {
        let mut out = Vec::new();
        for result in self.par_map(items, f) {
            out.push(result?);
        }
        Ok(out)
    }
}

/// Runs one job under panic isolation.
fn run_job<I, T, F>(f: &F, item: I) -> Result<T, DarksilError>
where
    F: Fn(I) -> Result<T, DarksilError> + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| f(item))) {
        Ok(result) => result,
        Err(payload) => Err(DarksilError::internal(format!(
            "job panicked: {}",
            crate::panic_message(payload.as_ref())
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let engine = Engine::new(4);
        let items: Vec<u64> = (0..64).collect();
        let results = engine.par_map(items, |i| {
            // Later items finish earlier: reverse sleep ladder.
            std::thread::sleep(std::time::Duration::from_micros(64 - i));
            Ok(i * 3)
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("job succeeds"), i as u64 * 3);
        }
    }

    #[test]
    fn serial_engine_spawns_no_threads_and_matches_parallel() {
        let caller = std::thread::current().id();
        let serial = Engine::new(1);
        assert!(serial.is_serial());
        let on_caller = serial.par_map(vec![(); 8], |()| {
            assert_eq!(std::thread::current().id(), caller);
            Ok(1_usize)
        });
        let parallel = Engine::new(4).par_map((0..8).collect(), |i: usize| Ok(i));
        assert_eq!(on_caller.len(), parallel.len());
    }

    #[test]
    fn panics_fill_their_slot_and_spare_the_rest() {
        let engine = Engine::new(3);
        let results = engine.par_map((0..10).collect::<Vec<usize>>(), |i| {
            assert!(i != 4, "injected panic at 4");
            Ok(i)
        });
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                let err = r.as_ref().expect_err("slot 4 panicked");
                assert_eq!(err.class(), darksil_robust::ErrorClass::Internal);
            } else {
                assert_eq!(*r.as_ref().expect("survivor"), i);
            }
        }
    }

    #[test]
    fn try_par_map_reports_the_first_submission_order_error() {
        let engine = Engine::new(4);
        let err = engine
            .try_par_map((0..10).collect::<Vec<usize>>(), |i| {
                if i >= 6 {
                    Err(DarksilError::capacity(format!("budget blown at {i}")))
                } else {
                    Ok(i)
                }
            })
            .expect_err("jobs 6..10 fail");
        assert!(err.to_string().contains("budget blown at 6"), "{err}");
        let ok = engine.try_par_map((0..10).collect::<Vec<usize>>(), Ok);
        assert_eq!(ok.expect("all succeed"), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn workers_inherit_the_callers_run_context() {
        let ctx = darksil_robust::RunContext::unbounded()
            .degraded_mode(true)
            .attempt_number(3);
        let results = darksil_robust::scoped(&ctx, || {
            Engine::new(4).par_map((0..8).collect::<Vec<usize>>(), |i| {
                if darksil_robust::is_degraded() && darksil_robust::current_attempt() == 3 {
                    Ok(i)
                } else {
                    Err(DarksilError::internal("context did not reach the worker"))
                }
            })
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("context propagated"), i);
        }
    }

    #[test]
    fn an_expired_context_cancels_jobs_inside_workers() {
        let ctx = darksil_robust::RunContext::with_token(
            darksil_robust::CancellationToken::with_deadline(std::time::Duration::from_millis(0)),
        );
        let results = darksil_robust::scoped(&ctx, || {
            Engine::new(2).par_map(vec![(); 4], |()| {
                darksil_robust::check_deadline("fan-out job")?;
                Ok(())
            })
        });
        for r in &results {
            let err = r.as_ref().expect_err("deadline observed in worker");
            assert_eq!(err.class(), darksil_robust::ErrorClass::Deadline);
        }
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let table: Vec<f64> = (0..100).map(f64::from).collect();
        let engine = Engine::new(2);
        let sums = engine.par_map((0..4).collect::<Vec<usize>>(), |chunk| {
            Ok(table[chunk * 25..(chunk + 1) * 25].iter().sum::<f64>())
        });
        let total: f64 = sums.into_iter().map(|r| r.expect("chunk sums")).sum();
        assert!((total - 4950.0).abs() < 1e-12);
    }
}
