//! The TDP-based baseline mapping policy.

use darksil_floorplan::CoreId;
use darksil_units::{Celsius, Watts};
use darksil_workload::Workload;

use crate::{MappedInstance, Mapping, MappingError, Platform};

/// `TDPmap` (§4): maps the workload's instances in order, each with its
/// full thread count at the **maximum** V/f level, onto contiguous
/// cores, until admitting the next instance would exceed the TDP. No
/// temperature awareness — exactly the baseline Figure 9 compares
/// DsRem against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdpMap {
    tdp: Watts,
    reference_temp: Celsius,
}

impl TdpMap {
    /// Creates the policy for a TDP budget. Power is estimated at the
    /// DTM threshold temperature (80 °C) — the conservative convention
    /// for budget admission.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not strictly positive and finite.
    #[must_use]
    pub fn new(tdp: Watts) -> Self {
        assert!(
            tdp.value() > 0.0 && tdp.is_finite(),
            "TDP must be positive and finite"
        );
        Self {
            tdp,
            reference_temp: Celsius::new(80.0),
        }
    }

    /// Returns a copy estimating admission power at a different
    /// temperature.
    #[must_use]
    pub fn with_reference_temp(mut self, t: Celsius) -> Self {
        self.reference_temp = t;
        self
    }

    /// The budget.
    #[must_use]
    pub fn tdp(&self) -> Watts {
        self.tdp
    }

    /// Maps as many instances as the budget and the chip admit.
    ///
    /// # Errors
    ///
    /// Propagates mapping-construction failures (the policy itself
    /// simply stops at the first instance that does not fit).
    pub fn map(&self, platform: &Platform, workload: &Workload) -> Result<Mapping, MappingError> {
        let n = platform.core_count();
        let level = platform.max_level();
        let mut mapping = Mapping::new(n);
        let mut next_core = 0;
        let mut total = Watts::zero();

        for instance in workload {
            let threads = instance.threads();
            if next_core + threads > n {
                break;
            }
            let model = platform.app_model(instance.app());
            let per_core = model.power(
                instance.activity(),
                level.voltage,
                level.frequency,
                self.reference_temp,
            );
            let inst_power = per_core * threads as f64;
            if total + inst_power > self.tdp {
                break;
            }
            let cores: Vec<CoreId> = (next_core..next_core + threads).map(CoreId).collect();
            mapping.push(MappedInstance {
                instance: *instance,
                cores,
                level,
            })?;
            next_core += threads;
            total += inst_power;
        }
        Ok(mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;
    use darksil_workload::ParsecApp;

    fn platform() -> Platform {
        Platform::for_node(TechnologyNode::Nm16).expect("valid platform")
    }

    #[test]
    fn budget_is_respected() {
        let p = platform();
        let w = Workload::uniform(ParsecApp::Swaptions, 13, 8).expect("valid workload");
        let policy = TdpMap::new(Watts::new(185.0));
        let m = policy.map(&p, &w).expect("mapping succeeds");
        let total = m.total_power(&p, Celsius::new(80.0));
        assert!(total <= Watts::new(185.0), "mapped {total}");
        // And the next instance would not have fit.
        let per_inst = total / m.entries().len() as f64;
        assert!(total + per_inst > Watts::new(185.0));
    }

    #[test]
    fn figure5_dark_silicon_at_185w() {
        // §3.1: at 185 W and maximum v/f, the most power-hungry
        // application leaves up to ≈46 % of the chip dark.
        let p = platform();
        let w = Workload::uniform(ParsecApp::Swaptions, 13, 8).expect("valid workload");
        let m = TdpMap::new(Watts::new(185.0))
            .map(&p, &w)
            .expect("mapping succeeds");
        let dark = m.dark_fraction();
        assert!((0.40..=0.56).contains(&dark), "dark fraction {dark}");
    }

    #[test]
    fn figure5_dark_silicon_at_220w() {
        // §3.1: at the optimistic 220 W TDP, ≈37 % dark.
        let p = platform();
        let w = Workload::uniform(ParsecApp::Swaptions, 13, 8).expect("valid workload");
        let m = TdpMap::new(Watts::new(220.0))
            .map(&p, &w)
            .expect("mapping succeeds");
        let dark = m.dark_fraction();
        assert!((0.30..=0.46).contains(&dark), "dark fraction {dark}");
        // Bigger budget ⇒ fewer dark cores than at 185 W.
        let m185 = TdpMap::new(Watts::new(185.0))
            .map(&p, &w)
            .expect("mapping succeeds");
        assert!(m.active_core_count() > m185.active_core_count());
    }

    #[test]
    fn light_apps_leave_less_dark_silicon() {
        let p = platform();
        let hungry = TdpMap::new(Watts::new(185.0))
            .map(
                &p,
                &Workload::uniform(ParsecApp::Swaptions, 13, 8).expect("valid workload"),
            )
            .expect("test value");
        let light = TdpMap::new(Watts::new(185.0))
            .map(
                &p,
                &Workload::uniform(ParsecApp::Canneal, 13, 8).expect("valid workload"),
            )
            .expect("test value");
        assert!(light.dark_fraction() < hungry.dark_fraction());
    }

    #[test]
    fn chip_capacity_caps_mapping() {
        // A huge budget cannot map more threads than cores.
        let p = platform();
        let w = Workload::uniform(ParsecApp::Canneal, 20, 8).expect("valid workload"); // 160 threads
        let m = TdpMap::new(Watts::new(10_000.0))
            .map(&p, &w)
            .expect("mapping succeeds");
        assert_eq!(m.active_core_count(), 96); // 12 full instances
    }

    #[test]
    fn all_mapped_instances_run_at_max_level() {
        let p = platform();
        let w = Workload::uniform(ParsecApp::X264, 5, 8).expect("valid workload");
        let m = TdpMap::new(Watts::new(185.0))
            .map(&p, &w)
            .expect("mapping succeeds");
        for e in m.entries() {
            assert_eq!(e.level, p.max_level());
        }
    }

    #[test]
    #[should_panic(expected = "TDP must be positive")]
    fn zero_budget_panics() {
        let _ = TdpMap::new(Watts::zero());
    }
}
