//! Invasive-computing-style resource arbitration.
//!
//! The paper closes by pointing at *Invasive Computing* (Teich et al.)
//! as the programming model that turns dark-silicon awareness into an
//! application-facing interface: applications **invade** a set of cores
//! when they need compute, run on their claim, and **retreat** when
//! done — with the runtime arbitrating claims under the chip's thermal
//! constraints.
//!
//! [`ResourceArbiter`] implements that loop on a [`Platform`]: an
//! invade allocates the lowest-leakage free cores and grants the
//! highest V/f level that keeps the whole chip's steady-state peak
//! under `T_DTM`. Earlier claims keep the levels they were granted —
//! later invades simply receive less headroom — and when even the
//! lowest level would violate the threshold the invade is rejected; the
//! application retries after others retreat.

use std::fmt;

use darksil_floorplan::CoreId;
use darksil_units::{Celsius, Gips, Watts};
use darksil_workload::{AppInstance, ParsecApp};

use crate::{MappedInstance, Mapping, MappingError, Platform};

/// Identifier of a granted claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClaimId(u64);

impl fmt::Display for ClaimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "claim{}", self.0)
    }
}

/// Why an invade was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum InvadeError {
    /// Not enough free cores.
    InsufficientCores {
        /// Requested cores.
        requested: usize,
        /// Currently free cores.
        free: usize,
    },
    /// Even the lowest V/f level would push the chip past `T_DTM`.
    ThermalLimit,
    /// Propagated platform/solver failure.
    Mapping(MappingError),
}

impl fmt::Display for InvadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientCores { requested, free } => {
                write!(f, "invade needs {requested} cores, only {free} free")
            }
            Self::ThermalLimit => {
                write!(f, "no v/f level keeps the chip below the thermal threshold")
            }
            Self::Mapping(e) => write!(f, "invade failed: {e}"),
        }
    }
}

impl std::error::Error for InvadeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Mapping(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MappingError> for InvadeError {
    fn from(e: MappingError) -> Self {
        Self::Mapping(e)
    }
}

/// One granted claim.
#[derive(Debug, Clone, PartialEq)]
struct Claim {
    id: ClaimId,
    entry: MappedInstance,
}

/// An invade/retreat arbiter over one platform.
///
/// # Examples
///
/// ```
/// use darksil_mapping::{Platform, ResourceArbiter};
/// use darksil_power::TechnologyNode;
/// use darksil_workload::ParsecApp;
///
/// let platform = Platform::with_core_count(TechnologyNode::Nm16, 16)?;
/// let mut arbiter = ResourceArbiter::new(platform);
/// let claim = arbiter.invade(ParsecApp::X264, 4)?;
/// assert_eq!(arbiter.free_cores(), 12);
/// arbiter.retreat(claim);
/// assert_eq!(arbiter.free_cores(), 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ResourceArbiter {
    platform: Platform,
    claims: Vec<Claim>,
    next_id: u64,
}

impl ResourceArbiter {
    /// Creates an arbiter with no claims.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            claims: Vec::new(),
            next_id: 0,
        }
    }

    /// The underlying platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of live claims.
    #[must_use]
    pub fn claim_count(&self) -> usize {
        self.claims.len()
    }

    /// Cores not owned by any claim.
    #[must_use]
    pub fn free_cores(&self) -> usize {
        self.platform.core_count() - self.mapping().active_core_count()
    }

    /// The current chip-wide mapping implied by all claims.
    #[must_use]
    pub fn mapping(&self) -> Mapping {
        let mut m = Mapping::new(self.platform.core_count());
        for claim in &self.claims {
            // Claims are disjoint by construction, so a push can only
            // fail on an internal invariant break — skip rather than
            // panic.
            let _ = m.push(claim.entry.clone());
        }
        m
    }

    /// Total throughput of all claims.
    #[must_use]
    pub fn total_gips(&self) -> Gips {
        self.mapping().total_gips(&self.platform)
    }

    /// Total power at the converged temperatures.
    ///
    /// # Errors
    ///
    /// Propagates thermal failures.
    pub fn total_power(&self) -> Result<Watts, MappingError> {
        let mapping = self.mapping();
        if mapping.entries().is_empty() {
            return Ok(Watts::zero());
        }
        let map = mapping.steady_temperatures(&self.platform)?;
        let temps: Vec<Celsius> = map.die_temperatures().collect();
        Ok(mapping.power_map_at(&self.platform, &temps).iter().sum())
    }

    /// Invades `threads` cores for `app`: allocates the lowest-leakage
    /// free cores and grants the highest V/f level that keeps the
    /// *whole chip* (all claims) below `T_DTM`.
    ///
    /// # Errors
    ///
    /// Returns [`InvadeError::InsufficientCores`] when fewer than
    /// `threads` cores are free, [`InvadeError::ThermalLimit`] when no
    /// level is thermally admissible, and propagates workload/thermal
    /// failures.
    pub fn invade(&mut self, app: ParsecApp, threads: usize) -> Result<ClaimId, InvadeError> {
        let instance =
            AppInstance::new(app, threads).map_err(|e| InvadeError::Mapping(e.into()))?;
        let occupied = self.mapping();
        let free: Vec<CoreId> = self
            .platform
            .variation()
            .cores_by_leakage()
            .into_iter()
            .map(CoreId)
            .filter(|c| !occupied.is_occupied(*c))
            .collect();
        if free.len() < threads {
            return Err(InvadeError::InsufficientCores {
                requested: threads,
                free: free.len(),
            });
        }
        let cores: Vec<CoreId> = free.into_iter().take(threads).collect();

        // Highest admissible level, searched top down.
        let dvfs = self.platform.dvfs();
        for idx in (0..dvfs.len()).rev() {
            let Some(level) = dvfs.get(idx) else { continue };
            if level.frequency > self.platform.node().nominal_max_frequency() {
                continue;
            }
            let mut trial = occupied.clone();
            trial
                .push(MappedInstance {
                    instance,
                    cores: cores.clone(),
                    level,
                })
                .map_err(InvadeError::Mapping)?;
            let peak = trial
                .peak_temperature(&self.platform)
                .map_err(InvadeError::Mapping)?;
            if peak <= self.platform.t_dtm() {
                let id = ClaimId(self.next_id);
                self.next_id += 1;
                self.claims.push(Claim {
                    id,
                    entry: MappedInstance {
                        instance,
                        cores,
                        level,
                    },
                });
                return Ok(id);
            }
        }
        Err(InvadeError::ThermalLimit)
    }

    /// Retreats (releases) a claim, freeing its cores.
    ///
    /// Returns `true` if the claim existed.
    pub fn retreat(&mut self, id: ClaimId) -> bool {
        let before = self.claims.len();
        self.claims.retain(|c| c.id != id);
        self.claims.len() != before
    }

    /// The cores owned by a claim, if it is live.
    #[must_use]
    pub fn claim_cores(&self, id: ClaimId) -> Option<&[CoreId]> {
        self.claims
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.entry.cores.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;

    fn arbiter() -> ResourceArbiter {
        ResourceArbiter::new(
            Platform::with_core_count(TechnologyNode::Nm16, 36).expect("valid platform"),
        )
    }

    #[test]
    fn invade_and_retreat_round_trip() {
        let mut arb = arbiter();
        assert_eq!(arb.free_cores(), 36);
        let a = arb.invade(ParsecApp::X264, 8).expect("test value");
        let b = arb.invade(ParsecApp::Canneal, 4).expect("test value");
        assert_eq!(arb.claim_count(), 2);
        assert_eq!(arb.free_cores(), 24);
        assert_ne!(a, b);
        assert_eq!(arb.claim_cores(a).expect("test value").len(), 8);

        assert!(arb.retreat(a));
        assert_eq!(arb.free_cores(), 32);
        assert!(!arb.retreat(a), "double retreat must be a no-op");
        assert!(arb.claim_cores(a).is_none());
    }

    #[test]
    fn claims_never_overlap() {
        let mut arb = arbiter();
        for _ in 0..4 {
            arb.invade(ParsecApp::Ferret, 8).expect("test value");
        }
        let mapping = arb.mapping();
        assert_eq!(mapping.active_core_count(), 32);
        // Mapping::push would have panicked/errored on overlap; check
        // free count is consistent.
        assert_eq!(arb.free_cores(), 4);
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let mut arb = arbiter();
        for _ in 0..4 {
            arb.invade(ParsecApp::Blackscholes, 8).expect("test value");
        }
        match arb.invade(ParsecApp::Blackscholes, 8) {
            Err(InvadeError::InsufficientCores {
                requested: 8,
                free: 4,
            }) => {}
            other => unreachable!("expected capacity error, got {other:?}"),
        }
        // A smaller invade still fits.
        assert!(arb.invade(ParsecApp::Blackscholes, 4).is_ok());
    }

    #[test]
    fn thermal_pressure_degrades_granted_levels() {
        // As the chip fills with hot claims, later invades are granted
        // lower frequencies to stay under the threshold.
        let mut arb = ResourceArbiter::new(
            Platform::for_node(TechnologyNode::Nm16)
                .expect("test value")
                .with_t_dtm(Celsius::new(68.0)), // tight budget
        );
        let mut levels = Vec::new();
        for _ in 0..10 {
            let id = match arb.invade(ParsecApp::Swaptions, 8) {
                Ok(id) => id,
                Err(InvadeError::ThermalLimit) => break,
                Err(e) => unreachable!("unexpected error {e}"),
            };
            let mapping = arb.mapping();
            let entry = mapping
                .entries()
                .iter()
                .find(|e| {
                    arb.claim_cores(id)
                        .is_some_and(|cs| cs == e.cores.as_slice())
                })
                .expect("test value");
            levels.push(entry.level.frequency);
        }
        assert!(levels.len() >= 3, "too few grants: {levels:?}");
        assert!(
            levels.last().expect("test value") < levels.first().expect("test value"),
            "late claims should be throttled: {levels:?}"
        );
        // And the chip stays safe throughout.
        let peak = arb
            .mapping()
            .peak_temperature(arb.platform())
            .expect("test value");
        assert!(peak <= Celsius::new(68.0) + 0.1);
    }

    #[test]
    fn thermal_limit_rejects_invades() {
        let mut arb = ResourceArbiter::new(
            Platform::for_node(TechnologyNode::Nm16)
                .expect("test value")
                .with_t_dtm(Celsius::new(50.0)), // nearly no headroom
        );
        // Fill until the arbiter starts refusing.
        let mut refused = false;
        for _ in 0..13 {
            match arb.invade(ParsecApp::Swaptions, 8) {
                Ok(_) => {}
                Err(InvadeError::ThermalLimit) => {
                    refused = true;
                    break;
                }
                Err(e) => unreachable!("unexpected error {e}"),
            }
        }
        assert!(refused, "thermal limit never engaged");
        // Retreating makes room again.
        let claimed: Vec<ClaimId> = (0..arb.claim_count() as u64).map(ClaimId).collect();
        if let Some(&first) = claimed.first() {
            arb.retreat(first);
            assert!(arb.invade(ParsecApp::Canneal, 4).is_ok());
        }
    }

    #[test]
    fn variation_aware_allocation_prefers_quiet_cores() {
        use darksil_power::VariationModel;
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 36)
            .expect("test value")
            .with_variation(VariationModel::typical(5));
        let order = platform.variation().cores_by_leakage();
        let mut arb = ResourceArbiter::new(platform);
        let id = arb.invade(ParsecApp::X264, 4).expect("test value");
        let mut granted: Vec<usize> = arb
            .claim_cores(id)
            .expect("test value")
            .iter()
            .map(|c| c.index())
            .collect();
        granted.sort_unstable();
        let mut expected: Vec<usize> = order[..4].to_vec();
        expected.sort_unstable();
        assert_eq!(granted, expected);
    }

    #[test]
    fn accounting() {
        let mut arb = arbiter();
        assert_eq!(arb.total_power().expect("test value"), Watts::zero());
        arb.invade(ParsecApp::Dedup, 6).expect("test value");
        assert!(arb.total_gips().value() > 0.0);
        assert!(arb.total_power().expect("numerics succeed").value() > 0.0);
    }
}
