//! The platform abstraction: one manycore chip at a technology node.

use darksil_archsim::CoreModel;
use darksil_floorplan::Floorplan;
use darksil_power::{
    CorePowerModel, DvfsTable, PowerError, TechnologyNode, VariationMap, VariationModel, VfLevel,
    VfRelation,
};
use darksil_thermal::{PackageConfig, ThermalModel};
use darksil_units::Celsius;
use darksil_workload::ParsecApp;

use crate::MappingError;

/// The DTM trigger temperature used throughout the paper (§3.1).
pub const T_DTM: Celsius = Celsius::new(80.0);

/// A manycore chip at a technology node: everything a mapping policy
/// needs to evaluate power, performance and temperature.
///
/// # Examples
///
/// ```
/// use darksil_mapping::Platform;
/// use darksil_power::TechnologyNode;
///
/// let platform = Platform::for_node(TechnologyNode::Nm11)?;
/// assert_eq!(platform.core_count(), 198);
/// assert_eq!(platform.max_level().frequency.as_ghz(), 4.0);
/// # Ok::<(), darksil_mapping::MappingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    node: TechnologyNode,
    plan: Floorplan,
    thermal: ThermalModel,
    base_model: CorePowerModel,
    dvfs: DvfsTable,
    max_level: VfLevel,
    core_model: CoreModel,
    t_dtm: Celsius,
    variation: VariationMap,
}

impl Platform {
    /// Builds the paper's evaluation platform for `node`: 100 cores at
    /// 16 nm (and 22 nm), 198 at 11 nm, 361 at 8 nm, in the §2.1
    /// package, with the x264-calibrated power model scaled to the node
    /// and a 200 MHz DVFS ladder up to the node's nominal maximum.
    ///
    /// # Errors
    ///
    /// Propagates floorplan/thermal/DVFS construction failures.
    pub fn for_node(node: TechnologyNode) -> Result<Self, MappingError> {
        Self::with_core_count(node, node.evaluated_core_count())
    }

    /// Like [`Platform::for_node`] but with an explicit core count
    /// (e.g. small chips for fast tests).
    ///
    /// # Errors
    ///
    /// Propagates floorplan/thermal/DVFS construction failures.
    pub fn with_core_count(node: TechnologyNode, cores: usize) -> Result<Self, MappingError> {
        Self::with_package(node, cores, PackageConfig::paper_dac15())
    }

    /// Like [`Platform::with_core_count`] but inside a custom package —
    /// for cooling-solution sensitivity studies (laptop vs desktop vs
    /// server sinks).
    ///
    /// # Errors
    ///
    /// Propagates floorplan/thermal/DVFS construction failures.
    pub fn with_package(
        node: TechnologyNode,
        cores: usize,
        package: PackageConfig,
    ) -> Result<Self, MappingError> {
        let plan = Floorplan::squarish(cores, node.core_area())?;
        let thermal = ThermalModel::new(&plan, package)?;
        let base_model = CorePowerModel::x264_22nm().scaled_to(node);
        let vf = VfRelation::for_node(node);
        let dvfs = DvfsTable::standard(&vf, node.nominal_max_frequency())?;
        let max_level =
            dvfs.max_level()
                .ok_or(MappingError::Power(PowerError::FrequencyOutOfRange {
                    ghz: node.nominal_max_frequency().as_ghz(),
                }))?;
        let variation = VariationMap::uniform(plan.core_count());
        Ok(Self {
            node,
            plan,
            thermal,
            base_model,
            dvfs,
            max_level,
            core_model: CoreModel::alpha_21264(),
            t_dtm: T_DTM,
            variation,
        })
    }

    /// Returns a copy with a different DTM threshold.
    #[must_use]
    pub fn with_t_dtm(mut self, t_dtm: Celsius) -> Self {
        self.t_dtm = t_dtm;
        self
    }

    /// Returns a copy whose cores carry process variation sampled from
    /// `model` — the variability-aware management setting of DaSim and
    /// Hayat (§1 of the paper's related work).
    #[must_use]
    pub fn with_variation(mut self, model: VariationModel) -> Self {
        self.variation = model.generate(self.plan.core_count());
        self
    }

    /// The per-core variation map (uniform for an ideal chip).
    #[must_use]
    pub fn variation(&self) -> &VariationMap {
        &self.variation
    }

    /// Returns a copy whose DVFS ladder extends past the nominal
    /// maximum up to `boost_max` — the boosting configuration of §6.
    ///
    /// # Errors
    ///
    /// Propagates DVFS construction failures.
    pub fn with_boost_levels(
        mut self,
        boost_max: darksil_units::Hertz,
    ) -> Result<Self, MappingError> {
        let vf = VfRelation::for_node(self.node);
        self.dvfs = DvfsTable::standard(&vf, boost_max)?;
        Ok(self)
    }

    /// The technology node.
    #[must_use]
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// The chip floorplan.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.plan
    }

    /// The thermal model.
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The DVFS level ladder.
    #[must_use]
    pub fn dvfs(&self) -> &DvfsTable {
        &self.dvfs
    }

    /// The analytic core performance model.
    #[must_use]
    pub fn core_model(&self) -> &CoreModel {
        &self.core_model
    }

    /// The DTM trigger temperature.
    #[must_use]
    pub fn t_dtm(&self) -> Celsius {
        self.t_dtm
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.plan.core_count()
    }

    /// The highest (nominal) V/f level, validated at construction.
    #[must_use]
    pub fn max_level(&self) -> VfLevel {
        self.max_level
    }

    /// The per-core power model for an application at this node
    /// (x264 baseline with the application's Ceff class applied).
    #[must_use]
    pub fn app_model(&self, app: ParsecApp) -> CorePowerModel {
        self.base_model.with_ceff_scaled(app.profile().ceff_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_units::{Hertz, Watts};

    #[test]
    fn paper_platforms() {
        let p16 = Platform::for_node(TechnologyNode::Nm16).expect("valid platform");
        assert_eq!(p16.core_count(), 100);
        assert_eq!(p16.max_level().frequency, Hertz::from_ghz(3.6));
        assert_eq!(p16.t_dtm(), Celsius::new(80.0));

        let p11 = Platform::for_node(TechnologyNode::Nm11).expect("valid platform");
        assert_eq!(p11.core_count(), 198);
        assert_eq!(p11.max_level().frequency, Hertz::from_ghz(4.0));

        let p8 = Platform::for_node(TechnologyNode::Nm8).expect("valid platform");
        assert_eq!(p8.core_count(), 361);
        assert_eq!(p8.max_level().frequency, Hertz::from_ghz(4.4));
    }

    #[test]
    fn app_models_order_by_power_class() {
        let p = Platform::for_node(TechnologyNode::Nm16).expect("valid platform");
        let f = p.max_level().frequency;
        let t = Celsius::new(60.0);
        let p_swaptions = p
            .app_model(ParsecApp::Swaptions)
            .power_at_frequency(1.0, f, t)
            .expect("test value");
        let p_canneal = p
            .app_model(ParsecApp::Canneal)
            .power_at_frequency(1.0, f, t)
            .expect("test value");
        assert!(p_swaptions > p_canneal);
        // Calibration: a fully active swaptions core at 16 nm / 3.6 GHz
        // sits in the 3–5 W band.
        assert!(p_swaptions > Watts::new(3.0) && p_swaptions < Watts::new(5.0));
    }

    #[test]
    fn boost_levels_extend_ladder() {
        let p = Platform::for_node(TechnologyNode::Nm16).expect("valid platform");
        let base_len = p.dvfs().len();
        let boosted = p
            .with_boost_levels(Hertz::from_ghz(4.4))
            .expect("test value");
        assert!(boosted.dvfs().len() > base_len);
        assert_eq!(
            boosted.dvfs().max_level().expect("test value").frequency,
            Hertz::from_ghz(4.4)
        );
    }

    #[test]
    fn custom_threshold() {
        let p = Platform::for_node(TechnologyNode::Nm16)
            .expect("test value")
            .with_t_dtm(Celsius::new(70.0));
        assert_eq!(p.t_dtm(), Celsius::new(70.0));
    }

    #[test]
    fn small_test_platform() {
        let p = Platform::with_core_count(TechnologyNode::Nm16, 16).expect("valid platform");
        assert_eq!(p.core_count(), 16);
        assert_eq!(p.floorplan().rows(), 4);
    }
}
