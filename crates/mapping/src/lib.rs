//! Spatio-temporal mapping and dark-silicon management (§4).
//!
//! This crate turns the substrates (floorplan, power, thermal, workload)
//! into a usable platform abstraction and implements the paper's
//! mapping machinery:
//!
//! * [`Platform`] — one manycore chip at a technology node: floorplan,
//!   thermal model, per-application power models, DVFS table and the
//!   DTM threshold,
//! * [`Mapping`] — a concrete assignment of application instances to
//!   cores at chosen V/f levels, with power/performance/temperature
//!   evaluation (including the leakage↔temperature fixed point),
//! * [`place_contiguous`] / [`place_patterned`] /
//!   [`place_thermal_aware`] — naive clustering, blind spreading, and
//!   DaSim-style thermally optimised *dark silicon patterning*
//!   (Figure 8),
//! * [`TdpMap`] — the TDP-based baseline policy: 8 threads per
//!   instance at the maximum V/f level until the budget is exhausted,
//! * [`DsRem`] — the thermal-constrained resource manager of Khdr et
//!   al. (DAC'15): jointly picks active core counts and V/f levels under
//!   TDP, then repairs violations / exploits thermal headroom (Figure 9),
//! * [`ResourceArbiter`] — an invasive-computing-style invade/retreat
//!   interface (the paper's concluding outlook): applications claim
//!   cores at runtime and the arbiter grants thermally safe V/f levels,
//! * [`simulate_rotating`] / [`simulate_static`] — wear-leveling
//!   rotation of the dark set (the Hayat reliability use of dark
//!   silicon).
//!
//! # Examples
//!
//! ```
//! use darksil_mapping::{Platform, TdpMap};
//! use darksil_power::TechnologyNode;
//! use darksil_units::Watts;
//! use darksil_workload::{ParsecApp, Workload};
//!
//! let platform = Platform::for_node(TechnologyNode::Nm16)?;
//! let workload = Workload::uniform(ParsecApp::X264, 12, 8)?;
//! let mapping = TdpMap::new(Watts::new(185.0)).map(&platform, &workload)?;
//! assert!(mapping.active_core_count() <= 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod arbiter;
mod dsrem;
mod error;
mod mapping;
mod placement;
mod platform;
mod rotation;
mod tdpmap;

pub use arbiter::{ClaimId, InvadeError, ResourceArbiter};
pub use dsrem::{failsafe_peak, hottest_core, DsRem};
pub use error::MappingError;
pub use mapping::{MappedInstance, Mapping};
pub use placement::{
    optimize_pattern, pick_low_leakage, place_contiguous, place_patterned, place_thermal_aware,
    spread_cores,
};
pub use platform::Platform;
pub use rotation::{simulate_rotating, simulate_static};
pub use tdpmap::TdpMap;
