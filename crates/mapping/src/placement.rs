//! Core placement strategies: contiguous packing vs dark-silicon
//! patterning.
//!
//! Figure 8 contrasts two spatial policies for the *same* workload:
//! packing threads into a contiguous block (simple, but concentrates
//! heat) versus *dark silicon patterning* (DaSim, Shafique et al.,
//! DATE'15) which interleaves dark cores between active ones so the
//! dark cells act as thermal buffers and the peak temperature drops.
//!
//! [`spread_cores`] selects a maximally spread active set of a given
//! size using an R2 low-discrepancy ranking of the grid cells: every
//! cell gets a quasi-random rank that is spatially well distributed at
//! every density, so taking the `m` lowest-ranked cells yields an
//! even pattern for any `m`.

use darksil_floorplan::{CoreId, Floorplan};
use darksil_power::VfLevel;
use darksil_units::{Celsius, Watts};
use darksil_workload::Workload;

use crate::{MappedInstance, Mapping, MappingError, Platform};

/// Maps the workload's instances onto consecutive cores in row-major
/// order, all at `level` — the naive policy on the left of Figure 8.
///
/// # Errors
///
/// Returns [`MappingError::InsufficientCores`] when the workload needs
/// more cores than the plan provides.
pub fn place_contiguous(
    plan: &Floorplan,
    workload: &Workload,
    level: VfLevel,
) -> Result<Mapping, MappingError> {
    let needed = workload.total_threads();
    let available = plan.core_count();
    if needed > available {
        return Err(MappingError::InsufficientCores {
            requested: needed,
            available,
        });
    }
    let mut mapping = Mapping::new(available);
    let mut next = 0;
    for instance in workload {
        let cores: Vec<CoreId> = (next..next + instance.threads()).map(CoreId).collect();
        next += instance.threads();
        mapping.push(MappedInstance {
            instance: *instance,
            cores,
            level,
        })?;
    }
    Ok(mapping)
}

/// Selects `m` cores spread as evenly as possible over the grid.
///
/// Cells are ranked by the fractional part of `r·g₁ + c·g₂` where
/// `(g₁, g₂)` are the R2 low-discrepancy constants; the `m` smallest
/// ranks form the active set. Ties (impossible in exact arithmetic) are
/// broken by index.
///
/// # Panics
///
/// Panics if `m` exceeds the plan's core count.
#[must_use]
pub fn spread_cores(plan: &Floorplan, m: usize) -> Vec<CoreId> {
    let n = plan.core_count();
    assert!(m <= n, "cannot spread {m} cores over {n}");
    // R2 sequence constants: 1/φ₂ and 1/φ₂² for the plastic number φ₂.
    const G1: f64 = 0.754_877_666_246_693;
    const G2: f64 = 0.569_840_290_998_053_2;
    let mut ranked: Vec<(f64, CoreId)> = plan
        .cores()
        .filter_map(|core| {
            let (r, c) = plan.coordinates(core).ok()?;
            let rank = (r as f64 * G1 + c as f64 * G2).fract();
            Some((rank, core))
        })
        .collect();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut cores: Vec<CoreId> = ranked.into_iter().take(m).map(|(_, c)| c).collect();
    cores.sort_unstable();
    cores
}

/// Maps the workload onto a spread-out active set (dark-silicon
/// patterning), all at `level`.
///
/// Instance threads are assigned to the spread set in row-major order;
/// inter-thread distance is not minimised — like the paper, the pattern
/// targets the thermal profile, not communication locality.
///
/// # Errors
///
/// Returns [`MappingError::InsufficientCores`] when the workload needs
/// more cores than the plan provides.
pub fn place_patterned(
    plan: &Floorplan,
    workload: &Workload,
    level: VfLevel,
) -> Result<Mapping, MappingError> {
    let needed = workload.total_threads();
    let available = plan.core_count();
    if needed > available {
        return Err(MappingError::InsufficientCores {
            requested: needed,
            available,
        });
    }
    let active = spread_cores(plan, needed);
    let mut mapping = Mapping::new(available);
    let mut iter = active.into_iter();
    for instance in workload {
        let cores: Vec<CoreId> = iter.by_ref().take(instance.threads()).collect();
        mapping.push(MappedInstance {
            instance: *instance,
            cores,
            level,
        })?;
    }
    Ok(mapping)
}

/// Iteratively improves an active set of `count` cores under uniform
/// per-core power: starting from the [`spread_cores`] seed, the hottest
/// active core is moved to the coldest dark core until the gain per
/// move drops below 0.3 °C (or `max_moves` is reached). This is the
/// thermal-aware "dark silicon patterning" of DaSim proper — the blind
/// spread is its cheap approximation.
///
/// # Errors
///
/// Propagates thermal-solve failures.
///
/// # Panics
///
/// Panics if `count` exceeds the platform's core count.
pub fn optimize_pattern(
    platform: &Platform,
    count: usize,
    per_core: Watts,
    max_moves: usize,
) -> Result<Vec<CoreId>, MappingError> {
    let plan = platform.floorplan();
    let n = plan.core_count();
    let mut active = spread_cores(plan, count);
    let mut is_active = vec![false; n];
    for c in &active {
        is_active[c.index()] = true;
    }

    // Each move only shifts one core's power, so successive solves are
    // warm-started from the previous move's map (a no-op on the
    // factored fast path, a near-exact seed on the iterative fallback).
    let mut previous = None;
    for _ in 0..max_moves {
        let mut power = vec![Watts::zero(); n];
        for c in &active {
            power[c.index()] = per_core;
        }
        let map = platform
            .thermal()
            .steady_state_seeded(&power, previous.as_ref())?;
        let temps: Vec<f64> = map.die_temperatures().map(|t| t.value()).collect();
        previous = Some(map);

        let Some((hot_pos, hot_core)) = active
            .iter()
            .enumerate()
            .max_by(|a, b| temps[a.1.index()].total_cmp(&temps[b.1.index()]))
            .map(|(i, c)| (i, *c))
        else {
            break;
        };
        let cold_core = plan
            .cores()
            .filter(|c| !is_active[c.index()])
            .min_by(|a, b| temps[a.index()].total_cmp(&temps[b.index()]));
        let Some(cold_core) = cold_core else { break };
        if temps[hot_core.index()] - temps[cold_core.index()] < 0.3 {
            break;
        }
        is_active[hot_core.index()] = false;
        is_active[cold_core.index()] = true;
        active[hot_pos] = cold_core;
    }
    active.sort_unstable();
    Ok(active)
}

/// Selects the `m` cores with the lowest leakage-variation factors —
/// the variability-aware core choice of DaSim/Hayat: with dark cores to
/// spare, light the efficient silicon and leave the leaky cores dark.
///
/// Ties are broken by index, so the result is deterministic.
///
/// # Panics
///
/// Panics if `m` exceeds the platform's core count.
#[must_use]
pub fn pick_low_leakage(platform: &Platform, m: usize) -> Vec<CoreId> {
    let n = platform.core_count();
    assert!(m <= n, "cannot pick {m} of {n} cores");
    let mut cores: Vec<CoreId> = platform
        .variation()
        .cores_by_leakage()
        .into_iter()
        .take(m)
        .map(CoreId)
        .collect();
    cores.sort_unstable();
    cores
}

/// Maps the workload onto a thermally optimised pattern
/// ([`optimize_pattern`]) at `level`. The optimisation assumes the
/// workload's *average* per-core power (evaluated at the DTM threshold
/// temperature), which is exact for homogeneous workloads and a good
/// proxy for mixes.
///
/// # Errors
///
/// Returns [`MappingError::InsufficientCores`] when the workload does
/// not fit and propagates thermal failures.
pub fn place_thermal_aware(
    platform: &Platform,
    workload: &Workload,
    level: VfLevel,
) -> Result<Mapping, MappingError> {
    let plan = platform.floorplan();
    let needed = workload.total_threads();
    if needed > plan.core_count() {
        return Err(MappingError::InsufficientCores {
            requested: needed,
            available: plan.core_count(),
        });
    }
    if needed == 0 {
        return Ok(Mapping::new(plan.core_count()));
    }
    // Average per-core power at the threshold temperature.
    let mut total = Watts::zero();
    for instance in workload {
        let model = platform.app_model(instance.app());
        let per_core = model.power(
            instance.activity(),
            level.voltage,
            level.frequency,
            Celsius::new(80.0),
        );
        total += per_core * instance.threads() as f64;
    }
    let per_core_avg = total / needed as f64;

    let active = optimize_pattern(platform, needed, per_core_avg, 100)?;
    let mut mapping = Mapping::new(plan.core_count());
    let mut iter = active.into_iter();
    for instance in workload {
        let cores: Vec<CoreId> = iter.by_ref().take(instance.threads()).collect();
        mapping.push(MappedInstance {
            instance: *instance,
            cores,
            level,
        })?;
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;
    use darksil_power::TechnologyNode;
    use darksil_units::SquareMillimeters;
    use darksil_workload::ParsecApp;

    fn plan() -> Floorplan {
        Floorplan::grid(10, 10, SquareMillimeters::new(5.1)).expect("valid floorplan")
    }

    fn level() -> VfLevel {
        Platform::for_node(TechnologyNode::Nm16)
            .expect("valid platform")
            .max_level()
    }

    #[test]
    fn contiguous_fills_in_order() {
        let w = Workload::uniform(ParsecApp::X264, 3, 8).expect("valid workload");
        let m = place_contiguous(&plan(), &w, level()).expect("mapping succeeds");
        assert_eq!(m.active_core_count(), 24);
        // First instance owns cores 0..8.
        assert_eq!(m.entries()[0].cores, (0..8).map(CoreId).collect::<Vec<_>>());
        assert_eq!(m.entries()[2].cores[0], CoreId(16));
    }

    #[test]
    fn spread_set_has_no_duplicates_and_right_size() {
        let p = plan();
        for m in [1, 10, 37, 50, 99, 100] {
            let set = spread_cores(&p, m);
            assert_eq!(set.len(), m);
            let mut dedup = set.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), m, "duplicates at m = {m}");
        }
    }

    #[test]
    fn spread_set_is_actually_spread() {
        // At half density the active set should rarely contain adjacent
        // pairs; the contiguous block of the same size is full of them.
        let p = plan();
        let set = spread_cores(&p, 50);
        let is_active = |c: CoreId| set.binary_search(&c).is_ok();
        let mut adjacent_active = 0;
        let mut total_pairs = 0;
        for &core in &set {
            for nb in p.neighbors(core).expect("test value") {
                total_pairs += 1;
                if is_active(nb) {
                    adjacent_active += 1;
                }
            }
        }
        let frac = f64::from(adjacent_active) / f64::from(total_pairs);
        assert!(frac < 0.55, "active-adjacent fraction {frac}");
    }

    #[test]
    fn patterned_runs_cooler_than_contiguous() {
        // The Figure 8 claim, end to end: same workload, same level,
        // lower peak under patterning.
        let platform = Platform::for_node(TechnologyNode::Nm16).expect("valid platform");
        let w = Workload::uniform(ParsecApp::X264, 6, 8).expect("valid workload"); // 48 cores
        let lvl = platform.max_level();
        let contiguous = place_contiguous(platform.floorplan(), &w, lvl).expect("mapping succeeds");
        let patterned = place_patterned(platform.floorplan(), &w, lvl).expect("test value");
        let t_contig = contiguous.peak_temperature(&platform).expect("test value");
        let t_pattern = patterned.peak_temperature(&platform).expect("test value");
        assert!(
            t_contig - t_pattern > 0.5,
            "contiguous {t_contig} vs patterned {t_pattern}"
        );
    }

    #[test]
    fn both_reject_oversized_workloads() {
        let w = Workload::uniform(ParsecApp::X264, 13, 8).expect("valid workload"); // 104 > 100
        assert!(matches!(
            place_contiguous(&plan(), &w, level()),
            Err(MappingError::InsufficientCores {
                requested: 104,
                available: 100
            })
        ));
        assert!(place_patterned(&plan(), &w, level()).is_err());
    }

    #[test]
    fn full_chip_placement_works() {
        let w = Workload::uniform(ParsecApp::Canneal, 25, 4).expect("valid workload"); // exactly 100
        let c = place_contiguous(&plan(), &w, level()).expect("mapping succeeds");
        let s = place_patterned(&plan(), &w, level()).expect("test value");
        assert_eq!(c.dark_core_count(), 0);
        assert_eq!(s.dark_core_count(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn spread_more_than_available_panics() {
        let _ = spread_cores(&plan(), 101);
    }

    #[test]
    fn optimized_pattern_beats_blind_spread() {
        // The Figure 8 pattern(b) requirement: at 60 active cores and
        // ≈3.77 W each, the optimiser must stay below the DTM threshold
        // where the blind spread cannot.
        let platform = Platform::for_node(TechnologyNode::Nm16).expect("valid platform");
        let per = darksil_units::Watts::new(3.77);
        let blind = spread_cores(platform.floorplan(), 60);
        let tuned = optimize_pattern(&platform, 60, per, 100).expect("test value");
        assert_eq!(tuned.len(), 60);
        let peak_of = |set: &[CoreId]| {
            let mut p = vec![darksil_units::Watts::zero(); 100];
            for c in set {
                p[c.index()] = per;
            }
            platform
                .thermal()
                .steady_state(&p)
                .expect("solve succeeds")
                .peak()
        };
        let t_blind = peak_of(&blind);
        let t_tuned = peak_of(&tuned);
        assert!(t_tuned < t_blind, "tuned {t_tuned} vs blind {t_blind}");
        assert!(t_tuned.value() < 80.0, "tuned pattern violates: {t_tuned}");
    }

    #[test]
    fn thermal_aware_placement_round_trip() {
        let platform = Platform::for_node(TechnologyNode::Nm16).expect("valid platform");
        let w = Workload::uniform(ParsecApp::Swaptions, 15, 4).expect("valid workload");
        let m = place_thermal_aware(&platform, &w, platform.max_level()).expect("test value");
        assert_eq!(m.active_core_count(), 60);
        assert_eq!(m.entries().len(), 15);
        // No duplicate cores across instances (push() would have
        // rejected them, so this is a consistency re-check).
        let mut all: Vec<usize> = m
            .entries()
            .iter()
            .flat_map(|e| e.cores.iter().map(|c| c.index()))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 60);
    }

    #[test]
    fn low_leakage_pick_saves_power() {
        use darksil_power::VariationModel;
        use darksil_units::Celsius;

        let platform = Platform::with_core_count(TechnologyNode::Nm16, 36)
            .expect("test value")
            .with_variation(VariationModel::typical(0xBEEF));
        let w = Workload::uniform(ParsecApp::Swaptions, 3, 6).expect("valid workload"); // 18 cores

        // Variability-aware: lowest-leakage 18 cores.
        let best = pick_low_leakage(&platform, 18);
        // Adversarial: highest-leakage 18 cores.
        let order = platform.variation().cores_by_leakage();
        let worst: Vec<CoreId> = order.iter().rev().take(18).map(|&i| CoreId(i)).collect();

        let build = |cores: &[CoreId]| {
            let mut m = Mapping::new(36);
            let mut it = cores.iter().copied();
            for inst in &w {
                let assigned: Vec<CoreId> = it.by_ref().take(inst.threads()).collect();
                m.push(crate::MappedInstance {
                    instance: *inst,
                    cores: assigned,
                    level: platform.max_level(),
                })
                .expect("test value");
            }
            m
        };
        let p_best = build(&best).total_power(&platform, Celsius::new(80.0));
        let p_worst = build(&worst).total_power(&platform, Celsius::new(80.0));
        assert!(
            p_worst.value() > p_best.value() * 1.02,
            "best {p_best} vs worst {p_worst}"
        );
    }

    #[test]
    fn uniform_platform_variation_is_neutral() {
        // Without variation the leakage factors are 1 and picking by
        // leakage degenerates to index order.
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 16).expect("valid platform");
        let picked = pick_low_leakage(&platform, 5);
        assert_eq!(picked, (0..5).map(CoreId).collect::<Vec<_>>());
    }

    #[test]
    fn thermal_aware_empty_workload() {
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 16).expect("valid platform");
        let m = place_thermal_aware(&platform, &Workload::new(), platform.max_level())
            .expect("valid workload");
        assert_eq!(m.active_core_count(), 0);
    }
}
