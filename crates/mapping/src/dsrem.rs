//! DsRem — thermal-constrained resource management for mixed ILP/TLP
//! workloads (Khdr et al., DAC 2015; §4 of the paper).

use darksil_power::VfLevel;
use darksil_robust::FaultPlan;
use darksil_units::{Celsius, Watts};
use darksil_workload::{AppInstance, Workload};

use crate::placement::place_patterned;
use crate::{Mapping, MappingError, Platform};

/// Picks the hottest core from possibly fault-corrupted die
/// temperatures. Non-finite readings (dropped sensors) are treated as
/// hotter than any finite reading — the fail-safe direction: a core
/// whose sensor is lost gets throttled, never trusted.
pub fn hottest_core(die: impl Iterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, t) in die.enumerate() {
        let key = if t.is_finite() { t } else { f64::INFINITY };
        if best.is_none_or(|(_, b)| key > b) {
            best = Some((i, key));
        }
    }
    best.map(|(i, _)| i)
}

/// Peak over possibly corrupted readings, with non-finite values
/// promoted to `+inf` so they always look like violations.
pub fn failsafe_peak(die: &[f64]) -> f64 {
    die.iter()
        .map(|&t| if t.is_finite() { t } else { f64::INFINITY })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Safety margin below `T_DTM` at which DsRem stops exploiting thermal
/// headroom (°C).
const HEADROOM_MARGIN: f64 = 1.0;

/// Maximum repair/exploit iterations of the thermal phase.
const THERMAL_ITERATIONS: usize = 60;

/// The DsRem policy: jointly determines the number of active cores
/// (threads) per application and their V/f levels so that overall
/// performance is maximised.
///
/// Following §4, the algorithm runs in two phases:
///
/// 1. **Budget phase** — all instances start at full threads and the
///    maximum level; while the estimated power exceeds TDP, the single
///    modification with the smallest GIPS loss per watt saved is
///    applied (step one instance's level down, shed one of its
///    threads, or drop the instance entirely).
/// 2. **Thermal phase** — instances are placed with dark-silicon
///    patterning; while the steady-state peak violates `T_DTM` the
///    instance owning the hottest core steps down; while clear
///    headroom remains the most profitable instance steps up (bounded
///    by the budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsRem {
    tdp: Watts,
    reference_temp: Celsius,
}

/// One instance's tunable state during optimisation.
#[derive(Debug, Clone)]
struct Config {
    app: darksil_workload::ParsecApp,
    threads: usize,
    level_index: usize,
}

impl DsRem {
    /// Creates the policy for a TDP budget.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InvalidBudget`] if the budget is not
    /// strictly positive and finite.
    pub fn new(tdp: Watts) -> Result<Self, MappingError> {
        if !(tdp.value() > 0.0 && tdp.is_finite()) {
            return Err(MappingError::InvalidBudget { watts: tdp.value() });
        }
        Ok(Self {
            tdp,
            reference_temp: Celsius::new(80.0),
        })
    }

    /// The budget.
    #[must_use]
    pub fn tdp(&self) -> Watts {
        self.tdp
    }

    fn config_power(&self, platform: &Platform, cfg: &Config) -> Watts {
        let Some(level) = platform.dvfs().get(cfg.level_index) else {
            return Watts::zero();
        };
        let model = platform.app_model(cfg.app);
        let alpha = cfg.app.profile().activity(cfg.threads);
        model.power(alpha, level.voltage, level.frequency, self.reference_temp) * cfg.threads as f64
    }

    fn config_gips(platform: &Platform, cfg: &Config) -> f64 {
        let Some(level) = platform.dvfs().get(cfg.level_index) else {
            return 0.0;
        };
        cfg.app
            .profile()
            .instance_gips(platform.core_model(), cfg.threads, level.frequency)
            .value()
    }

    /// Runs both phases and returns the final mapping.
    ///
    /// The workload's per-instance thread counts are treated as *upper
    /// bounds*; DsRem may shed threads (that is the TLP half of the
    /// joint optimisation).
    ///
    /// # Errors
    ///
    /// Propagates placement and thermal-solve failures.
    pub fn map(&self, platform: &Platform, workload: &Workload) -> Result<Mapping, MappingError> {
        self.map_with_faults(platform, workload, &FaultPlan::none())
    }

    /// Like [`DsRem::map`] but with an injected [`FaultPlan`] corrupting
    /// the thermal-phase sensor readings.
    ///
    /// Corruption is fail-safe: a NaN or perturbed-hot reading makes the
    /// owning instance throttle (or unmap), so a faulty sensor produces
    /// *more* dark silicon, never a thermal violation or a panic.
    ///
    /// # Errors
    ///
    /// Propagates placement and thermal-solve failures.
    pub fn map_with_faults(
        &self,
        platform: &Platform,
        workload: &Workload,
        faults: &FaultPlan,
    ) -> Result<Mapping, MappingError> {
        let top_level = platform.dvfs().len() - 1;
        let mut configs: Vec<Config> = workload
            .iter()
            .map(|i| Config {
                app: i.app(),
                threads: i.threads(),
                level_index: top_level,
            })
            .collect();

        self.budget_phase(platform, &mut configs);
        // Drop instances the budget phase shrank to nothing.
        configs.retain(|c| c.threads > 0);

        let mut mapping = self.place(platform, &configs)?;
        self.thermal_phase(platform, &mut mapping, faults)?;
        Ok(mapping)
    }

    /// Greedy budget trimming: cheapest-GIPS-per-saved-watt moves first.
    fn budget_phase(&self, platform: &Platform, configs: &mut [Config]) {
        let capacity = platform.core_count();
        loop {
            let total_power: Watts = configs.iter().map(|c| self.config_power(platform, c)).sum();
            let total_threads: usize = configs.iter().map(|c| c.threads).sum();
            if total_power <= self.tdp && total_threads <= capacity {
                return;
            }

            // Candidate moves: (config index, new threads, new level,
            // gips lost per watt saved).
            let mut best: Option<(usize, usize, usize, f64)> = None;
            for (i, cfg) in configs.iter().enumerate() {
                if cfg.threads == 0 {
                    continue;
                }
                let p0 = self.config_power(platform, cfg).value();
                let g0 = Self::config_gips(platform, cfg);
                let mut consider = |threads: usize, level_index: usize| {
                    let cand = Config {
                        threads,
                        level_index,
                        ..cfg.clone()
                    };
                    let saved = p0
                        - if threads == 0 {
                            0.0
                        } else {
                            self.config_power(platform, &cand).value()
                        };
                    if saved <= 0.0 {
                        return;
                    }
                    let lost = g0
                        - if threads == 0 {
                            0.0
                        } else {
                            Self::config_gips(platform, &cand)
                        };
                    let cost = lost.max(0.0) / saved;
                    if best.is_none_or(|(_, _, _, c)| cost < c) {
                        best = Some((i, threads, level_index, cost));
                    }
                };
                if cfg.level_index > 0 {
                    consider(cfg.threads, cfg.level_index - 1);
                }
                if cfg.threads > 1 {
                    consider(cfg.threads - 1, cfg.level_index);
                } else {
                    consider(0, cfg.level_index);
                }
            }

            match best {
                Some((i, threads, level_index, _)) => {
                    configs[i].threads = threads;
                    configs[i].level_index = level_index;
                    if darksil_obs::events_enabled() {
                        let ghz = platform
                            .dvfs()
                            .get(level_index)
                            .map_or(0.0, |l| l.frequency.as_ghz());
                        darksil_obs::event("dsrem.trim", || {
                            vec![
                                ("instance", (i as u64).into()),
                                ("threads", (threads as u64).into()),
                                ("ghz", ghz.into()),
                            ]
                        });
                    }
                }
                None => return, // nothing left to trim
            }
        }
    }

    fn place(&self, platform: &Platform, configs: &[Config]) -> Result<Mapping, MappingError> {
        // Materialise the chosen thread counts into a workload and use
        // dark-silicon patterning for placement; levels are then
        // re-applied per instance.
        let workload: Workload = configs
            .iter()
            .map(|c| AppInstance::new(c.app, c.threads))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .collect();
        let mut mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())?;
        for (entry, cfg) in mapping.entries_mut().iter_mut().zip(configs) {
            if let Some(level) = platform.dvfs().get(cfg.level_index) {
                entry.level = level;
            }
        }
        if darksil_obs::events_enabled() {
            let instances = mapping.entries().len() as u64;
            let active_cores = mapping
                .entries()
                .iter()
                .map(|e| e.cores.len() as u64)
                .sum::<u64>();
            darksil_obs::event("dsrem.place", || {
                vec![
                    ("instances", instances.into()),
                    ("active_cores", active_cores.into()),
                ]
            });
        }
        Ok(mapping)
    }

    /// Thermal repair and headroom exploitation on the placed mapping.
    fn thermal_phase(
        &self,
        platform: &Platform,
        mapping: &mut Mapping,
        faults: &FaultPlan,
    ) -> Result<(), MappingError> {
        let t_dtm = platform.t_dtm();
        let mut frozen = vec![false; mapping.entries().len()];

        for step in 0..THERMAL_ITERATIONS {
            if mapping.entries().is_empty() {
                return Ok(());
            }
            let map = mapping.steady_temperatures(platform)?;
            let mut die: Vec<f64> = map.die_temperatures().map(|t| t.value()).collect();
            faults.corrupt_temperatures(step as u64, &mut die);
            let peak = if faults.is_empty() {
                map.peak()
            } else {
                Celsius::new(failsafe_peak(&die))
            };

            if peak > t_dtm {
                // Violation: cool the instance owning the hottest core.
                let Some(hottest) = hottest_core(die.iter().copied()) else {
                    return Ok(());
                };
                let Some(owner) = mapping
                    .entries()
                    .iter()
                    .position(|e| e.cores.iter().any(|c| c.index() == hottest))
                else {
                    return Ok(()); // hottest core is dark; nothing to do
                };
                let entry_level = mapping.entries()[owner].level;
                let idx = platform
                    .dvfs()
                    .floor_index(entry_level.frequency)
                    .unwrap_or(0);
                if idx == 0 {
                    // Already at the bottom: unmap the offender.
                    let entries: Vec<_> = mapping.entries().to_vec();
                    let mut rebuilt = Mapping::new(mapping.core_count());
                    for (i, e) in entries.into_iter().enumerate() {
                        if i != owner {
                            rebuilt.push(e)?;
                        }
                    }
                    *mapping = rebuilt;
                    frozen = vec![false; mapping.entries().len()];
                    if darksil_obs::events_enabled() {
                        darksil_obs::event("dsrem.unmap", || {
                            vec![
                                ("step", (step as u64).into()),
                                ("instance", (owner as u64).into()),
                                ("peak_c", peak.value().into()),
                            ]
                        });
                    }
                } else if let Some(new_level) = platform.dvfs().get(idx - 1) {
                    mapping.entries_mut()[owner].level = new_level;
                    frozen[owner] = true; // don't bounce it back up
                    if darksil_obs::events_enabled() {
                        let ghz = new_level.frequency.as_ghz();
                        darksil_obs::event("dsrem.throttle", || {
                            vec![
                                ("step", (step as u64).into()),
                                ("instance", (owner as u64).into()),
                                ("peak_c", peak.value().into()),
                                ("ghz", ghz.into()),
                            ]
                        });
                    }
                }
                continue;
            }

            // Headroom: raise the lowest-level unfrozen instance if the
            // budget allows it.
            if t_dtm - peak > HEADROOM_MARGIN {
                let total = mapping.total_power(platform, self.reference_temp);
                let candidate = mapping
                    .entries()
                    .iter()
                    .enumerate()
                    .filter(|(i, e)| {
                        !frozen[*i] && e.level.frequency < platform.max_level().frequency
                    })
                    .min_by(|a, b| {
                        a.1.level
                            .frequency
                            .value()
                            .total_cmp(&b.1.level.frequency.value())
                    })
                    .map(|(i, _)| i);
                let Some(i) = candidate else { return Ok(()) };
                let idx = platform
                    .dvfs()
                    .floor_index(mapping.entries()[i].level.frequency)
                    .unwrap_or(0);
                let up = platform.dvfs().step_up(idx);
                let old = mapping.entries()[i].level;
                let Some(new_level) = platform.dvfs().get(up) else {
                    return Ok(());
                };
                mapping.entries_mut()[i].level = new_level;
                let delta = self.level_power_delta(platform, mapping, i, old, new_level);
                if total + delta > self.tdp {
                    mapping.entries_mut()[i].level = old;
                    frozen[i] = true;
                } else if darksil_obs::events_enabled() {
                    let ghz = new_level.frequency.as_ghz();
                    darksil_obs::event("dsrem.exploit", || {
                        vec![
                            ("step", (step as u64).into()),
                            ("instance", (i as u64).into()),
                            ("peak_c", peak.value().into()),
                            ("ghz", ghz.into()),
                        ]
                    });
                }
                continue;
            }

            return Ok(()); // safely within margin, nothing to exploit
        }
        Ok(())
    }

    fn level_power_delta(
        &self,
        platform: &Platform,
        mapping: &Mapping,
        index: usize,
        old: VfLevel,
        new: VfLevel,
    ) -> Watts {
        let entry = &mapping.entries()[index];
        let model = platform.app_model(entry.instance.app());
        let alpha = entry.instance.activity();
        let threads = entry.instance.threads() as f64;
        let p_new = model.power(alpha, new.voltage, new.frequency, self.reference_temp);
        let p_old = model.power(alpha, old.voltage, old.frequency, self.reference_temp);
        (p_new - p_old) * threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TdpMap;
    use darksil_power::TechnologyNode;
    use darksil_workload::ParsecApp;

    fn platform() -> Platform {
        Platform::for_node(TechnologyNode::Nm16).expect("valid platform")
    }

    #[test]
    fn respects_budget_and_threshold() {
        let p = platform();
        let w = Workload::parsec_mix(14, 8).expect("valid workload");
        let policy = DsRem::new(Watts::new(185.0)).expect("valid budget");
        let m = policy.map(&p, &w).expect("mapping succeeds");
        assert!(m.total_power(&p, Celsius::new(80.0)) <= Watts::new(185.0) + Watts::new(1e-6));
        let peak = m.peak_temperature(&p).expect("test value");
        assert!(peak <= p.t_dtm() + 0.2, "peak {peak}");
    }

    #[test]
    fn beats_tdpmap_on_mixes() {
        // The Figure 9 claim: DsRem roughly doubles TDPmap's GIPS on
        // application mixes.
        let p = platform();
        let w = Workload::parsec_mix(14, 8).expect("valid workload");
        let dsrem = DsRem::new(Watts::new(185.0))
            .expect("valid budget")
            .map(&p, &w)
            .expect("mapping succeeds");
        let tdpmap = TdpMap::new(Watts::new(185.0))
            .map(&p, &w)
            .expect("mapping succeeds");
        let g_ds = dsrem.total_gips(&p).value();
        let g_tdp = tdpmap.total_gips(&p).value();
        assert!(
            g_ds > g_tdp * 1.2,
            "DsRem {g_ds} GIPS vs TDPmap {g_tdp} GIPS"
        );
    }

    #[test]
    fn maps_more_cores_than_tdpmap() {
        // DsRem trades v/f for breadth: more active cores at lower
        // levels.
        let p = platform();
        let w = Workload::parsec_mix(14, 8).expect("valid workload");
        let dsrem = DsRem::new(Watts::new(185.0))
            .expect("valid budget")
            .map(&p, &w)
            .expect("mapping succeeds");
        let tdpmap = TdpMap::new(Watts::new(185.0))
            .map(&p, &w)
            .expect("mapping succeeds");
        assert!(dsrem.active_core_count() >= tdpmap.active_core_count());
    }

    #[test]
    fn tiny_budget_still_produces_valid_mapping() {
        let p = platform();
        let w = Workload::parsec_mix(7, 8).expect("valid workload");
        let m = DsRem::new(Watts::new(20.0))
            .expect("valid budget")
            .map(&p, &w)
            .expect("mapping succeeds");
        assert!(m.total_power(&p, Celsius::new(80.0)) <= Watts::new(20.0) + Watts::new(1e-6));
    }

    #[test]
    fn huge_budget_runs_into_thermal_wall_not_power_wall() {
        let p = platform();
        let w = Workload::parsec_mix(12, 8).expect("valid workload");
        let m = DsRem::new(Watts::new(5_000.0))
            .expect("valid budget")
            .map(&p, &w)
            .expect("mapping succeeds");
        let peak = m.peak_temperature(&p).expect("test value");
        assert!(peak <= p.t_dtm() + 0.2, "peak {peak}");
        // It should still have mapped a sizeable chunk of the chip.
        assert!(m.active_core_count() >= 48);
    }

    #[test]
    fn single_app_workload() {
        let p = platform();
        let w = Workload::uniform(ParsecApp::Canneal, 10, 8).expect("valid workload");
        let m = DsRem::new(Watts::new(185.0))
            .expect("valid budget")
            .map(&p, &w)
            .expect("mapping succeeds");
        assert!(!m.entries().is_empty());
        for e in m.entries() {
            assert_eq!(e.instance.app(), ParsecApp::Canneal);
        }
    }

    #[test]
    fn invalid_budget_is_a_typed_error() {
        for bad in [-5.0, 0.0, f64::NAN, f64::INFINITY] {
            let err = DsRem::new(Watts::new(bad)).expect_err("must reject");
            assert!(matches!(err, MappingError::InvalidBudget { .. }), "{bad}");
        }
    }

    #[test]
    fn sensor_faults_degrade_gracefully() {
        use darksil_robust::Fault;
        let p = platform();
        let w = Workload::parsec_mix(10, 8).expect("mix");
        let policy = DsRem::new(Watts::new(185.0)).expect("valid budget");
        let clean = policy.map(&p, &w).expect("clean map");
        let faults = FaultPlan::new(7)
            .with(Fault::SensorNoise { sigma_celsius: 3.0 })
            .with(Fault::SensorDropout { period: 2 });
        let faulty = policy
            .map_with_faults(&p, &w, &faults)
            .expect("faulty map still succeeds");
        // Fail-safe direction: corrupted sensors may only shrink the
        // mapped region (more dark silicon), never grow it past clean.
        assert!(faulty.active_core_count() <= clean.active_core_count() + 8);
        let peak = faulty.peak_temperature(&p).expect("peak");
        assert!(peak <= p.t_dtm() + 0.2, "true peak {peak} violates T_DTM");
    }
}
