//! Concrete mappings of application instances to cores.

use darksil_floorplan::CoreId;
use darksil_power::VfLevel;
use darksil_thermal::ThermalMap;
use darksil_units::{Celsius, Gips, Watts};
use darksil_workload::AppInstance;

use crate::{MappingError, Platform};

/// One application instance pinned to a set of cores at a V/f level.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedInstance {
    /// The application instance (app + thread count).
    pub instance: AppInstance,
    /// The cores running its threads (one core per thread).
    pub cores: Vec<CoreId>,
    /// The V/f level all of its cores run at.
    pub level: VfLevel,
}

/// A complete assignment of instances to cores on one chip.
///
/// Invariants enforced at construction: every mapped core is in range,
/// no core is mapped twice, and each instance occupies exactly one core
/// per thread.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mapping {
    entries: Vec<MappedInstance>,
    core_count: usize,
}

impl Mapping {
    /// Creates an empty mapping for a chip with `core_count` cores.
    #[must_use]
    pub fn new(core_count: usize) -> Self {
        Self {
            entries: Vec::new(),
            core_count,
        }
    }

    /// Adds a mapped instance.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InsufficientCores`] if a core id is out
    /// of range, a core is already occupied, or the core list does not
    /// match the instance's thread count.
    pub fn push(&mut self, entry: MappedInstance) -> Result<(), MappingError> {
        if entry.cores.len() != entry.instance.threads() {
            return Err(MappingError::InsufficientCores {
                requested: entry.instance.threads(),
                available: entry.cores.len(),
            });
        }
        for core in &entry.cores {
            if core.index() >= self.core_count || self.is_occupied(*core) {
                return Err(MappingError::InsufficientCores {
                    requested: core.index() + 1,
                    available: self.core_count,
                });
            }
        }
        // Also reject duplicates within the new entry itself.
        let mut seen = entry.cores.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != entry.cores.len() {
            return Err(MappingError::InsufficientCores {
                requested: entry.cores.len(),
                available: seen.len(),
            });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Whether a core already runs a thread.
    #[must_use]
    pub fn is_occupied(&self, core: CoreId) -> bool {
        self.entries.iter().any(|e| e.cores.contains(&core))
    }

    /// The mapped instances.
    #[must_use]
    pub fn entries(&self) -> &[MappedInstance] {
        &self.entries
    }

    /// Mutable access to the mapped instances, for policies that retune
    /// V/f levels in place. Core assignments should not be edited
    /// through this (the occupancy invariants are only checked by
    /// [`Mapping::push`]); change levels, not cores.
    pub fn entries_mut(&mut self) -> &mut [MappedInstance] {
        &mut self.entries
    }

    /// Removes and returns the last mapped instance.
    pub fn pop(&mut self) -> Option<MappedInstance> {
        self.entries.pop()
    }

    /// Chip core count this mapping targets.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.core_count
    }

    /// Number of active (occupied) cores.
    #[must_use]
    pub fn active_core_count(&self) -> usize {
        self.entries.iter().map(|e| e.cores.len()).sum()
    }

    /// Number of dark (unoccupied) cores.
    #[must_use]
    pub fn dark_core_count(&self) -> usize {
        self.core_count - self.active_core_count()
    }

    /// Dark-silicon fraction in `[0, 1]`.
    #[must_use]
    pub fn dark_fraction(&self) -> f64 {
        self.dark_core_count() as f64 / self.core_count as f64
    }

    /// Per-core power map assuming every core sits at the uniform
    /// temperature `t` (used to seed the thermal fixed point and for
    /// budget-only policies that ignore temperature).
    #[must_use]
    pub fn power_map(&self, platform: &Platform, t: Celsius) -> Vec<Watts> {
        let temps = vec![t; self.core_count];
        self.power_map_at(platform, &temps)
    }

    /// Per-core power map with per-core temperatures (for the
    /// leakage↔temperature loop).
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not have one entry per core.
    #[must_use]
    pub fn power_map_at(&self, platform: &Platform, temps: &[Celsius]) -> Vec<Watts> {
        assert_eq!(temps.len(), self.core_count, "one temperature per core");
        let mut power = vec![Watts::zero(); self.core_count];
        for entry in &self.entries {
            let model = platform.app_model(entry.instance.app());
            let alpha = entry.instance.activity();
            for core in &entry.cores {
                let b = model.breakdown(
                    alpha,
                    entry.level.voltage,
                    entry.level.frequency,
                    temps[core.index()],
                );
                // Leakage carries the core's process-variation factor;
                // dynamic and independent power are design-determined.
                let leak_factor = platform.variation().leakage_factor(core.index());
                power[core.index()] = b.dynamic + b.leakage * leak_factor + b.independent;
            }
        }
        power
    }

    /// Total chip power at a uniform temperature.
    #[must_use]
    pub fn total_power(&self, platform: &Platform, t: Celsius) -> Watts {
        self.power_map(platform, t).iter().sum()
    }

    /// Total system throughput (Figure 7/9 metric).
    #[must_use]
    pub fn total_gips(&self, platform: &Platform) -> Gips {
        self.entries
            .iter()
            .map(|e| {
                e.instance.profile().instance_gips(
                    platform.core_model(),
                    e.instance.threads(),
                    e.level.frequency,
                )
            })
            .sum()
    }

    /// Steady-state temperatures with the leakage↔temperature fixed
    /// point: power depends on temperature through `Ileak(V, T)` and
    /// temperature depends on power through the RC network, so the two
    /// are iterated until the peak moves less than 0.01 °C.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::ThermalCoupling`] if 50 iterations do not
    /// converge, and propagates solver failures.
    pub fn steady_temperatures(&self, platform: &Platform) -> Result<ThermalMap, MappingError> {
        let n = self.core_count;
        let mut temps = vec![platform.thermal().ambient(); n];
        let mut last_peak = f64::NEG_INFINITY;
        // Successive iterations differ by small leakage corrections, so
        // each solve is warm-started from the previous iteration's map
        // (a no-op on the factored fast path, a near-exact seed on the
        // iterative fallback).
        let mut previous: Option<ThermalMap> = None;
        for _ in 0..50 {
            let power = self.power_map_at(platform, &temps);
            let map = platform
                .thermal()
                .steady_state_seeded(&power, previous.as_ref())?;
            let peak = map.peak().value();
            temps = map.die_temperatures().collect();
            if (peak - last_peak).abs() < 0.01 {
                return Ok(map);
            }
            last_peak = peak;
            previous = Some(map);
        }
        Err(MappingError::ThermalCoupling { iterations: 50 })
    }

    /// Peak steady-state temperature (fixed point included).
    ///
    /// # Errors
    ///
    /// Same as [`Mapping::steady_temperatures`].
    pub fn peak_temperature(&self, platform: &Platform) -> Result<Celsius, MappingError> {
        Ok(self.steady_temperatures(platform)?.peak())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;
    use darksil_workload::ParsecApp;

    fn platform() -> Platform {
        Platform::with_core_count(TechnologyNode::Nm16, 16).expect("valid platform")
    }

    fn entry(app: ParsecApp, cores: &[usize], platform: &Platform) -> MappedInstance {
        MappedInstance {
            instance: AppInstance::new(app, cores.len()).expect("valid workload"),
            cores: cores.iter().map(|&i| CoreId(i)).collect(),
            level: platform.max_level(),
        }
    }

    #[test]
    fn counting() {
        let p = platform();
        let mut m = Mapping::new(16);
        m.push(entry(ParsecApp::X264, &[0, 1, 2, 3], &p))
            .expect("test value");
        m.push(entry(ParsecApp::Canneal, &[8, 9], &p))
            .expect("test value");
        assert_eq!(m.active_core_count(), 6);
        assert_eq!(m.dark_core_count(), 10);
        assert!((m.dark_fraction() - 0.625).abs() < 1e-12);
        assert_eq!(m.entries().len(), 2);
    }

    #[test]
    fn overlap_rejected() {
        let p = platform();
        let mut m = Mapping::new(16);
        m.push(entry(ParsecApp::X264, &[0, 1], &p))
            .expect("test value");
        assert!(m.push(entry(ParsecApp::Dedup, &[1, 2], &p)).is_err());
        assert!(m.is_occupied(CoreId(0)));
        assert!(!m.is_occupied(CoreId(5)));
    }

    #[test]
    fn out_of_range_rejected() {
        let p = platform();
        let mut m = Mapping::new(16);
        assert!(m.push(entry(ParsecApp::X264, &[15, 16], &p)).is_err());
    }

    #[test]
    fn thread_core_mismatch_rejected() {
        let p = platform();
        let mut m = Mapping::new(16);
        let bad = MappedInstance {
            instance: AppInstance::new(ParsecApp::X264, 4).expect("valid workload"),
            cores: vec![CoreId(0), CoreId(1)],
            level: p.max_level(),
        };
        assert!(m.push(bad).is_err());
    }

    #[test]
    fn duplicate_core_within_entry_rejected() {
        let p = platform();
        let mut m = Mapping::new(16);
        assert!(m.push(entry(ParsecApp::X264, &[3, 3], &p)).is_err());
    }

    #[test]
    fn power_only_on_active_cores() {
        let p = platform();
        let mut m = Mapping::new(16);
        m.push(entry(ParsecApp::Swaptions, &[0, 1, 2, 3], &p))
            .expect("test value");
        let power = m.power_map(&p, Celsius::new(60.0));
        for (i, p_core) in power.iter().enumerate() {
            if i < 4 {
                assert!(p_core.value() > 1.0, "core {i} active but cold");
            } else {
                assert_eq!(*p_core, Watts::zero(), "core {i} should be dark");
            }
        }
        let total = m.total_power(&p, Celsius::new(60.0));
        assert!((total.value() - power.iter().map(|w| w.value()).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn gips_accumulates_over_instances() {
        let p = platform();
        let mut m = Mapping::new(16);
        m.push(entry(ParsecApp::X264, &[0, 1, 2, 3], &p))
            .expect("test value");
        let one = m.total_gips(&p);
        m.push(entry(ParsecApp::X264, &[4, 5, 6, 7], &p))
            .expect("test value");
        let two = m.total_gips(&p);
        assert!((two.value() - 2.0 * one.value()).abs() < 1e-9);
    }

    #[test]
    fn fixed_point_converges_and_heats_active_region() {
        let p = platform();
        let mut m = Mapping::new(16);
        m.push(entry(ParsecApp::Swaptions, &[0, 1, 4, 5], &p))
            .expect("test value");
        let map = m.steady_temperatures(&p).expect("test value");
        // Active corner hotter than opposite corner.
        assert!(map.core(CoreId(0)) > map.core(CoreId(15)));
        assert!(map.peak() > p.thermal().ambient());
    }

    #[test]
    fn fixed_point_accounts_for_leakage() {
        // Peak with the leakage loop must exceed a single cold-leakage
        // estimate (evaluating leakage at ambient underestimates power).
        let p = platform();
        let mut m = Mapping::new(16);
        for (i, chunk) in [[0usize, 1], [2, 3], [4, 5], [6, 7]].iter().enumerate() {
            let _ = i;
            m.push(entry(ParsecApp::Swaptions, chunk, &p))
                .expect("test value");
        }
        let cold_power = m.power_map(&p, p.thermal().ambient());
        let cold_peak = p
            .thermal()
            .steady_state(&cold_power)
            .expect("solve succeeds")
            .peak();
        let coupled_peak = m.peak_temperature(&p).expect("test value");
        assert!(coupled_peak > cold_peak);
        assert!(coupled_peak - cold_peak < 5.0, "loop went wild");
    }

    #[test]
    fn pop_restores_cores() {
        let p = platform();
        let mut m = Mapping::new(16);
        m.push(entry(ParsecApp::X264, &[0, 1], &p))
            .expect("test value");
        let e = m.pop().expect("test value");
        assert_eq!(e.cores.len(), 2);
        assert!(!m.is_occupied(CoreId(0)));
        assert!(m.pop().is_none());
    }
}
