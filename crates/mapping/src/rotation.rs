//! Wear-leveling rotation: dark silicon as a reliability resource.
//!
//! Hayat (Gnad et al., DAC'15 — cited in §1) "harnesses dark silicon
//! … for aging deceleration and balancing": since only part of the chip
//! can be lit anyway, *which* cores stay dark can rotate over time so
//! no single core accumulates all the thermally accelerated wear.
//!
//! [`simulate_static`] runs a workload epoch after epoch on a fixed
//! placement; [`simulate_rotating`] re-places it each epoch on the
//! least-worn cores. Both deliver identical performance (same
//! instances, same V/f); the rotation's payoff is a lower maximum wear
//! — the chip's lifetime is set by its most-aged core.

use darksil_floorplan::CoreId;
use darksil_power::{AgingLedger, AgingModel, VfLevel};
use darksil_units::{Celsius, Seconds};
use darksil_workload::Workload;

use crate::placement::place_patterned;
use crate::{MappedInstance, Mapping, MappingError, Platform};

/// Records one epoch of wear from a mapping's steady-state temperatures.
fn record_epoch(
    platform: &Platform,
    mapping: &Mapping,
    model: &AgingModel,
    ledger: &mut AgingLedger,
    epoch: Seconds,
) -> Result<(), MappingError> {
    let temps: Vec<Celsius> = if mapping.entries().is_empty() {
        vec![platform.thermal().ambient(); platform.core_count()]
    } else {
        mapping
            .steady_temperatures(platform)?
            .die_temperatures()
            .collect()
    };
    ledger.record(model, &temps, epoch);
    Ok(())
}

/// Runs `epochs` epochs of `workload` on one fixed (patterned)
/// placement and returns the accumulated wear.
///
/// # Errors
///
/// Propagates placement and thermal failures.
pub fn simulate_static(
    platform: &Platform,
    workload: &Workload,
    level: VfLevel,
    model: &AgingModel,
    epoch: Seconds,
    epochs: usize,
) -> Result<AgingLedger, MappingError> {
    let mapping = place_patterned(platform.floorplan(), workload, level)?;
    let mut ledger = AgingLedger::new(platform.core_count());
    for _ in 0..epochs {
        record_epoch(platform, &mapping, model, &mut ledger, epoch)?;
    }
    Ok(ledger)
}

/// Runs `epochs` epochs of `workload`, re-placing it at every epoch
/// onto the currently least-worn cores, and returns the accumulated
/// wear.
///
/// # Errors
///
/// Returns [`MappingError::InsufficientCores`] if the workload does not
/// fit and propagates thermal failures.
pub fn simulate_rotating(
    platform: &Platform,
    workload: &Workload,
    level: VfLevel,
    model: &AgingModel,
    epoch: Seconds,
    epochs: usize,
) -> Result<AgingLedger, MappingError> {
    let n = platform.core_count();
    let needed = workload.total_threads();
    if needed > n {
        return Err(MappingError::InsufficientCores {
            requested: needed,
            available: n,
        });
    }
    let mut ledger = AgingLedger::new(n);
    for _ in 0..epochs {
        let fresh: Vec<CoreId> = ledger
            .cores_by_wear()
            .into_iter()
            .take(needed)
            .map(CoreId)
            .collect();
        let mut mapping = Mapping::new(n);
        let mut it = fresh.into_iter();
        for instance in workload {
            let cores: Vec<CoreId> = it.by_ref().take(instance.threads()).collect();
            mapping.push(MappedInstance {
                instance: *instance,
                cores,
                level,
            })?;
        }
        record_epoch(platform, &mapping, model, &mut ledger, epoch)?;
    }
    Ok(ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_power::TechnologyNode;
    use darksil_workload::ParsecApp;

    fn setup() -> (Platform, Workload, VfLevel) {
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 36).expect("valid platform");
        // 16 of 36 cores active: plenty of dark cores to rotate over.
        let workload = Workload::uniform(ParsecApp::Swaptions, 4, 4).expect("valid workload");
        let level = platform.max_level();
        (platform, workload, level)
    }

    #[test]
    fn rotation_levels_the_wear() {
        let (platform, workload, level) = setup();
        let model = AgingModel::nbti_like();
        let epoch = Seconds::new(3600.0);
        let epochs = 9;
        let fixed = simulate_static(&platform, &workload, level, &model, epoch, epochs)
            .expect("test value");
        let rotated = simulate_rotating(&platform, &workload, level, &model, epoch, epochs)
            .expect("test value");

        // The chip-lifetime metric: maximum wear drops under rotation.
        assert!(
            rotated.max_wear() < fixed.max_wear() * 0.95,
            "rotating {} vs static {}",
            rotated.max_wear(),
            fixed.max_wear()
        );
        // And the wear distribution is visibly flatter.
        assert!(rotated.imbalance() < fixed.imbalance());
    }

    #[test]
    fn static_wear_concentrates_on_active_cores() {
        let (platform, workload, level) = setup();
        let model = AgingModel::nbti_like();
        let ledger = simulate_static(&platform, &workload, level, &model, Seconds::new(3600.0), 4)
            .expect("test value");
        let mapping = place_patterned(platform.floorplan(), &workload, level).expect("test value");
        // Every active core out-ages every permanently dark core.
        let min_active = mapping
            .entries()
            .iter()
            .flat_map(|e| e.cores.iter())
            .map(|c| ledger.wear(c.index()))
            .fold(f64::INFINITY, f64::min);
        let max_dark = platform
            .floorplan()
            .cores()
            .filter(|c| !mapping.is_occupied(*c))
            .map(|c| ledger.wear(c.index()))
            .fold(0.0, f64::max);
        assert!(min_active > max_dark, "{min_active} !> {max_dark}");
    }

    #[test]
    fn equal_epochs_equal_total_stress() {
        // Rotation redistributes wear; the chip-wide mean is close to
        // the static run's mean (temperatures differ slightly because
        // the active set moves, so allow a few percent).
        let (platform, workload, level) = setup();
        let model = AgingModel::nbti_like();
        let epoch = Seconds::new(1800.0);
        let fixed =
            simulate_static(&platform, &workload, level, &model, epoch, 6).expect("test value");
        let rotated =
            simulate_rotating(&platform, &workload, level, &model, epoch, 6).expect("test value");
        let ratio = rotated.mean_wear() / fixed.mean_wear();
        assert!((0.9..=1.1).contains(&ratio), "mean-wear ratio {ratio}");
    }

    #[test]
    fn oversized_workload_rejected() {
        let platform = Platform::with_core_count(TechnologyNode::Nm16, 16).expect("valid platform");
        let workload = Workload::uniform(ParsecApp::X264, 3, 8).expect("valid workload"); // 24 > 16
        assert!(matches!(
            simulate_rotating(
                &platform,
                &workload,
                platform.max_level(),
                &AgingModel::nbti_like(),
                Seconds::new(60.0),
                2
            ),
            Err(MappingError::InsufficientCores { .. })
        ));
    }
}
