//! Error type for mapping and platform construction.

use std::error::Error;
use std::fmt;

use darksil_floorplan::FloorplanError;
use darksil_power::PowerError;
use darksil_thermal::ThermalError;
use darksil_workload::WorkloadError;

/// Errors from platform construction, placement and mapping policies.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// The workload needs more cores than the chip provides.
    InsufficientCores {
        /// Cores requested by the workload.
        requested: usize,
        /// Cores available on the chip.
        available: usize,
    },
    /// A policy parameter was invalid (e.g. non-positive TDP).
    InvalidBudget {
        /// The offending value in watts.
        watts: f64,
    },
    /// The leakage/temperature fixed point failed to converge.
    ThermalCoupling {
        /// Iterations performed.
        iterations: usize,
    },
    /// Propagated floorplan error.
    Floorplan(FloorplanError),
    /// Propagated power-model error.
    Power(PowerError),
    /// Propagated thermal-model error.
    Thermal(ThermalError),
    /// Propagated workload error.
    Workload(WorkloadError),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientCores {
                requested,
                available,
            } => write!(f, "workload needs {requested} cores, chip has {available}"),
            Self::InvalidBudget { watts } => write!(f, "invalid power budget {watts} W"),
            Self::ThermalCoupling { iterations } => write!(
                f,
                "leakage/temperature fixed point did not converge in {iterations} iterations"
            ),
            Self::Floorplan(e) => write!(f, "floorplan error: {e}"),
            Self::Power(e) => write!(f, "power-model error: {e}"),
            Self::Thermal(e) => write!(f, "thermal error: {e}"),
            Self::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl Error for MappingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Floorplan(e) => Some(e),
            Self::Power(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FloorplanError> for MappingError {
    fn from(e: FloorplanError) -> Self {
        Self::Floorplan(e)
    }
}

impl From<PowerError> for MappingError {
    fn from(e: PowerError) -> Self {
        Self::Power(e)
    }
}

impl From<ThermalError> for MappingError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<WorkloadError> for MappingError {
    fn from(e: WorkloadError) -> Self {
        Self::Workload(e)
    }
}

impl From<MappingError> for darksil_robust::DarksilError {
    fn from(e: MappingError) -> Self {
        match e {
            MappingError::InsufficientCores { .. } => {
                darksil_robust::DarksilError::capacity(e.to_string())
            }
            MappingError::InvalidBudget { .. } => {
                darksil_robust::DarksilError::config(e.to_string())
            }
            MappingError::ThermalCoupling { .. } => {
                darksil_robust::DarksilError::solver(e.to_string())
            }
            MappingError::Floorplan(inner) => {
                darksil_robust::DarksilError::from(inner).context("mapping")
            }
            MappingError::Power(inner) => {
                darksil_robust::DarksilError::from(inner).context("mapping")
            }
            MappingError::Thermal(inner) => {
                darksil_robust::DarksilError::from(inner).context("mapping")
            }
            MappingError::Workload(inner) => {
                darksil_robust::DarksilError::from(inner).context("mapping")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = MappingError::InsufficientCores {
            requested: 120,
            available: 100,
        };
        assert!(e.to_string().contains("120"));
        assert!(e.source().is_none());

        let e: MappingError = FloorplanError::EmptyGrid.into();
        assert!(e.source().is_some());
        let e: MappingError = PowerError::FrequencyOutOfRange { ghz: -1.0 }.into();
        assert!(e.to_string().contains("power-model"));
        let e: MappingError = WorkloadError::InvalidThreadCount { threads: 0 }.into();
        assert!(e.to_string().contains("workload"));
    }
}
