//! The run journal: per-artefact checkpoint state for `repro --resume`.
//!
//! `repro` records every artefact's lifecycle
//! (`pending → running → done | degraded | failed`) in a single JSON
//! journal, written atomically (temp file + rename) on every
//! transition. A run that is killed mid-flight — including `SIGKILL`,
//! which allows no cleanup — therefore leaves a journal in which
//! completed artefacts are `done`/`degraded` and interrupted ones are
//! still `running`. `repro --resume` reloads it, skips the completed
//! artefacts (their JSON files are already on disk — they are written
//! *before* the `done` transition), and re-queues the rest.
//!
//! The journal embeds a fingerprint of the run configuration (fidelity,
//! artefact selection, injection). Resuming under a different
//! configuration would silently mix incompatible results, so a
//! mismatch is a usage error, not a warning.

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use darksil_json::{Json, ToJson};
use darksil_robust::DarksilError;

/// Journal schema marker; bump when the layout changes.
pub const JOURNAL_SCHEMA: &str = "darksil-journal-v1";

/// Where `repro` keeps the journal by default.
pub const DEFAULT_JOURNAL_PATH: &str = "results/run_journal.json";

/// One artefact's position in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtefactState {
    /// Not yet started.
    Pending,
    /// Started but not finished — after a crash this means
    /// "interrupted, re-run me".
    Running,
    /// Finished successfully at full accuracy.
    Done,
    /// Finished via the declared-degraded fallback; the artefact JSON
    /// is tagged accordingly.
    Degraded,
    /// Exhausted its supervision policy without producing a result.
    Failed,
}

impl ArtefactState {
    /// Stable lowercase label used in the journal file.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Pending => "pending",
            Self::Running => "running",
            Self::Done => "done",
            Self::Degraded => "degraded",
            Self::Failed => "failed",
        }
    }

    /// Parses a label back; `None` for unknown strings.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "pending" => Some(Self::Pending),
            "running" => Some(Self::Running),
            "done" => Some(Self::Done),
            "degraded" => Some(Self::Degraded),
            "failed" => Some(Self::Failed),
            _ => None,
        }
    }

    /// Whether a resume should skip this artefact (its output already
    /// exists on disk).
    #[must_use]
    pub fn is_complete(self) -> bool {
        matches!(self, Self::Done | Self::Degraded)
    }
}

/// One artefact's journal record.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Artefact name (`table1`, `fig5`, …).
    pub name: String,
    /// Current lifecycle state.
    pub state: ArtefactState,
    /// The final error, for `failed` artefacts.
    pub error: Option<String>,
    /// Supervision attempt timeline (one object per attempt, as
    /// produced by `darksil_engine::AttemptRecord`).
    pub attempts: Vec<Json>,
    /// Wall-clock seconds across all attempts (0 until finished).
    pub seconds: f64,
}

impl ToJson for JournalEntry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "state".to_string(),
                Json::Str(self.state.label().to_string()),
            ),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), Json::Str(error.clone())));
        }
        if !self.attempts.is_empty() {
            fields.push(("attempts".to_string(), Json::Arr(self.attempts.clone())));
        }
        fields.push(("seconds".to_string(), Json::Num(self.seconds)));
        Json::Obj(fields)
    }
}

/// Aggregate journal counters, for exit-code decisions and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalCounts {
    /// Artefacts finished at full accuracy.
    pub done: usize,
    /// Artefacts finished via the degraded fallback.
    pub degraded: usize,
    /// Artefacts that exhausted their policy.
    pub failed: usize,
    /// Artefacts still pending or interrupted mid-run.
    pub unfinished: usize,
}

/// The journal: shared across worker threads, persisted atomically on
/// every transition. All mutation happens under one internal lock, so
/// concurrent workers serialise their saves and the on-disk file is
/// always a complete, valid snapshot.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    config: Json,
    entries: Mutex<Vec<JournalEntry>>,
}

impl Journal {
    /// A fresh journal at `path` covering `names`, all `pending`, with
    /// the given run-configuration fingerprint. Nothing is written
    /// until [`save`](Self::save) or the first transition.
    #[must_use]
    pub fn create(path: impl Into<PathBuf>, config: Json, names: &[&str]) -> Self {
        let entries = names
            .iter()
            .map(|name| JournalEntry {
                name: (*name).to_string(),
                state: ArtefactState::Pending,
                error: None,
                attempts: Vec::new(),
                seconds: 0.0,
            })
            .collect();
        Self {
            path: path.into(),
            config,
            entries: Mutex::new(entries),
        }
    }

    /// Loads an existing journal for `--resume`.
    ///
    /// # Errors
    ///
    /// Returns a [`DarksilError`] of class `io` when the file is
    /// missing or unreadable, and of class `config` when it is not a
    /// valid journal (wrong schema, malformed entries).
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, DarksilError> {
        let path = path.into();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                return Err(DarksilError::io(format!(
                    "no journal at {} (nothing to resume — run without --resume first)",
                    path.display()
                )))
            }
            Err(e) => {
                return Err(DarksilError::io(format!(
                    "cannot read journal {}: {e}",
                    path.display()
                )))
            }
        };
        let doc = darksil_json::parse(&text).map_err(|e| {
            DarksilError::config(format!("journal {} is not valid JSON: {e}", path.display()))
        })?;
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some(JOURNAL_SCHEMA) {
            return Err(DarksilError::config(format!(
                "journal {} has schema {:?}, expected {JOURNAL_SCHEMA}",
                path.display(),
                schema.unwrap_or("<missing>")
            )));
        }
        let config = doc.get("config").cloned().unwrap_or(Json::Null);
        let Some(Json::Arr(raw_entries)) = doc.get("artefacts") else {
            return Err(DarksilError::config(format!(
                "journal {} has no artefacts array",
                path.display()
            )));
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for raw in raw_entries {
            let name = raw.get("name").and_then(Json::as_str).ok_or_else(|| {
                DarksilError::config(format!(
                    "journal {} has an entry without a name",
                    path.display()
                ))
            })?;
            let state = raw
                .get("state")
                .and_then(Json::as_str)
                .and_then(ArtefactState::from_label)
                .ok_or_else(|| {
                    DarksilError::config(format!(
                        "journal {}: artefact {name} has an unknown state",
                        path.display()
                    ))
                })?;
            entries.push(JournalEntry {
                name: name.to_string(),
                state,
                error: raw
                    .get("error")
                    .and_then(Json::as_str)
                    .map(ToString::to_string),
                attempts: match raw.get("attempts") {
                    Some(Json::Arr(items)) => items.clone(),
                    _ => Vec::new(),
                },
                seconds: raw.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
            });
        }
        Ok(Self {
            path,
            config,
            entries: Mutex::new(entries),
        })
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run-configuration fingerprint this journal was created with.
    #[must_use]
    pub fn config(&self) -> &Json {
        &self.config
    }

    /// The recorded state of one artefact.
    #[must_use]
    pub fn state_of(&self, name: &str) -> Option<ArtefactState> {
        self.entries
            .lock()
            .ok()
            .and_then(|entries| entries.iter().find(|e| e.name == name).map(|e| e.state))
    }

    /// Names whose state is complete (`done` or `degraded`) — the set a
    /// resume skips.
    #[must_use]
    pub fn completed_names(&self) -> Vec<String> {
        self.entries.lock().map_or_else(
            |_| Vec::new(),
            |entries| {
                entries
                    .iter()
                    .filter(|e| e.state.is_complete())
                    .map(|e| e.name.clone())
                    .collect()
            },
        )
    }

    /// A snapshot of every entry, in journal order.
    #[must_use]
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries
            .lock()
            .map_or_else(|_| Vec::new(), |entries| entries.clone())
    }

    /// Aggregate counters over the current states.
    #[must_use]
    pub fn counts(&self) -> JournalCounts {
        let mut counts = JournalCounts::default();
        if let Ok(entries) = self.entries.lock() {
            for entry in entries.iter() {
                match entry.state {
                    ArtefactState::Done => counts.done += 1,
                    ArtefactState::Degraded => counts.degraded += 1,
                    ArtefactState::Failed => counts.failed += 1,
                    ArtefactState::Pending | ArtefactState::Running => counts.unfinished += 1,
                }
            }
        }
        counts
    }

    /// Resets interrupted (`running`) and `failed` entries to `pending`
    /// so a resume re-queues them, and returns how many were reset.
    /// Completed entries are untouched.
    pub fn requeue_unfinished(&self) -> usize {
        let mut reset = 0;
        if let Ok(mut entries) = self.entries.lock() {
            for entry in entries.iter_mut() {
                if matches!(entry.state, ArtefactState::Running | ArtefactState::Failed) {
                    entry.state = ArtefactState::Pending;
                    entry.error = None;
                    entry.attempts.clear();
                    entry.seconds = 0.0;
                    reset += 1;
                }
            }
        }
        reset
    }

    /// Adds a `pending` entry for `name` if the journal does not
    /// already track it, persisting the snapshot. Returns whether a
    /// new entry was added. Long-running services admit work after the
    /// journal is created, so unlike [`create`](Self::create) the
    /// artefact list here grows dynamically.
    ///
    /// # Errors
    ///
    /// Returns a [`DarksilError`] of class `io` when the journal cannot
    /// be written.
    pub fn ensure(&self, name: &str) -> Result<bool, DarksilError> {
        let mut entries = self
            .entries
            .lock()
            .map_err(|_| DarksilError::internal("journal lock poisoned"))?;
        if entries.iter().any(|e| e.name == name) {
            return Ok(false);
        }
        entries.push(JournalEntry {
            name: name.to_string(),
            state: ArtefactState::Pending,
            error: None,
            attempts: Vec::new(),
            seconds: 0.0,
        });
        self.write_snapshot(&entries)?;
        Ok(true)
    }

    /// Transitions `name` to `state` and persists the journal. Unknown
    /// names are ignored (the journal is authoritative for its own
    /// artefact list).
    ///
    /// # Errors
    ///
    /// Returns a [`DarksilError`] of class `io` when the journal cannot
    /// be written.
    pub fn transition(&self, name: &str, state: ArtefactState) -> Result<(), DarksilError> {
        self.update(name, |entry| entry.state = state)
    }

    /// Records a finished artefact: final state, error (for failures),
    /// attempt timeline, and wall-clock — then persists.
    ///
    /// # Errors
    ///
    /// Returns a [`DarksilError`] of class `io` when the journal cannot
    /// be written.
    pub fn record_finished(
        &self,
        name: &str,
        state: ArtefactState,
        error: Option<String>,
        attempts: Vec<Json>,
        seconds: f64,
    ) -> Result<(), DarksilError> {
        self.update(name, |entry| {
            entry.state = state;
            entry.error = error;
            entry.attempts = attempts;
            entry.seconds = seconds;
        })
    }

    /// Applies `mutate` to the named entry and saves atomically, all
    /// under the one lock so concurrent workers serialise.
    fn update(
        &self,
        name: &str,
        mutate: impl FnOnce(&mut JournalEntry),
    ) -> Result<(), DarksilError> {
        let mut entries = self
            .entries
            .lock()
            .map_err(|_| DarksilError::internal("journal lock poisoned"))?;
        if let Some(entry) = entries.iter_mut().find(|e| e.name == name) {
            mutate(entry);
        }
        self.write_snapshot(&entries)
    }

    /// Persists the current journal state.
    ///
    /// # Errors
    ///
    /// Returns a [`DarksilError`] of class `io` when the journal cannot
    /// be written.
    pub fn save(&self) -> Result<(), DarksilError> {
        let entries = self
            .entries
            .lock()
            .map_err(|_| DarksilError::internal("journal lock poisoned"))?;
        self.write_snapshot(&entries)
    }

    /// Atomic write: temp file in the same directory, then rename.
    fn write_snapshot(&self, entries: &[JournalEntry]) -> Result<(), DarksilError> {
        let doc = Json::Obj(vec![
            ("schema".to_string(), Json::Str(JOURNAL_SCHEMA.to_string())),
            ("config".to_string(), self.config.clone()),
            (
                "artefacts".to_string(),
                Json::Arr(entries.iter().map(ToJson::to_json).collect()),
            ),
        ]);
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|e| {
                    DarksilError::io(format!("cannot create {}: {e}", parent.display()))
                })?;
            }
        }
        let tmp = self.path.with_extension("json.tmp");
        fs::write(&tmp, doc.pretty())
            .map_err(|e| DarksilError::io(format!("cannot write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &self.path)
            .map_err(|e| DarksilError::io(format!("cannot commit {}: {e}", self.path.display())))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(test: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("darksil-journal-{test}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
        fn journal_path(&self) -> PathBuf {
            self.0.join("run_journal.json")
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn config_fingerprint() -> Json {
        Json::Obj(vec![(
            "fidelity".to_string(),
            Json::Str("quick".to_string()),
        )])
    }

    #[test]
    fn states_round_trip_through_labels() {
        for state in [
            ArtefactState::Pending,
            ArtefactState::Running,
            ArtefactState::Done,
            ArtefactState::Degraded,
            ArtefactState::Failed,
        ] {
            assert_eq!(ArtefactState::from_label(state.label()), Some(state));
        }
        assert_eq!(ArtefactState::from_label("exploded"), None);
        assert!(ArtefactState::Done.is_complete());
        assert!(ArtefactState::Degraded.is_complete());
        assert!(!ArtefactState::Running.is_complete());
    }

    #[test]
    fn transitions_persist_and_reload() {
        let scratch = Scratch::new("roundtrip");
        let journal = Journal::create(
            scratch.journal_path(),
            config_fingerprint(),
            &["table1", "fig5", "fig11"],
        );
        journal.save().expect("initial save");
        journal
            .transition("table1", ArtefactState::Running)
            .expect("running");
        journal
            .record_finished("table1", ArtefactState::Done, None, Vec::new(), 1.5)
            .expect("done");
        journal
            .transition("fig5", ArtefactState::Running)
            .expect("running");
        // fig5 is left mid-flight, as a killed run would leave it.

        let reloaded = Journal::load(scratch.journal_path()).expect("reload");
        assert_eq!(reloaded.state_of("table1"), Some(ArtefactState::Done));
        assert_eq!(reloaded.state_of("fig5"), Some(ArtefactState::Running));
        assert_eq!(reloaded.state_of("fig11"), Some(ArtefactState::Pending));
        assert_eq!(reloaded.config(), &config_fingerprint());
        assert_eq!(reloaded.completed_names(), vec!["table1".to_string()]);

        let requeued = reloaded.requeue_unfinished();
        assert_eq!(requeued, 1, "only the interrupted fig5 resets");
        assert_eq!(reloaded.state_of("fig5"), Some(ArtefactState::Pending));
        let counts = reloaded.counts();
        assert_eq!((counts.done, counts.unfinished), (1, 2));
    }

    #[test]
    fn failed_entries_keep_their_error_and_attempts() {
        let scratch = Scratch::new("failure");
        let journal = Journal::create(scratch.journal_path(), Json::Null, &["fig9"]);
        let attempts = vec![Json::Obj(vec![(
            "outcome".to_string(),
            Json::Str("deadline".to_string()),
        )])];
        journal
            .record_finished(
                "fig9",
                ArtefactState::Failed,
                Some("[deadline] solve too slow".to_string()),
                attempts,
                3.0,
            )
            .expect("record");
        let reloaded = Journal::load(scratch.journal_path()).expect("reload");
        let entries = reloaded.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].error.as_deref(),
            Some("[deadline] solve too slow")
        );
        assert_eq!(entries[0].attempts.len(), 1);
        assert!((entries[0].seconds - 3.0).abs() < 1e-12);
        assert_eq!(reloaded.counts().failed, 1);
        // Failed entries are re-queued on resume too.
        assert_eq!(reloaded.requeue_unfinished(), 1);
    }

    #[test]
    fn loading_rejects_missing_and_malformed_journals() {
        let scratch = Scratch::new("reject");
        let err = Journal::load(scratch.journal_path()).expect_err("missing file");
        assert_eq!(err.class(), darksil_robust::ErrorClass::Io);

        fs::create_dir_all(&scratch.0).expect("mkdir");
        fs::write(scratch.journal_path(), "{ not json").expect("write");
        let err = Journal::load(scratch.journal_path()).expect_err("bad json");
        assert_eq!(err.class(), darksil_robust::ErrorClass::Config);

        fs::write(
            scratch.journal_path(),
            r#"{"schema": "darksil-journal-v0", "artefacts": []}"#,
        )
        .expect("write");
        let err = Journal::load(scratch.journal_path()).expect_err("wrong schema");
        assert!(err.to_string().contains("darksil-journal-v0"), "{err}");
    }

    #[test]
    fn ensure_grows_the_artefact_list_dynamically() {
        let scratch = Scratch::new("ensure");
        let journal = Journal::create(scratch.journal_path(), Json::Null, &[]);
        assert!(journal.ensure("job-a").expect("first add"));
        assert!(!journal.ensure("job-a").expect("idempotent"));
        assert!(journal.ensure("job-b").expect("second add"));
        journal
            .transition("job-a", ArtefactState::Done)
            .expect("transition applies to ensured entries");

        let reloaded = Journal::load(scratch.journal_path()).expect("reload");
        assert_eq!(reloaded.state_of("job-a"), Some(ArtefactState::Done));
        assert_eq!(reloaded.state_of("job-b"), Some(ArtefactState::Pending));
    }

    #[test]
    fn snapshots_never_leave_temp_files_behind() {
        let scratch = Scratch::new("atomic");
        let journal = Journal::create(scratch.journal_path(), Json::Null, &["fig2"]);
        journal.save().expect("save");
        journal
            .transition("fig2", ArtefactState::Done)
            .expect("transition");
        let listing: Vec<_> = fs::read_dir(&scratch.0)
            .expect("listing")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(listing, vec!["run_journal.json".to_string()]);
    }
}
