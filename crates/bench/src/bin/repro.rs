//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <artefact> [--json DIR] [--paper]
//!
//! artefacts: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!            fig11 fig12 fig13 fig14 all
//! --json DIR   additionally write machine-readable series to DIR
//! --paper      run transients at the paper's full horizons (slow)
//! ```

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use darksil_bench::{fig14_total_energy, Fidelity};
use serde::Serialize;

struct Options {
    json_dir: Option<PathBuf>,
    fidelity: Fidelity,
}

/// One named artefact runner for the `all` dispatch table.
type Runner = (
    &'static str,
    fn(&Options) -> Result<(), Box<dyn std::error::Error>>,
);

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let Some(artefact) = args.next() else {
        eprintln!("usage: repro <table1|fig2..fig14|dtm|aging|variability|cooling|pareto|all> [--json DIR] [--paper]");
        return ExitCode::FAILURE;
    };
    let mut options = Options {
        json_dir: None,
        fidelity: Fidelity::Quick,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => match args.next() {
                Some(dir) => options.json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--paper" => options.fidelity = Fidelity::Paper,
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let result = match artefact.as_str() {
        "table1" => table1(&options),
        "fig2" => fig2(&options),
        "fig3" => fig3(&options),
        "fig4" => fig4(&options),
        "fig5" => fig5(&options),
        "fig6" => fig6(&options),
        "fig7" => fig7(&options),
        "fig8" => fig8(&options),
        "fig9" => fig9(&options),
        "fig10" => fig10(&options),
        "fig11" => fig11(&options),
        "fig12" => fig12(&options),
        "fig13" => fig13(&options),
        "fig14" => fig14(&options),
        "dtm" => dtm(&options),
        "aging" => aging(&options),
        "variability" => variability(&options),
        "cooling" => cooling(&options),
        "pareto" => pareto(&options),
        "all" => {
            let runners: [Runner; 19] = [
                ("table1", table1),
                ("fig2", fig2),
                ("fig3", fig3),
                ("fig4", fig4),
                ("fig5", fig5),
                ("fig6", fig6),
                ("fig7", fig7),
                ("fig8", fig8),
                ("fig9", fig9),
                ("fig10", fig10),
                ("fig11", fig11),
                ("fig12", fig12),
                ("fig13", fig13),
                ("fig14", fig14),
                ("dtm", dtm),
                ("aging", aging),
                ("variability", variability),
                ("cooling", cooling),
                ("pareto", pareto),
            ];
            runners.iter().try_for_each(|(name, run)| {
                println!("\n================ {name} ================");
                run(&options)
            })
        }
        other => {
            eprintln!("unknown artefact {other}");
            return ExitCode::FAILURE;
        }
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro {artefact} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dump<T: Serialize>(
    options: &Options,
    name: &str,
    data: &T,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(dir) = &options.json_dir {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, serde_json::to_string_pretty(data)?)?;
        println!("[wrote {}]", path.display());
    }
    Ok(())
}

fn table1(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::table1();
    println!("Technology  Vdd   Freq  Cap   Area  Core-area[mm²]");
    for r in &rows {
        println!(
            "{:>6} nm  {:>5.2} {:>5.2} {:>5.2} {:>5.2}  {:>6.1}",
            r.node_nm, r.vdd, r.frequency, r.capacitance, r.area, r.core_area_mm2
        );
    }
    dump(options, "table1", &rows)
}

fn fig2(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let pts = darksil_bench::fig2(27);
    println!("Voltage[V]  Frequency[GHz]  Region");
    for p in &pts {
        println!(
            "{:>9.3}  {:>13.3}  {}",
            p.voltage.value(),
            p.frequency.as_ghz(),
            p.region
        );
    }
    dump(options, "fig2", &pts)
}

fn fig3(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let f = darksil_bench::fig3()?;
    println!("Frequency[GHz]  Measured[W]  Model[W]");
    for p in &f.points {
        println!(
            "{:>13.2}  {:>10.2}  {:>8.2}",
            p.frequency.as_ghz(),
            p.measured.value(),
            p.fitted.value()
        );
    }
    println!("fit RMSE: {:.3} W", f.rmse.value());
    dump(options, "fig3", &f)
}

fn fig4(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let series = darksil_bench::fig4();
    print!("Threads ");
    for s in &series {
        print!("{:>12}", s.app.name());
    }
    println!();
    for i in 0..series[0].points.len() {
        print!("{:>7} ", series[0].points[i].0);
        for s in &series {
            print!("{:>12.2}", s.points[i].1);
        }
        println!();
    }
    dump(options, "fig4", &series)
}

fn fig5(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig5()?;
    for panel in &panels {
        println!("-- TDP = {} --", panel.tdp);
        println!("app           2.8GHz  3.0GHz  3.2GHz  3.4GHz  3.6GHz   (dark %)");
        for app in darksil_workload::ParsecApp::ALL {
            print!("{:<13}", app.name());
            for cell in panel.cells.iter().filter(|c| c.app == app) {
                print!(" {:>6.0}%", cell.dark_percent);
            }
            println!();
        }
        println!("peak temperatures at 3.6 GHz:");
        for (app, t) in &panel.peak_temperatures {
            println!("  {:<13} {:>6.1} °C", app.name(), t.value());
        }
        println!("any thermal violation: {}", panel.any_violation);
    }
    dump(options, "fig5", &panels)
}

fn fig6(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig6()?;
    for panel in &panels {
        println!(
            "-- {} @ {:.1} GHz --",
            panel.node,
            panel.frequency.as_ghz()
        );
        println!("app           dark(TDP)  dark(thermal)");
        for row in &panel.rows {
            println!(
                "{:<13} {:>8.0}%  {:>12.0}%",
                row.app.name(),
                row.dark_tdp_percent,
                row.dark_thermal_percent
            );
        }
        println!(
            "average dark-silicon reduction: {:.0}%",
            panel.average_reduction_percent
        );
    }
    dump(options, "fig6", &panels)
}

fn fig7(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig7()?;
    for panel in &panels {
        println!("-- {} --", panel.node);
        println!("app           GIPS(nom)  GIPS(dvfs)  act%(nom)  act%(dvfs)  chosen");
        for r in &panel.rows {
            println!(
                "{:<13} {:>9.0}  {:>10.0}  {:>8.0}%  {:>9.0}%  {}t @ {:.1} GHz",
                r.app.name(),
                r.nominal_gips.value(),
                r.tuned_gips.value(),
                r.nominal_active_percent,
                r.tuned_active_percent,
                r.chosen_threads,
                r.chosen_frequency.as_ghz()
            );
        }
        println!(
            "max performance gain: {:.0}%",
            (panel.max_gain - 1.0) * 100.0
        );
    }
    dump(options, "fig7", &panels)
}

fn fig8(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let patterns = darksil_bench::fig8()?;
    for p in &patterns {
        println!(
            "-- {}: {} cores @ 3.6 GHz, Ptotal = {:.0} W, peak = {:.1} °C, violates T_DTM: {} --",
            p.name,
            p.active_cores,
            p.total_power.value(),
            p.peak_temperature.value(),
            p.violates
        );
        println!("{}", p.thermal_art);
    }
    dump(options, "fig8", &patterns)
}

fn fig9(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig9()?;
    println!("mix             TDPmap[GIPS]  DsRem[GIPS]  act%(TDP)  act%(Ds)  speedup");
    for r in &rows {
        println!(
            "{:<15} {:>12.0}  {:>11.0}  {:>8.0}%  {:>7.0}%  {:>6.2}x",
            r.mix,
            r.tdpmap_gips.value(),
            r.dsrem_gips.value(),
            r.tdpmap_active_percent,
            r.dsrem_active_percent,
            r.speedup
        );
    }
    dump(options, "fig9", &rows)
}

fn fig10(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let bars = darksil_bench::fig10()?;
    println!("node    dark%   TSP/core[W]  total[GIPS]");
    for b in &bars {
        println!(
            "{:<7} {:>4.0}%  {:>10.2}  {:>11.0}",
            b.node.to_string(),
            100.0 * b.dark_fraction,
            b.tsp_per_core.value(),
            b.total_gips.value()
        );
    }
    dump(options, "fig10", &bars)
}

fn fig11(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let f = darksil_bench::fig11(options.fidelity)?;
    println!(
        "boosting: avg {:.1} GIPS, settled temperature band {:.1}–{:.1} °C",
        f.boosting_avg_gips.value(),
        f.boosting_temp_band.0.value(),
        f.boosting_temp_band.1.value()
    );
    println!(
        "constant: avg {:.1} GIPS, peak {:.1} °C",
        f.constant_avg_gips.value(),
        f.constant_peak_temp.value()
    );
    println!(
        "boosting gain: {:.1}%",
        100.0 * (f.boosting_avg_gips / f.constant_avg_gips - 1.0)
    );
    dump(options, "fig11", &f)
}

fn fig12(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let points = darksil_bench::fig12(options.fidelity)?;
    println!("cores  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]");
    for p in &points {
        println!(
            "{:>5}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            p.active_cores,
            p.boosting_gips.value(),
            p.constant_gips.value(),
            p.boosting_power.value(),
            p.constant_power.value()
        );
    }
    dump(options, "fig12", &points)
}

fn fig13(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig13(options.fidelity)?;
    println!("app           inst  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]");
    for r in &rows {
        println!(
            "{:<13} {:>4}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            r.app.name(),
            r.instances,
            r.boosting_gips.value(),
            r.constant_gips.value(),
            r.boosting_peak_power.value(),
            r.constant_peak_power.value()
        );
    }
    dump(options, "fig13", &rows)
}

fn dtm(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::dtm_response()?;
    println!("TDP[W]  admitted-dark  sustained-dark  powered-down  DTM fired");
    for r in &rows {
        println!(
            "{:>6.0}  {:>12.0}%  {:>13.0}%  {:>12}  {}",
            r.tdp.value(),
            r.admitted_dark_percent,
            r.sustained_dark_percent,
            r.instances_powered_down,
            r.triggered
        );
    }
    println!(
        "Optimistic TDPs hide dark silicon behind the DTM reaction (§3.1)."
    );
    dump(options, "dtm", &rows)
}

fn aging(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let cmp = darksil_bench::aging_rotation()?;
    println!(
        "{} epochs × {} h, 56/100 cores active:",
        cmp.epochs, cmp.epoch_hours
    );
    println!(
        "  static placement: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.static_max_wear, cmp.static_imbalance
    );
    println!(
        "  rotating dark set: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.rotating_max_wear, cmp.rotating_imbalance
    );
    println!("  implied lifetime gain: {:.2}x", cmp.lifetime_gain());
    dump(options, "aging", &cmp)
}

fn variability(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::variability_savings(5)?;
    println!("chip  best-pick[W]  leaky-pick[W]  saving");
    for r in &rows {
        println!(
            "{:>4}  {:>11.1}  {:>12.1}  {:>5.1}%",
            r.seed,
            r.best_pick_power.value(),
            r.worst_pick_power.value(),
            r.saving_percent
        );
    }
    dump(options, "variability", &rows)
}

fn cooling(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let (packages, sweep) = darksil_bench::cooling_sensitivity()?;
    println!("package            dark%   active  peak[°C]");
    for p in &packages {
        println!(
            "{:<17} {:>5.0}%  {:>6}  {:>7.1}",
            p.package,
            100.0 * p.dark_fraction,
            p.active_cores,
            p.peak_temperature.value()
        );
    }
    println!("\nR_conv[K/W]  dark%   active  power[W]");
    for pt in &sweep {
        println!(
            "{:>10.2}  {:>5.0}%  {:>6}  {:>7.0}",
            pt.convection_resistance,
            100.0 * pt.dark_fraction,
            pt.active_cores,
            pt.total_power.value()
        );
    }
    println!("\nDark silicon is a property of chip + cooling, not of the chip alone.");
    dump(options, "cooling", &(packages, sweep))
}

fn pareto(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let (points, frontier) = darksil_bench::pareto_x264()?;
    println!(
        "{} feasible of {} configurations; Pareto frontier:",
        points.iter().filter(|p| p.feasible).count(),
        points.len()
    );
    println!("threads  inst  f[GHz]  GIPS   power[W]  dark%  peak[°C]");
    for p in &frontier {
        println!(
            "{:>7}  {:>4}  {:>5.1}  {:>5.0}  {:>8.0}  {:>4.0}%  {:>7.1}",
            p.threads,
            p.instances,
            p.frequency.as_ghz(),
            p.total_gips.value(),
            p.total_power.value(),
            100.0 * p.dark_fraction,
            p.peak_temperature.value()
        );
    }
    println!("\nThe §3.3 trade-off made explicit: both axes (threads, V/f) appear on the frontier.");
    dump(options, "pareto", &frontier)
}

fn fig14(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig14()?;
    println!("app           NTC[kJ]  STC1[kJ]  STC2[kJ]  NTC wins");
    for r in &rows {
        println!(
            "{:<13} {:>7.2}  {:>8.2}  {:>8.2}  {}",
            r.app.name(),
            r.ntc.energy.value() / 1e3,
            r.stc_one_thread.energy.value() / 1e3,
            r.stc_two_threads.energy.value() / 1e3,
            r.ntc_wins()
        );
    }
    let (ntc, stc1, stc2) = fig14_total_energy(&rows);
    println!(
        "totals: NTC {:.1} kJ vs STC1 {:.1} kJ vs STC2 {:.1} kJ",
        ntc.value() / 1e3,
        stc1.value() / 1e3,
        stc2.value() / 1e3
    );
    dump(options, "fig14", &rows)
}
