//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <artefact>... [--json DIR] [--paper] [--inject ARTEFACT[:KIND]]
//!                     [--jobs N] [--no-cache] [--cache-dir DIR]
//!                     [--deadline SECS] [--retries N] [--resume]
//!                     [--journal PATH] [--profile]
//!
//! artefacts: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!            fig11 fig12 fig13 fig14 dtm aging variability cooling
//!            pareto all
//! ```
//!
//! Run `repro --help` for the full flag reference and exit-code
//! semantics.
//!
//! Every artefact runs in isolation as a **supervised** `darksil-engine`
//! job: each attempt gets a wall-clock deadline (per artefact class,
//! overridable with `--deadline`) observed cooperatively at CG-iteration
//! and policy-step boundaries; retryable failures re-run with seeded
//! jittered exponential backoff under a per-class circuit breaker; and
//! thermal artefacts that exhaust their retries re-run once in declared
//! degraded mode (relaxed CG tolerance), tagging the artefact JSON with
//! `"degraded": true` instead of leaving a hole in the figure set.
//!
//! Progress is journalled per artefact to `results/run_journal.json`
//! (atomic temp-file + rename on every transition), so a killed run can
//! be continued with `--resume`: completed artefacts are skipped —
//! their JSON files were written *before* the journal marked them done
//! — and interrupted or failed ones are re-queued. Results come back in
//! artefact order, so emitted files and the console report are
//! identical at any `--jobs` setting.
//!
//! Artefact payloads are memoised in a content-addressed cache keyed by
//! the scenario inputs (fidelity) plus a code-version salt; a warm run
//! replays the stored JSON instead of recomputing. Corrupt or stale
//! entries fall back to recomputation with a typed diagnostic. Degraded
//! payloads are never cached.
//!
//! `--profile` turns on `darksil-obs` tracing for the run: per-artefact
//! spans (with engine/numerics/thermal child spans) land in
//! `results/trace_repro.json`, and an aggregated perf report with
//! regression bounds is written to `BENCH_repro.json` in the working
//! directory. Artefact payloads are byte-identical with profiling on or
//! off — the trace is a parallel output, never an input.

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use darksil_bench::{
    fig14_total_energy, ArtefactState, Fidelity, Journal, JournalEntry, DEFAULT_JOURNAL_PATH,
};
use darksil_engine::{
    BackoffPolicy, CacheOutcome, Engine, JobSpec, ResultCache, Supervised, Supervisor,
    DEFAULT_CACHE_DIR,
};
use darksil_json::{Json, ToJson};
use darksil_robust::{DarksilError, Fault, FaultPlan};

/// Bump whenever an artefact's generating code changes meaning: the
/// salt is folded into every cache key, so stale entries from older
/// binaries become unreachable instead of being replayed.
const CACHE_SALT: &str = "repro-v1";

/// Usage-error exit code, distinct from artefact failures (1).
const EXIT_USAGE: u8 = 2;

const USAGE: &str = "usage: repro <table1|fig2..fig14|dtm|aging|variability|cooling|pareto|all>...
             [--json DIR] [--paper] [--inject ARTEFACT[:KIND]] [--jobs N]
             [--no-cache] [--cache-dir DIR] [--deadline SECS] [--retries N]
             [--resume] [--journal PATH] [--profile] [--events]

  several artefact names may be given (e.g. `repro table1 fig2 fig8`);
  `all` selects every artefact and cannot be combined with names

  --json DIR         additionally write machine-readable series to DIR
  --paper            run transients at the paper's full horizons (slow)
  --inject A[:KIND]  inject a fault into artefact A. KIND: nan (default,
                     NaN power into the thermal solver — not retryable),
                     hang (cooperative spin until the deadline cancels
                     it), slow (1.5 s stall before the work), transient
                     (fails the first attempt, succeeds on retry)
  --jobs N           worker threads for the artefact fan-out (default:
                     DARKSIL_JOBS, else the available parallelism);
                     --jobs 1 runs everything serially
  --no-cache         recompute every artefact, bypassing the result cache
  --cache-dir DIR    result-cache location (default results/.cache)
  --deadline SECS    per-attempt wall-clock budget for every artefact,
                     overriding the class defaults (fast 60 s,
                     steady-state thermal 300 s, transient 600 s)
  --retries N        retries per artefact after the first attempt
                     (default 2; only retryable error classes re-run)
  --resume           continue an interrupted run: artefacts the journal
                     records as done/degraded are skipped, interrupted
                     and failed ones are re-queued. The selection,
                     fidelity and injection flags must match the
                     journalled run.
  --journal PATH     journal location (default results/run_journal.json)
  --profile          record a darksil-obs trace of the run: writes
                     results/trace_repro.json (the span tree — inspect
                     with `darksil trace summarize`) and BENCH_repro.json
                     (aggregated per-phase timings with regression
                     bounds; the committed copy is the CI baseline).
                     Artefact payloads are unaffected
  --events           record the domain event stream (thermal samples,
                     DVFS transitions, mapping decisions, TSP budgets):
                     writes results/events_<selection>.jsonl — inspect
                     with `darksil events summarize` or render with
                     `darksil report` — plus results/trace_repro.json.
                     The stream is byte-identical at any --jobs setting

exit codes:
  0  every artefact completed; a warning is printed on stderr when any
     finished in declared degraded mode
  1  at least one artefact failed (or a report could not be written)
  2  usage error (bad flags, unknown artefact, or --resume with a
     missing or mismatched journal)";

struct Options {
    json_dir: Option<PathBuf>,
    fidelity: Fidelity,
    inject: Option<Inject>,
    cache: Option<ResultCache>,
    deadline_override: Option<Duration>,
    retries: u32,
}

/// What `--inject` asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectKind {
    /// NaN power into the thermal solver (class `non_finite`, not
    /// retryable — the run must fail).
    Nan,
    /// Cooperative infinite spin; only the deadline ends it.
    Hang,
    /// A 1.5 s stall before the real work.
    Slow,
    /// Fails the first attempt with an `injected`-class error, then
    /// succeeds.
    Transient,
}

impl InjectKind {
    fn parse(kind: &str) -> Option<Self> {
        match kind {
            "nan" => Some(Self::Nan),
            "hang" => Some(Self::Hang),
            "slow" => Some(Self::Slow),
            "transient" => Some(Self::Transient),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Self::Nan => "nan",
            Self::Hang => "hang",
            Self::Slow => "slow",
            Self::Transient => "transient",
        }
    }
}

#[derive(Debug, Clone)]
struct Inject {
    artefact: String,
    kind: InjectKind,
}

/// An artefact builder: buffers its human-readable report into `out`
/// and returns the machine-readable payload.
type RunnerFn = fn(&Options, &mut String) -> Result<Json, Box<dyn std::error::Error>>;

/// One named artefact runner for the dispatch tables.
type Runner = (&'static str, RunnerFn);

const RUNNERS: [Runner; 19] = [
    ("table1", table1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("fig8", fig8),
    ("fig9", fig9),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("dtm", dtm),
    ("aging", aging),
    ("variability", variability),
    ("cooling", cooling),
    ("pareto", pareto),
];

/// The supervision class of one artefact: closed-form/architectural
/// artefacts are `fast`, steady-state thermal solves `thermal`, and
/// transient policy simulations `transient`. The class picks the
/// default deadline and shares a circuit breaker.
fn artefact_class(name: &str) -> &'static str {
    match name {
        "table1" | "fig2" | "fig3" | "fig4" => "fast",
        "fig11" | "fig12" | "fig13" | "fig14" => "transient",
        _ => "thermal",
    }
}

/// Default per-attempt wall-clock budget for a supervision class.
fn default_deadline(class: &str) -> Duration {
    match class {
        "fast" => Duration::from_secs(60),
        "transient" => Duration::from_secs(600),
        _ => Duration::from_secs(300),
    }
}

/// The result of one isolated artefact run.
struct ArtefactOutcome {
    name: &'static str,
    /// `ok`, `error` or `panic`.
    status: &'static str,
    /// Whether an `ok` outcome came from the declared-degraded
    /// fallback.
    degraded: bool,
    /// The classified error for non-`ok` outcomes.
    error: Option<DarksilError>,
    /// Wall-clock seconds spent (across all attempts).
    seconds: f64,
    /// `hit`, `miss`, `recovered`, `resume` or `off`.
    cache: &'static str,
    /// Supervision attempt timeline (empty for cache hits and resumes).
    attempts: Vec<Json>,
}

impl ArtefactOutcome {
    fn succeeded(&self) -> bool {
        self.status == "ok"
    }
}

impl ToJson for ArtefactOutcome {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("artefact".to_string(), Json::Str(self.name.to_string())),
            ("status".to_string(), Json::Str(self.status.to_string())),
            ("degraded".to_string(), Json::Bool(self.degraded)),
            ("seconds".to_string(), Json::Num(self.seconds)),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), e.to_json()));
        }
        if !self.attempts.is_empty() {
            fields.push(("attempts".to_string(), Json::Arr(self.attempts.clone())));
        }
        Json::Obj(fields)
    }
}

/// Everything a finished artefact job hands back to the reporter.
struct ArtefactRun {
    outcome: ArtefactOutcome,
    /// The buffered human-readable report (empty on cache hits), with
    /// any `[wrote …]` lines appended — printed in artefact order by
    /// the reporter so stdout is deterministic at any `--jobs`.
    text: String,
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let Some(artefact) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    if artefact == "--help" || artefact == "-h" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut json_dir = None;
    let mut fidelity = Fidelity::Quick;
    let mut inject: Option<Inject> = None;
    let mut jobs_flag: Option<usize> = None;
    let mut use_cache = true;
    let mut cache_dir = PathBuf::from(DEFAULT_CACHE_DIR);
    let mut deadline_override: Option<Duration> = None;
    let mut retries: u32 = 2;
    let mut resume = false;
    let mut journal_path = PathBuf::from(DEFAULT_JOURNAL_PATH);
    let mut profile = false;
    let mut events = false;
    let mut requested: Vec<String> = vec![artefact.clone()];
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => return usage_error("--json requires a directory"),
            },
            "--paper" => fidelity = Fidelity::Paper,
            "--inject" => match args.next() {
                Some(spec) => {
                    let (name, kind) = match spec.split_once(':') {
                        Some((name, kind)) => (name.to_string(), kind),
                        None => (spec.clone(), "nan"),
                    };
                    let Some(kind) = InjectKind::parse(kind) else {
                        return usage_error(&format!(
                            "unknown inject kind {kind:?} (expected nan, hang, slow or transient)"
                        ));
                    };
                    inject = Some(Inject {
                        artefact: name,
                        kind,
                    });
                }
                None => return usage_error("--inject requires an artefact name"),
            },
            "--jobs" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs_flag = Some(n),
                _ => return usage_error("--jobs requires a positive integer"),
            },
            "--no-cache" => use_cache = false,
            "--cache-dir" => match args.next() {
                Some(dir) => cache_dir = PathBuf::from(dir),
                None => return usage_error("--cache-dir requires a directory"),
            },
            "--deadline" => match args.next().map(|n| n.parse::<f64>()) {
                Some(Ok(secs)) if secs > 0.0 && secs.is_finite() => {
                    deadline_override = Some(Duration::from_secs_f64(secs));
                }
                _ => return usage_error("--deadline requires a positive number of seconds"),
            },
            "--retries" => match args.next().map(|n| n.parse::<u32>()) {
                Some(Ok(n)) => retries = n,
                _ => return usage_error("--retries requires a non-negative integer"),
            },
            "--resume" => resume = true,
            "--journal" => match args.next() {
                Some(path) => journal_path = PathBuf::from(path),
                None => return usage_error("--journal requires a file path"),
            },
            "--profile" => profile = true,
            "--events" => events = true,
            other if !other.starts_with('-') => requested.push(other.to_string()),
            other => return usage_error(&format!("unknown flag {other}")),
        }
    }
    let jobs = jobs_flag
        .unwrap_or_else(darksil_engine::default_jobs)
        .max(1);
    // Nested engine fan-outs (inside the figures) follow the same
    // setting as the artefact-level pool.
    darksil_engine::set_default_jobs(jobs);
    let options = Options {
        json_dir,
        fidelity,
        inject,
        cache: use_cache.then(|| ResultCache::open(cache_dir, CACHE_SALT)),
        deadline_override,
        retries,
    };

    let selected: Vec<Runner> = if requested.iter().any(|name| name == "all") {
        if requested.len() > 1 {
            return usage_error("`all` cannot be combined with artefact names");
        }
        RUNNERS.to_vec()
    } else {
        let mut picked: Vec<Runner> = Vec::new();
        for name in &requested {
            match RUNNERS.iter().find(|(known, _)| known == name) {
                Some(runner) if !picked.iter().any(|(n, _)| n == &runner.0) => {
                    picked.push(*runner);
                }
                Some(_) => {}
                None => return usage_error(&format!("unknown artefact {name}")),
            }
        }
        picked
    };
    let names: Vec<&'static str> = selected.iter().map(|(name, _)| *name).collect();
    // Stable label for the journal fingerprint and the profile reports:
    // `all`, a single name, or the deduplicated names joined with `+`.
    let selection_label = if artefact == "all" {
        "all".to_string()
    } else {
        names.join("+")
    };

    // The journal fingerprints everything that shapes artefact content;
    // resuming under a different configuration would mix incompatible
    // results, so a mismatch is a usage error.
    let fingerprint = run_fingerprint(&selection_label, &options);
    let journal = if resume {
        let journal = match Journal::load(&journal_path) {
            Ok(journal) => journal,
            Err(e) => {
                eprintln!("repro --resume: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        if journal.config() != &fingerprint {
            eprintln!(
                "repro --resume: journal {} was recorded for a different run \
                 configuration\n  journalled: {}\n  requested:  {}",
                journal_path.display(),
                journal.config().compact(),
                fingerprint.compact()
            );
            return ExitCode::from(EXIT_USAGE);
        }
        let requeued = journal.requeue_unfinished();
        let completed = journal.completed_names().len();
        eprintln!(
            "repro --resume: {completed} artefact(s) already complete, \
             {requeued} re-queued"
        );
        journal
    } else {
        Journal::create(&journal_path, fingerprint, &names)
    };
    if let Err(e) = journal.save() {
        eprintln!("cannot write journal: {e}");
        return ExitCode::FAILURE;
    }

    let supervisor = Supervisor::new(BackoffPolicy::default(), 4);

    // `--events` implies span recording (enable_events is a superset of
    // enable); `--profile` alone records spans only.
    if events {
        darksil_obs::enable_events();
    } else if profile {
        darksil_obs::enable();
    }
    let root_span = darksil_obs::span("repro.run");
    let started = Instant::now();
    let runs = Engine::new(jobs).par_map(selected, |(name, run)| {
        Ok(run_artefact(name, run, &options, &supervisor, &journal))
    });
    let total_seconds = started.elapsed().as_secs_f64();
    drop(root_span);

    let show_headers = artefact == "all";
    let mut outcomes: Vec<ArtefactOutcome> = Vec::with_capacity(runs.len());
    for (name, run) in names.into_iter().zip(runs) {
        // The engine's own panic isolation is a backstop; `run_artefact`
        // already catches panics, so this arm is not normally reachable.
        let art = run.unwrap_or_else(|e| ArtefactRun {
            outcome: ArtefactOutcome {
                name,
                status: "panic",
                degraded: false,
                error: Some(e.context(name)),
                seconds: 0.0,
                cache: "off",
                attempts: Vec::new(),
            },
            text: String::new(),
        });
        if show_headers {
            println!("\n================ {name} ================");
        }
        print!("{}", art.text);
        match art.outcome.cache {
            "hit" => println!("[{name}: cache hit]"),
            "resume" => println!("[{name}: resumed from journal]"),
            _ => {}
        }
        outcomes.push(art.outcome);
    }

    let failed = outcomes.iter().filter(|o| !o.succeeded()).count();
    let degraded = outcomes.iter().filter(|o| o.degraded).count();
    if let Err(e) = write_error_report(&options, &outcomes, failed, degraded) {
        eprintln!("cannot write error report: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_bench_report(jobs, total_seconds, &outcomes) {
        eprintln!("cannot write bench report: {e}");
        return ExitCode::FAILURE;
    }
    if events || profile {
        let (trace, stream) = darksil_obs::drain_all();
        if let Err(e) = write_trace_report(&trace) {
            eprintln!("cannot write trace report: {e}");
            return ExitCode::FAILURE;
        }
        if events {
            if let Err(e) = write_event_report(&stream, &selection_label) {
                eprintln!("cannot write event report: {e}");
                return ExitCode::FAILURE;
            }
        }
        if profile {
            if let Err(e) =
                write_bench_baseline(&trace, jobs, &selection_label, total_seconds, &outcomes)
            {
                eprintln!("cannot write profile reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for o in outcomes.iter().filter(|o| !o.succeeded()) {
        let detail = o
            .error
            .as_ref()
            .map_or_else(|| "unknown failure".to_string(), ToString::to_string);
        eprintln!("repro {}: {} — {detail}", o.name, o.status);
    }
    if failed == 0 {
        if degraded > 0 {
            eprintln!(
                "repro: warning — {degraded} of {} artefacts completed in degraded \
                 mode (tagged \"degraded\": true in their JSON)",
                outcomes.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "repro: {failed} of {} artefacts failed ({} succeeded)",
            outcomes.len(),
            outcomes.len() - failed
        );
        ExitCode::FAILURE
    }
}

/// Prints a usage diagnostic and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("repro: {message}\n\n{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

/// The run-configuration fingerprint embedded in the journal: every
/// flag that shapes artefact content. Cache and parallelism settings
/// are deliberately excluded — they change performance, not payloads.
fn run_fingerprint(selection: &str, options: &Options) -> Json {
    let mut fields = vec![
        ("selection".to_string(), Json::Str(selection.to_string())),
        (
            "fidelity".to_string(),
            Json::Str(fidelity_label(options.fidelity).to_string()),
        ),
    ];
    if let Some(inject) = &options.inject {
        fields.push((
            "inject".to_string(),
            Json::Str(format!("{}:{}", inject.artefact, inject.kind.label())),
        ));
    }
    Json::Obj(fields)
}

fn fidelity_label(fidelity: Fidelity) -> &'static str {
    match fidelity {
        Fidelity::Quick => "quick",
        Fidelity::Paper => "paper",
    }
}

/// The scenario inputs an artefact's payload depends on; folded into
/// the cache key so a fidelity change is a natural cache miss.
fn cache_inputs(options: &Options) -> Json {
    Json::Obj(vec![(
        "fidelity".to_string(),
        Json::Str(fidelity_label(options.fidelity).to_string()),
    )])
}

/// Wraps a degraded artefact payload with the declared accuracy knobs,
/// so downstream consumers can quantify (or reject) the loss.
fn degraded_envelope(payload: Json) -> Json {
    Json::Obj(vec![
        ("degraded".to_string(), Json::Bool(true)),
        (
            "knobs".to_string(),
            Json::Obj(vec![(
                "cg_tolerance".to_string(),
                Json::Num(darksil_thermal::DEGRADED_CG_TOLERANCE),
            )]),
        ),
        ("payload".to_string(), payload),
    ])
}

/// A resumed artefact's synthesized outcome: the journal already
/// records its completion, its JSON file is already on disk.
fn resumed_run(name: &'static str, entry: &JournalEntry) -> ArtefactRun {
    ArtefactRun {
        outcome: ArtefactOutcome {
            name,
            status: "ok",
            degraded: entry.state == ArtefactState::Degraded,
            error: None,
            seconds: entry.seconds,
            cache: "resume",
            attempts: entry.attempts.clone(),
        },
        text: String::new(),
    }
}

/// Runs one artefact under full supervision: a cache consult first,
/// then deadline-bounded attempts with retry/backoff and (for solver
/// classes) a final declared-degraded attempt. Errors are classified
/// into the workspace taxonomy and panics are caught, so one broken
/// figure can never take the others down. Every lifecycle transition is
/// journalled; the artefact JSON is written *before* the journal marks
/// the artefact done, so a kill between the two re-runs the artefact
/// rather than losing its file.
fn run_artefact(
    name: &'static str,
    run: RunnerFn,
    options: &Options,
    supervisor: &Supervisor,
    journal: &Journal,
) -> ArtefactRun {
    let _span = darksil_obs::span_lazy(|| format!("artefact.{name}"));
    // --resume: completed artefacts are skipped outright.
    if journal
        .state_of(name)
        .is_some_and(ArtefactState::is_complete)
    {
        if let Some(entry) = journal.entries().into_iter().find(|e| e.name == name) {
            return resumed_run(name, &entry);
        }
    }
    let started = Instant::now();
    journal_note(journal.transition(name, ArtefactState::Running));

    let injected = options
        .inject
        .as_ref()
        .filter(|inject| inject.artefact == name);
    let cache = options.cache.as_ref().filter(|_| injected.is_none());
    let inputs = cache_inputs(options);
    let mut recovery: Option<DarksilError> = None;
    if let Some(cache) = cache {
        let (found, outcome) = cache.lookup(&cache.key(name, &inputs));
        if let Some(payload) = found {
            let mut text = String::new();
            let status = persist_payload(options, name, &payload, &mut text);
            let seconds = started.elapsed().as_secs_f64();
            return match status {
                Ok(()) => {
                    journal_note(journal.record_finished(
                        name,
                        ArtefactState::Done,
                        None,
                        Vec::new(),
                        seconds,
                    ));
                    ArtefactRun {
                        outcome: ArtefactOutcome {
                            name,
                            status: "ok",
                            degraded: false,
                            error: None,
                            seconds,
                            cache: "hit",
                            attempts: Vec::new(),
                        },
                        text,
                    }
                }
                Err(error) => {
                    journal_note(journal.record_finished(
                        name,
                        ArtefactState::Failed,
                        Some(error.to_string()),
                        Vec::new(),
                        seconds,
                    ));
                    ArtefactRun {
                        outcome: ArtefactOutcome {
                            name,
                            status: "error",
                            degraded: false,
                            error: Some(error),
                            seconds,
                            cache: "hit",
                            attempts: Vec::new(),
                        },
                        text,
                    }
                }
            };
        }
        if let CacheOutcome::Recovered(e) = outcome {
            recovery = Some(e);
        }
    }

    let class = artefact_class(name);
    let spec = JobSpec {
        name: name.to_string(),
        class: class.to_string(),
        deadline: Some(
            options
                .deadline_override
                .unwrap_or_else(|| default_deadline(class)),
        ),
        max_retries: options.retries,
        // Only solver-backed classes have a declared relaxation to
        // fall back to; the closed-form `fast` artefacts do not.
        degrade_on_exhaustion: class != "fast",
    };
    let supervised: Supervised<(Json, String)> = supervisor.run(&spec, || {
        let mut text = String::new();
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(inject) = injected {
                apply_injection(inject, name)?;
            }
            run(options, &mut text)
        }));
        match attempt {
            Ok(Ok(payload)) => Ok((payload, text)),
            Ok(Err(e)) => Err(classify(e.as_ref()).context(name)),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(DarksilError::internal(format!("artefact panicked: {message}")).context(name))
            }
        }
    });
    let attempts: Vec<Json> = supervised.attempts.iter().map(ToJson::to_json).collect();
    let seconds = started.elapsed().as_secs_f64();
    let miss_label = if cache.is_some() { "miss" } else { "off" };

    match supervised.result {
        Ok((payload, mut text)) => {
            let payload = if supervised.degraded {
                degraded_envelope(payload)
            } else {
                payload
            };
            // Degraded payloads are never cached: a later run at full
            // health must recompute, not replay the relaxed answer.
            if !supervised.degraded {
                if let Some(cache) = cache {
                    if let Err(e) = cache.store(&cache.key(name, &inputs), &payload) {
                        recovery = Some(e);
                    }
                }
            }
            let label = match &recovery {
                Some(e) => {
                    eprintln!("repro {name}: cache diagnostic — {e}");
                    "recovered"
                }
                None => miss_label,
            };
            match persist_payload(options, name, &payload, &mut text) {
                Ok(()) => {
                    let state = if supervised.degraded {
                        ArtefactState::Degraded
                    } else {
                        ArtefactState::Done
                    };
                    journal_note(journal.record_finished(
                        name,
                        state,
                        None,
                        attempts.clone(),
                        seconds,
                    ));
                    ArtefactRun {
                        outcome: ArtefactOutcome {
                            name,
                            status: "ok",
                            degraded: supervised.degraded,
                            error: None,
                            seconds,
                            cache: label,
                            attempts,
                        },
                        text,
                    }
                }
                Err(error) => {
                    journal_note(journal.record_finished(
                        name,
                        ArtefactState::Failed,
                        Some(error.to_string()),
                        attempts.clone(),
                        seconds,
                    ));
                    ArtefactRun {
                        outcome: ArtefactOutcome {
                            name,
                            status: "error",
                            degraded: false,
                            error: Some(error),
                            seconds,
                            cache: label,
                            attempts,
                        },
                        text,
                    }
                }
            }
        }
        Err(error) => {
            let status = if error.message().starts_with("artefact panicked") {
                "panic"
            } else {
                "error"
            };
            journal_note(journal.record_finished(
                name,
                ArtefactState::Failed,
                Some(error.to_string()),
                attempts.clone(),
                seconds,
            ));
            ArtefactRun {
                outcome: ArtefactOutcome {
                    name,
                    status,
                    degraded: false,
                    error: Some(error),
                    seconds,
                    cache: miss_label,
                    attempts,
                },
                text: String::new(),
            }
        }
    }
}

/// Journal writes must never fail an artefact; surface the diagnostic
/// and keep going (the next transition retries the write).
fn journal_note(result: Result<(), DarksilError>) {
    if let Err(e) = result {
        eprintln!("repro: journal write failed — {e}");
    }
}

/// Writes the artefact JSON (when `--json` is active) and buffers the
/// `[wrote …]` line. Called *before* the journal marks the artefact
/// done, so a crash between the two re-runs the artefact.
fn persist_payload(
    options: &Options,
    name: &str,
    payload: &Json,
    text: &mut String,
) -> Result<(), DarksilError> {
    let _span = darksil_obs::span("repro.persist");
    let Some(dir) = &options.json_dir else {
        return Ok(());
    };
    match write_artefact_json(dir, name, payload) {
        Ok(path) => {
            let _ = writeln!(text, "[wrote {}]", path.display());
            Ok(())
        }
        Err(e) => Err(DarksilError::io(format!("cannot write artefact JSON: {e}")).context(name)),
    }
}

/// Maps any artefact error onto the workspace taxonomy, preserving the
/// typed class when the concrete error type is known.
fn classify(e: &(dyn std::error::Error + 'static)) -> DarksilError {
    if let Some(d) = e.downcast_ref::<DarksilError>() {
        return d.clone();
    }
    if let Some(d) = e.downcast_ref::<darksil_core::EstimateError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_mapping::MappingError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_thermal::ThermalError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_numerics::NumericsError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_power::PowerError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_boost::BoostError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_workload::WorkloadError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<std::io::Error>() {
        return DarksilError::io(d.to_string());
    }
    DarksilError::internal(e.to_string())
}

/// Applies the requested `--inject` fault at the top of an attempt.
/// `nan` feeds a NaN power sample into the real thermal solver; the
/// other kinds route through [`FaultPlan::inject_job_faults`], which
/// observes the supervision context (deadline token, attempt number,
/// degraded flag).
fn apply_injection(inject: &Inject, what: &str) -> Result<(), Box<dyn std::error::Error>> {
    let fault = match inject.kind {
        InjectKind::Nan => return injected_failure(),
        InjectKind::Hang => Fault::Hang,
        InjectKind::Slow => Fault::SlowJob { millis: 1500 },
        InjectKind::Transient => Fault::TransientThenSucceed { failures: 1 },
    };
    FaultPlan::new(0).with(fault).inject_job_faults(what)?;
    Ok(())
}

/// Test hook behind `--inject NAME` / `--inject NAME:nan`: feeds a NaN
/// power sample into the real thermal solver, exercising the library's
/// non-finite input guard the same way a broken power model would.
fn injected_failure() -> Result<(), Box<dyn std::error::Error>> {
    let platform = darksil_mapping::Platform::for_node(darksil_power::TechnologyNode::Nm16)?;
    let mut power = vec![darksil_units::Watts::new(1.0); platform.core_count()];
    power[0] = darksil_units::Watts::new(f64::NAN);
    platform.thermal().steady_state(&power)?;
    Ok(())
}

/// Writes one artefact's machine-readable series under `--json DIR`,
/// atomically (temp file + rename) so a kill mid-write can never leave
/// a truncated artefact behind. Returns the final path.
fn write_artefact_json(dir: &Path, name: &str, payload: &Json) -> Result<PathBuf, std::io::Error> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let tmp = dir.join(format!("{name}.json.tmp"));
    fs::write(&tmp, darksil_json::to_string_pretty(payload))?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Writes the machine-readable per-artefact report. With `--json DIR`
/// it lands in `DIR/error_report.json`; otherwise it goes to stderr so
/// scripted callers always have it.
fn write_error_report(
    options: &Options,
    outcomes: &[ArtefactOutcome],
    failed: usize,
    degraded: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = Json::Obj(vec![
        ("artefacts".to_string(), Json::Num(outcomes.len() as f64)),
        ("failed".to_string(), Json::Num(failed as f64)),
        ("degraded".to_string(), Json::Num(degraded as f64)),
        (
            "outcomes".to_string(),
            Json::Arr(outcomes.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    let text = darksil_json::to_string_pretty(&report);
    match &options.json_dir {
        Some(dir) => {
            fs::create_dir_all(dir)?;
            let path = dir.join("error_report.json");
            fs::write(&path, text)?;
            println!("[wrote {}]", path.display());
        }
        None if failed > 0 => eprintln!("{text}"),
        None => {}
    }
    Ok(())
}

/// Writes per-artefact wall-clock timings and cache outcomes to
/// `results/bench_repro.json` on every run.
fn write_bench_report(
    jobs: usize,
    total_seconds: f64,
    outcomes: &[ArtefactOutcome],
) -> Result<(), Box<dyn std::error::Error>> {
    let artefacts = outcomes
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("artefact".to_string(), Json::Str(o.name.to_string())),
                ("status".to_string(), Json::Str(o.status.to_string())),
                ("seconds".to_string(), Json::Num(o.seconds)),
                ("cache".to_string(), Json::Str(o.cache.to_string())),
            ])
        })
        .collect();
    let report = Json::Obj(vec![
        ("jobs".to_string(), Json::Num(jobs as f64)),
        ("total_seconds".to_string(), Json::Num(total_seconds)),
        ("artefacts".to_string(), Json::Arr(artefacts)),
    ]);
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join("bench_repro.json");
    fs::write(&path, darksil_json::to_string_pretty(&report))?;
    println!("[wrote {}]", path.display());
    Ok(())
}

/// How much headroom `--profile` bakes into `BENCH_repro.json` bounds:
/// a phase may take this many times its measured duration before the
/// CI comparison fails. Generous on purpose — CI machines are slower
/// and noisier than the machine that recorded the baseline.
const PROFILE_TOLERANCE_FACTOR: f64 = 25.0;

/// Writes the raw span tree to `results/trace_repro.json` (shared by
/// `--profile` and `--events`).
fn write_trace_report(trace: &darksil_obs::Trace) -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let trace_path = dir.join("trace_repro.json");
    fs::write(&trace_path, darksil_json::to_string_pretty(trace))?;
    println!("[wrote {}]", trace_path.display());
    Ok(())
}

/// Writes the `--events` output: the drained domain event stream as
/// JSONL to `results/events_<selection>.jsonl`. The stream carries no
/// timing or worker-count data, so the file is byte-identical across
/// `--jobs` settings for the same selection (cache state changes which
/// artefacts run, so comparisons should use the same cache mode).
fn write_event_report(
    stream: &darksil_obs::EventStream,
    selection: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("events_{selection}.jsonl"));
    fs::write(&path, stream.to_jsonl())?;
    println!(
        "[wrote {} ({} events)]",
        path.display(),
        stream.events.len()
    );
    Ok(())
}

/// Writes the `--profile` baseline: the aggregated report (per
/// artefact, per phase, with regression bounds) to `BENCH_repro.json`
/// in the working directory.
fn write_bench_baseline(
    trace: &darksil_obs::Trace,
    jobs: usize,
    selection: &str,
    total_seconds: f64,
    outcomes: &[ArtefactOutcome],
) -> Result<(), Box<dyn std::error::Error>> {
    let artefacts = outcomes
        .iter()
        .map(|o| darksil_obs::ArtefactTiming {
            artefact: o.name.to_string(),
            seconds: o.seconds,
            cache: o.cache.to_string(),
        })
        .collect();
    let report = darksil_obs::BenchBaseline::from_trace(
        trace,
        jobs,
        selection,
        PROFILE_TOLERANCE_FACTOR,
        total_seconds,
        artefacts,
    );
    let path = Path::new("BENCH_repro.json");
    fs::write(path, darksil_json::to_string_pretty(&report))?;
    println!("[wrote {}]", path.display());
    Ok(())
}

fn table1(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::table1();
    writeln!(out, "Technology  Vdd   Freq  Cap   Area  Core-area[mm²]")?;
    for r in &rows {
        writeln!(
            out,
            "{:>6} nm  {:>5.2} {:>5.2} {:>5.2} {:>5.2}  {:>6.1}",
            r.node_nm, r.vdd, r.frequency, r.capacitance, r.area, r.core_area_mm2
        )?;
    }
    Ok(rows.to_json())
}

fn fig2(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let pts = darksil_bench::fig2(27);
    writeln!(out, "Voltage[V]  Frequency[GHz]  Region")?;
    for p in &pts {
        writeln!(
            out,
            "{:>9.3}  {:>13.3}  {}",
            p.voltage.value(),
            p.frequency.as_ghz(),
            p.region
        )?;
    }
    Ok(pts.to_json())
}

fn fig3(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let f = darksil_bench::fig3()?;
    writeln!(out, "Frequency[GHz]  Measured[W]  Model[W]")?;
    for p in &f.points {
        writeln!(
            out,
            "{:>13.2}  {:>10.2}  {:>8.2}",
            p.frequency.as_ghz(),
            p.measured.value(),
            p.fitted.value()
        )?;
    }
    writeln!(out, "fit RMSE: {:.3} W", f.rmse.value())?;
    Ok(f.to_json())
}

fn fig4(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let series = darksil_bench::fig4();
    write!(out, "Threads ")?;
    for s in &series {
        write!(out, "{:>12}", s.app.name())?;
    }
    writeln!(out)?;
    for i in 0..series[0].points.len() {
        write!(out, "{:>7} ", series[0].points[i].0)?;
        for s in &series {
            write!(out, "{:>12.2}", s.points[i].1)?;
        }
        writeln!(out)?;
    }
    Ok(series.to_json())
}

fn fig5(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig5()?;
    for panel in &panels {
        writeln!(out, "-- TDP = {} --", panel.tdp)?;
        writeln!(
            out,
            "app           2.8GHz  3.0GHz  3.2GHz  3.4GHz  3.6GHz   (dark %)"
        )?;
        for app in darksil_workload::ParsecApp::ALL {
            write!(out, "{:<13}", app.name())?;
            for cell in panel.cells.iter().filter(|c| c.app == app) {
                write!(out, " {:>6.0}%", cell.dark_percent)?;
            }
            writeln!(out)?;
        }
        writeln!(out, "peak temperatures at 3.6 GHz:")?;
        for (app, t) in &panel.peak_temperatures {
            writeln!(out, "  {:<13} {:>6.1} °C", app.name(), t.value())?;
        }
        writeln!(out, "any thermal violation: {}", panel.any_violation)?;
    }
    Ok(panels.to_json())
}

fn fig6(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig6()?;
    for panel in &panels {
        writeln!(
            out,
            "-- {} @ {:.1} GHz --",
            panel.node,
            panel.frequency.as_ghz()
        )?;
        writeln!(out, "app           dark(TDP)  dark(thermal)")?;
        for row in &panel.rows {
            writeln!(
                out,
                "{:<13} {:>8.0}%  {:>12.0}%",
                row.app.name(),
                row.dark_tdp_percent,
                row.dark_thermal_percent
            )?;
        }
        writeln!(
            out,
            "average dark-silicon reduction: {:.0}%",
            panel.average_reduction_percent
        )?;
    }
    Ok(panels.to_json())
}

fn fig7(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig7()?;
    for panel in &panels {
        writeln!(out, "-- {} --", panel.node)?;
        writeln!(
            out,
            "app           GIPS(nom)  GIPS(dvfs)  act%(nom)  act%(dvfs)  chosen"
        )?;
        for r in &panel.rows {
            writeln!(
                out,
                "{:<13} {:>9.0}  {:>10.0}  {:>8.0}%  {:>9.0}%  {}t @ {:.1} GHz",
                r.app.name(),
                r.nominal_gips.value(),
                r.tuned_gips.value(),
                r.nominal_active_percent,
                r.tuned_active_percent,
                r.chosen_threads,
                r.chosen_frequency.as_ghz()
            )?;
        }
        writeln!(
            out,
            "max performance gain: {:.0}%",
            (panel.max_gain - 1.0) * 100.0
        )?;
    }
    Ok(panels.to_json())
}

fn fig8(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let patterns = darksil_bench::fig8()?;
    for p in &patterns {
        writeln!(
            out,
            "-- {}: {} cores @ 3.6 GHz, Ptotal = {:.0} W, peak = {:.1} °C, violates T_DTM: {} --",
            p.name,
            p.active_cores,
            p.total_power.value(),
            p.peak_temperature.value(),
            p.violates
        )?;
        writeln!(out, "{}", p.thermal_art)?;
    }
    Ok(patterns.to_json())
}

fn fig9(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig9()?;
    writeln!(
        out,
        "mix             TDPmap[GIPS]  DsRem[GIPS]  act%(TDP)  act%(Ds)  speedup"
    )?;
    for r in &rows {
        writeln!(
            out,
            "{:<15} {:>12.0}  {:>11.0}  {:>8.0}%  {:>7.0}%  {:>6.2}x",
            r.mix,
            r.tdpmap_gips.value(),
            r.dsrem_gips.value(),
            r.tdpmap_active_percent,
            r.dsrem_active_percent,
            r.speedup
        )?;
    }
    Ok(rows.to_json())
}

fn fig10(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let bars = darksil_bench::fig10()?;
    writeln!(out, "node    dark%   TSP/core[W]  total[GIPS]")?;
    for b in &bars {
        writeln!(
            out,
            "{:<7} {:>4.0}%  {:>10.2}  {:>11.0}",
            b.node.to_string(),
            100.0 * b.dark_fraction,
            b.tsp_per_core.value(),
            b.total_gips.value()
        )?;
    }
    Ok(bars.to_json())
}

fn fig11(options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let f = darksil_bench::fig11(options.fidelity)?;
    writeln!(
        out,
        "boosting: avg {:.1} GIPS, settled temperature band {:.1}–{:.1} °C",
        f.boosting_avg_gips.value(),
        f.boosting_temp_band.0.value(),
        f.boosting_temp_band.1.value()
    )?;
    writeln!(
        out,
        "constant: avg {:.1} GIPS, peak {:.1} °C",
        f.constant_avg_gips.value(),
        f.constant_peak_temp.value()
    )?;
    writeln!(
        out,
        "boosting gain: {:.1}%",
        100.0 * (f.boosting_avg_gips / f.constant_avg_gips - 1.0)
    )?;
    Ok(f.to_json())
}

fn fig12(options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let points = darksil_bench::fig12(options.fidelity)?;
    writeln!(out, "cores  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]")?;
    for p in &points {
        writeln!(
            out,
            "{:>5}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            p.active_cores,
            p.boosting_gips.value(),
            p.constant_gips.value(),
            p.boosting_power.value(),
            p.constant_power.value()
        )?;
    }
    Ok(points.to_json())
}

fn fig13(options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig13(options.fidelity)?;
    writeln!(
        out,
        "app           inst  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]"
    )?;
    for r in &rows {
        writeln!(
            out,
            "{:<13} {:>4}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            r.app.name(),
            r.instances,
            r.boosting_gips.value(),
            r.constant_gips.value(),
            r.boosting_peak_power.value(),
            r.constant_peak_power.value()
        )?;
    }
    Ok(rows.to_json())
}

fn dtm(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::dtm_response()?;
    writeln!(
        out,
        "TDP[W]  admitted-dark  sustained-dark  powered-down  DTM fired"
    )?;
    for r in &rows {
        writeln!(
            out,
            "{:>6.0}  {:>12.0}%  {:>13.0}%  {:>12}  {}",
            r.tdp.value(),
            r.admitted_dark_percent,
            r.sustained_dark_percent,
            r.instances_powered_down,
            r.triggered
        )?;
    }
    writeln!(
        out,
        "Optimistic TDPs hide dark silicon behind the DTM reaction (§3.1)."
    )?;
    Ok(rows.to_json())
}

fn aging(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let cmp = darksil_bench::aging_rotation()?;
    writeln!(
        out,
        "{} epochs × {} h, 56/100 cores active:",
        cmp.epochs, cmp.epoch_hours
    )?;
    writeln!(
        out,
        "  static placement: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.static_max_wear, cmp.static_imbalance
    )?;
    writeln!(
        out,
        "  rotating dark set: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.rotating_max_wear, cmp.rotating_imbalance
    )?;
    writeln!(out, "  implied lifetime gain: {:.2}x", cmp.lifetime_gain())?;
    Ok(cmp.to_json())
}

fn variability(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::variability_savings(5)?;
    writeln!(out, "chip  best-pick[W]  leaky-pick[W]  saving")?;
    for r in &rows {
        writeln!(
            out,
            "{:>4}  {:>11.1}  {:>12.1}  {:>5.1}%",
            r.seed,
            r.best_pick_power.value(),
            r.worst_pick_power.value(),
            r.saving_percent
        )?;
    }
    Ok(rows.to_json())
}

fn cooling(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let (packages, sweep) = darksil_bench::cooling_sensitivity()?;
    writeln!(out, "package            dark%   active  peak[°C]")?;
    for p in &packages {
        writeln!(
            out,
            "{:<17} {:>5.0}%  {:>6}  {:>7.1}",
            p.package,
            100.0 * p.dark_fraction,
            p.active_cores,
            p.peak_temperature.value()
        )?;
    }
    writeln!(out, "\nR_conv[K/W]  dark%   active  power[W]")?;
    for pt in &sweep {
        writeln!(
            out,
            "{:>10.2}  {:>5.0}%  {:>6}  {:>7.0}",
            pt.convection_resistance,
            100.0 * pt.dark_fraction,
            pt.active_cores,
            pt.total_power.value()
        )?;
    }
    writeln!(
        out,
        "\nDark silicon is a property of chip + cooling, not of the chip alone."
    )?;
    Ok((packages, sweep).to_json())
}

fn pareto(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let (points, frontier) = darksil_bench::pareto_x264()?;
    writeln!(
        out,
        "{} feasible of {} configurations; Pareto frontier:",
        points.iter().filter(|p| p.feasible).count(),
        points.len()
    )?;
    writeln!(
        out,
        "threads  inst  f[GHz]  GIPS   power[W]  dark%  peak[°C]"
    )?;
    for p in &frontier {
        writeln!(
            out,
            "{:>7}  {:>4}  {:>5.1}  {:>5.0}  {:>8.0}  {:>4.0}%  {:>7.1}",
            p.threads,
            p.instances,
            p.frequency.as_ghz(),
            p.total_gips.value(),
            p.total_power.value(),
            100.0 * p.dark_fraction,
            p.peak_temperature.value()
        )?;
    }
    writeln!(
        out,
        "\nThe §3.3 trade-off made explicit: both axes (threads, V/f) appear on the frontier."
    )?;
    Ok(frontier.to_json())
}

fn fig14(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig14()?;
    writeln!(out, "app           NTC[kJ]  STC1[kJ]  STC2[kJ]  NTC wins")?;
    for r in &rows {
        writeln!(
            out,
            "{:<13} {:>7.2}  {:>8.2}  {:>8.2}  {}",
            r.app.name(),
            r.ntc.energy.value() / 1e3,
            r.stc_one_thread.energy.value() / 1e3,
            r.stc_two_threads.energy.value() / 1e3,
            r.ntc_wins()
        )?;
    }
    let (ntc, stc1, stc2) = fig14_total_energy(&rows);
    writeln!(
        out,
        "totals: NTC {:.1} kJ vs STC1 {:.1} kJ vs STC2 {:.1} kJ",
        ntc.value() / 1e3,
        stc1.value() / 1e3,
        stc2.value() / 1e3
    )?;
    Ok(rows.to_json())
}
