//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <artefact> [--json DIR] [--paper] [--inject ARTEFACT]
//!                  [--jobs N] [--no-cache] [--cache-dir DIR]
//!
//! artefacts: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!            fig11 fig12 fig13 fig14 dtm aging variability cooling
//!            pareto all
//! --json DIR        additionally write machine-readable series to DIR
//! --paper           run transients at the paper's full horizons (slow)
//! --inject ARTEFACT inject a NaN-power fault into that artefact (test
//!                   hook for the partial-failure machinery)
//! --jobs N          worker threads for the artefact fan-out (default:
//!                   DARKSIL_JOBS, else the available parallelism);
//!                   `--jobs 1` runs everything serially
//! --no-cache        recompute every artefact, bypassing the result cache
//! --cache-dir DIR   result-cache location (default `results/.cache`)
//! ```
//!
//! Every artefact runs in isolation as a `darksil-engine` job: an error
//! (or even a panic) in one figure does not stop the others, the
//! per-artefact outcomes are collected into `error_report.json` (under
//! `--json DIR`, otherwise printed to stderr), and the exit code
//! reflects the aggregate. Results come back in artefact order, so the
//! emitted files and console report are identical at any `--jobs`
//! setting. Wall-clock timings land in `results/bench_repro.json`.
//!
//! Artefact payloads are memoised in a content-addressed cache keyed by
//! the scenario inputs (fidelity) plus a code-version salt; a warm run
//! replays the stored JSON instead of recomputing. Corrupt or stale
//! entries fall back to recomputation with a typed diagnostic.

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use darksil_bench::{fig14_total_energy, Fidelity};
use darksil_engine::{CacheOutcome, Engine, ResultCache, DEFAULT_CACHE_DIR};
use darksil_json::{Json, ToJson};
use darksil_robust::DarksilError;

/// Bump whenever an artefact's generating code changes meaning: the
/// salt is folded into every cache key, so stale entries from older
/// binaries become unreachable instead of being replayed.
const CACHE_SALT: &str = "repro-v1";

struct Options {
    json_dir: Option<PathBuf>,
    fidelity: Fidelity,
    inject: Option<String>,
    cache: Option<ResultCache>,
}

/// An artefact builder: buffers its human-readable report into `out`
/// and returns the machine-readable payload.
type RunnerFn = fn(&Options, &mut String) -> Result<Json, Box<dyn std::error::Error>>;

/// One named artefact runner for the dispatch tables.
type Runner = (&'static str, RunnerFn);

const RUNNERS: [Runner; 19] = [
    ("table1", table1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("fig8", fig8),
    ("fig9", fig9),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("dtm", dtm),
    ("aging", aging),
    ("variability", variability),
    ("cooling", cooling),
    ("pareto", pareto),
];

/// The result of one isolated artefact run.
struct ArtefactOutcome {
    name: &'static str,
    /// `ok`, `error` or `panic`.
    status: &'static str,
    /// The classified error for non-`ok` outcomes.
    error: Option<DarksilError>,
    /// Wall-clock seconds spent.
    seconds: f64,
    /// `hit`, `miss`, `recovered` or `off`.
    cache: &'static str,
}

impl ArtefactOutcome {
    fn succeeded(&self) -> bool {
        self.status == "ok"
    }
}

impl ToJson for ArtefactOutcome {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("artefact".to_string(), Json::Str(self.name.to_string())),
            ("status".to_string(), Json::Str(self.status.to_string())),
            ("seconds".to_string(), Json::Num(self.seconds)),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), e.to_json()));
        }
        Json::Obj(fields)
    }
}

/// Everything a finished artefact job hands back to the reporter.
struct ArtefactRun {
    outcome: ArtefactOutcome,
    /// The machine-readable payload, present for `ok` outcomes.
    payload: Option<Json>,
    /// The buffered human-readable report (empty on cache hits).
    text: String,
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let Some(artefact) = args.next() else {
        eprintln!(
            "usage: repro <table1|fig2..fig14|dtm|aging|variability|cooling|pareto|all> \
             [--json DIR] [--paper] [--inject ARTEFACT] [--jobs N] [--no-cache] [--cache-dir DIR]"
        );
        return ExitCode::FAILURE;
    };
    let mut json_dir = None;
    let mut fidelity = Fidelity::Quick;
    let mut inject = None;
    let mut jobs_flag: Option<usize> = None;
    let mut use_cache = true;
    let mut cache_dir = PathBuf::from(DEFAULT_CACHE_DIR);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--paper" => fidelity = Fidelity::Paper,
            "--inject" => match args.next() {
                Some(name) => inject = Some(name),
                None => {
                    eprintln!("--inject requires an artefact name");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs_flag = Some(n),
                _ => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--no-cache" => use_cache = false,
            "--cache-dir" => match args.next() {
                Some(dir) => cache_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--cache-dir requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let jobs = jobs_flag
        .unwrap_or_else(darksil_engine::default_jobs)
        .max(1);
    // Nested engine fan-outs (inside the figures) follow the same
    // setting as the artefact-level pool.
    darksil_engine::set_default_jobs(jobs);
    let options = Options {
        json_dir,
        fidelity,
        inject,
        cache: use_cache.then(|| ResultCache::open(cache_dir, CACHE_SALT)),
    };

    let selected: Vec<Runner> = if artefact == "all" {
        RUNNERS.to_vec()
    } else {
        match RUNNERS.iter().find(|(name, _)| *name == artefact) {
            Some(runner) => vec![*runner],
            None => {
                eprintln!("unknown artefact {artefact}");
                return ExitCode::FAILURE;
            }
        }
    };
    let names: Vec<&'static str> = selected.iter().map(|(name, _)| *name).collect();

    let started = Instant::now();
    let runs = Engine::new(jobs).par_map(selected, |(name, run)| {
        Ok(run_artefact(name, run, &options))
    });
    let total_seconds = started.elapsed().as_secs_f64();

    let show_headers = artefact == "all";
    let mut outcomes: Vec<ArtefactOutcome> = Vec::with_capacity(runs.len());
    for (name, run) in names.into_iter().zip(runs) {
        // The engine's own panic isolation is a backstop; `run_artefact`
        // already catches panics, so this arm is not normally reachable.
        let art = run.unwrap_or_else(|e| ArtefactRun {
            outcome: ArtefactOutcome {
                name,
                status: "panic",
                error: Some(e.context(name)),
                seconds: 0.0,
                cache: "off",
            },
            payload: None,
            text: String::new(),
        });
        if show_headers {
            println!("\n================ {name} ================");
        }
        print!("{}", art.text);
        if art.outcome.cache == "hit" {
            println!("[{name}: cache hit]");
        }
        let mut outcome = art.outcome;
        if let (Some(dir), Some(payload)) = (&options.json_dir, &art.payload) {
            if let Err(e) = write_artefact_json(dir, name, payload) {
                eprintln!("repro {name}: cannot write artefact JSON: {e}");
                if outcome.succeeded() {
                    outcome.status = "error";
                    outcome.error = Some(DarksilError::io(e.to_string()).context(name));
                }
            }
        }
        outcomes.push(outcome);
    }

    let failed = outcomes.iter().filter(|o| !o.succeeded()).count();
    if let Err(e) = write_error_report(&options, &outcomes, failed) {
        eprintln!("cannot write error report: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_bench_report(jobs, total_seconds, &outcomes) {
        eprintln!("cannot write bench report: {e}");
        return ExitCode::FAILURE;
    }
    for o in outcomes.iter().filter(|o| !o.succeeded()) {
        let detail = o
            .error
            .as_ref()
            .map_or_else(|| "unknown failure".to_string(), ToString::to_string);
        eprintln!("repro {}: {} — {detail}", o.name, o.status);
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "repro: {failed} of {} artefacts failed ({} succeeded)",
            outcomes.len(),
            outcomes.len() - failed
        );
        ExitCode::FAILURE
    }
}

/// The scenario inputs an artefact's payload depends on; folded into
/// the cache key so a fidelity change is a natural cache miss.
fn cache_inputs(options: &Options) -> Json {
    let fidelity = match options.fidelity {
        Fidelity::Quick => "quick",
        Fidelity::Paper => "paper",
    };
    Json::Obj(vec![(
        "fidelity".to_string(),
        Json::Str(fidelity.to_string()),
    )])
}

/// Runs one artefact with full isolation: errors are classified into
/// the workspace taxonomy and panics are caught, so one broken figure
/// can never take the others down. Consults the result cache first;
/// fault injection disables caching for the targeted artefact so the
/// failure machinery is always exercised live.
fn run_artefact(name: &'static str, run: RunnerFn, options: &Options) -> ArtefactRun {
    let started = Instant::now();
    let cache = options
        .cache
        .as_ref()
        .filter(|_| options.inject.as_deref() != Some(name));
    let inputs = cache_inputs(options);
    let mut recovery: Option<DarksilError> = None;
    if let Some(cache) = cache {
        let (found, outcome) = cache.lookup(&cache.key(name, &inputs));
        if let Some(payload) = found {
            return ArtefactRun {
                outcome: ArtefactOutcome {
                    name,
                    status: "ok",
                    error: None,
                    seconds: started.elapsed().as_secs_f64(),
                    cache: "hit",
                },
                payload: Some(payload),
                text: String::new(),
            };
        }
        if let CacheOutcome::Recovered(e) = outcome {
            recovery = Some(e);
        }
    }
    let mut text = String::new();
    let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
        if options.inject.as_deref() == Some(name) {
            injected_failure()?;
        }
        run(options, &mut text)
    }));
    let seconds = started.elapsed().as_secs_f64();
    let miss_label = if cache.is_some() { "miss" } else { "off" };
    match attempt {
        Ok(Ok(payload)) => {
            if let Some(cache) = cache {
                if let Err(e) = cache.store(&cache.key(name, &inputs), &payload) {
                    recovery = Some(e);
                }
            }
            let label = match &recovery {
                Some(e) => {
                    eprintln!("repro {name}: cache diagnostic — {e}");
                    "recovered"
                }
                None => miss_label,
            };
            ArtefactRun {
                outcome: ArtefactOutcome {
                    name,
                    status: "ok",
                    error: None,
                    seconds,
                    cache: label,
                },
                payload: Some(payload),
                text,
            }
        }
        Ok(Err(e)) => ArtefactRun {
            outcome: ArtefactOutcome {
                name,
                status: "error",
                error: Some(classify(e.as_ref()).context(name)),
                seconds,
                cache: miss_label,
            },
            payload: None,
            text,
        },
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            ArtefactRun {
                outcome: ArtefactOutcome {
                    name,
                    status: "panic",
                    error: Some(DarksilError::internal(message).context(name)),
                    seconds,
                    cache: miss_label,
                },
                payload: None,
                text,
            }
        }
    }
}

/// Maps any artefact error onto the workspace taxonomy, preserving the
/// typed class when the concrete error type is known.
fn classify(e: &(dyn std::error::Error + 'static)) -> DarksilError {
    if let Some(d) = e.downcast_ref::<DarksilError>() {
        return d.clone();
    }
    if let Some(d) = e.downcast_ref::<darksil_core::EstimateError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_mapping::MappingError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_thermal::ThermalError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_numerics::NumericsError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_power::PowerError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_boost::BoostError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_workload::WorkloadError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<std::io::Error>() {
        return DarksilError::io(d.to_string());
    }
    DarksilError::internal(e.to_string())
}

/// Test hook behind `--inject`: feeds a NaN power sample into the real
/// thermal solver, exercising the library's non-finite input guard the
/// same way a broken power model would.
fn injected_failure() -> Result<(), Box<dyn std::error::Error>> {
    let platform = darksil_mapping::Platform::for_node(darksil_power::TechnologyNode::Nm16)?;
    let mut power = vec![darksil_units::Watts::new(1.0); platform.core_count()];
    power[0] = darksil_units::Watts::new(f64::NAN);
    platform.thermal().steady_state(&power)?;
    Ok(())
}

/// Writes one artefact's machine-readable series under `--json DIR`.
fn write_artefact_json(dir: &Path, name: &str, payload: &Json) -> Result<(), std::io::Error> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, darksil_json::to_string_pretty(payload))?;
    println!("[wrote {}]", path.display());
    Ok(())
}

/// Writes the machine-readable per-artefact report. With `--json DIR`
/// it lands in `DIR/error_report.json`; otherwise it goes to stderr so
/// scripted callers always have it.
fn write_error_report(
    options: &Options,
    outcomes: &[ArtefactOutcome],
    failed: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = Json::Obj(vec![
        ("artefacts".to_string(), Json::Num(outcomes.len() as f64)),
        ("failed".to_string(), Json::Num(failed as f64)),
        (
            "outcomes".to_string(),
            Json::Arr(outcomes.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    let text = darksil_json::to_string_pretty(&report);
    match &options.json_dir {
        Some(dir) => {
            fs::create_dir_all(dir)?;
            let path = dir.join("error_report.json");
            fs::write(&path, text)?;
            println!("[wrote {}]", path.display());
        }
        None if failed > 0 => eprintln!("{text}"),
        None => {}
    }
    Ok(())
}

/// Writes per-artefact wall-clock timings and cache outcomes to
/// `results/bench_repro.json` on every run.
fn write_bench_report(
    jobs: usize,
    total_seconds: f64,
    outcomes: &[ArtefactOutcome],
) -> Result<(), Box<dyn std::error::Error>> {
    let artefacts = outcomes
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("artefact".to_string(), Json::Str(o.name.to_string())),
                ("status".to_string(), Json::Str(o.status.to_string())),
                ("seconds".to_string(), Json::Num(o.seconds)),
                ("cache".to_string(), Json::Str(o.cache.to_string())),
            ])
        })
        .collect();
    let report = Json::Obj(vec![
        ("jobs".to_string(), Json::Num(jobs as f64)),
        ("total_seconds".to_string(), Json::Num(total_seconds)),
        ("artefacts".to_string(), Json::Arr(artefacts)),
    ]);
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join("bench_repro.json");
    fs::write(&path, darksil_json::to_string_pretty(&report))?;
    println!("[wrote {}]", path.display());
    Ok(())
}

fn table1(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::table1();
    writeln!(out, "Technology  Vdd   Freq  Cap   Area  Core-area[mm²]")?;
    for r in &rows {
        writeln!(
            out,
            "{:>6} nm  {:>5.2} {:>5.2} {:>5.2} {:>5.2}  {:>6.1}",
            r.node_nm, r.vdd, r.frequency, r.capacitance, r.area, r.core_area_mm2
        )?;
    }
    Ok(rows.to_json())
}

fn fig2(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let pts = darksil_bench::fig2(27);
    writeln!(out, "Voltage[V]  Frequency[GHz]  Region")?;
    for p in &pts {
        writeln!(
            out,
            "{:>9.3}  {:>13.3}  {}",
            p.voltage.value(),
            p.frequency.as_ghz(),
            p.region
        )?;
    }
    Ok(pts.to_json())
}

fn fig3(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let f = darksil_bench::fig3()?;
    writeln!(out, "Frequency[GHz]  Measured[W]  Model[W]")?;
    for p in &f.points {
        writeln!(
            out,
            "{:>13.2}  {:>10.2}  {:>8.2}",
            p.frequency.as_ghz(),
            p.measured.value(),
            p.fitted.value()
        )?;
    }
    writeln!(out, "fit RMSE: {:.3} W", f.rmse.value())?;
    Ok(f.to_json())
}

fn fig4(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let series = darksil_bench::fig4();
    write!(out, "Threads ")?;
    for s in &series {
        write!(out, "{:>12}", s.app.name())?;
    }
    writeln!(out)?;
    for i in 0..series[0].points.len() {
        write!(out, "{:>7} ", series[0].points[i].0)?;
        for s in &series {
            write!(out, "{:>12.2}", s.points[i].1)?;
        }
        writeln!(out)?;
    }
    Ok(series.to_json())
}

fn fig5(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig5()?;
    for panel in &panels {
        writeln!(out, "-- TDP = {} --", panel.tdp)?;
        writeln!(
            out,
            "app           2.8GHz  3.0GHz  3.2GHz  3.4GHz  3.6GHz   (dark %)"
        )?;
        for app in darksil_workload::ParsecApp::ALL {
            write!(out, "{:<13}", app.name())?;
            for cell in panel.cells.iter().filter(|c| c.app == app) {
                write!(out, " {:>6.0}%", cell.dark_percent)?;
            }
            writeln!(out)?;
        }
        writeln!(out, "peak temperatures at 3.6 GHz:")?;
        for (app, t) in &panel.peak_temperatures {
            writeln!(out, "  {:<13} {:>6.1} °C", app.name(), t.value())?;
        }
        writeln!(out, "any thermal violation: {}", panel.any_violation)?;
    }
    Ok(panels.to_json())
}

fn fig6(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig6()?;
    for panel in &panels {
        writeln!(
            out,
            "-- {} @ {:.1} GHz --",
            panel.node,
            panel.frequency.as_ghz()
        )?;
        writeln!(out, "app           dark(TDP)  dark(thermal)")?;
        for row in &panel.rows {
            writeln!(
                out,
                "{:<13} {:>8.0}%  {:>12.0}%",
                row.app.name(),
                row.dark_tdp_percent,
                row.dark_thermal_percent
            )?;
        }
        writeln!(
            out,
            "average dark-silicon reduction: {:.0}%",
            panel.average_reduction_percent
        )?;
    }
    Ok(panels.to_json())
}

fn fig7(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig7()?;
    for panel in &panels {
        writeln!(out, "-- {} --", panel.node)?;
        writeln!(
            out,
            "app           GIPS(nom)  GIPS(dvfs)  act%(nom)  act%(dvfs)  chosen"
        )?;
        for r in &panel.rows {
            writeln!(
                out,
                "{:<13} {:>9.0}  {:>10.0}  {:>8.0}%  {:>9.0}%  {}t @ {:.1} GHz",
                r.app.name(),
                r.nominal_gips.value(),
                r.tuned_gips.value(),
                r.nominal_active_percent,
                r.tuned_active_percent,
                r.chosen_threads,
                r.chosen_frequency.as_ghz()
            )?;
        }
        writeln!(
            out,
            "max performance gain: {:.0}%",
            (panel.max_gain - 1.0) * 100.0
        )?;
    }
    Ok(panels.to_json())
}

fn fig8(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let patterns = darksil_bench::fig8()?;
    for p in &patterns {
        writeln!(
            out,
            "-- {}: {} cores @ 3.6 GHz, Ptotal = {:.0} W, peak = {:.1} °C, violates T_DTM: {} --",
            p.name,
            p.active_cores,
            p.total_power.value(),
            p.peak_temperature.value(),
            p.violates
        )?;
        writeln!(out, "{}", p.thermal_art)?;
    }
    Ok(patterns.to_json())
}

fn fig9(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig9()?;
    writeln!(
        out,
        "mix             TDPmap[GIPS]  DsRem[GIPS]  act%(TDP)  act%(Ds)  speedup"
    )?;
    for r in &rows {
        writeln!(
            out,
            "{:<15} {:>12.0}  {:>11.0}  {:>8.0}%  {:>7.0}%  {:>6.2}x",
            r.mix,
            r.tdpmap_gips.value(),
            r.dsrem_gips.value(),
            r.tdpmap_active_percent,
            r.dsrem_active_percent,
            r.speedup
        )?;
    }
    Ok(rows.to_json())
}

fn fig10(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let bars = darksil_bench::fig10()?;
    writeln!(out, "node    dark%   TSP/core[W]  total[GIPS]")?;
    for b in &bars {
        writeln!(
            out,
            "{:<7} {:>4.0}%  {:>10.2}  {:>11.0}",
            b.node.to_string(),
            100.0 * b.dark_fraction,
            b.tsp_per_core.value(),
            b.total_gips.value()
        )?;
    }
    Ok(bars.to_json())
}

fn fig11(options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let f = darksil_bench::fig11(options.fidelity)?;
    writeln!(
        out,
        "boosting: avg {:.1} GIPS, settled temperature band {:.1}–{:.1} °C",
        f.boosting_avg_gips.value(),
        f.boosting_temp_band.0.value(),
        f.boosting_temp_band.1.value()
    )?;
    writeln!(
        out,
        "constant: avg {:.1} GIPS, peak {:.1} °C",
        f.constant_avg_gips.value(),
        f.constant_peak_temp.value()
    )?;
    writeln!(
        out,
        "boosting gain: {:.1}%",
        100.0 * (f.boosting_avg_gips / f.constant_avg_gips - 1.0)
    )?;
    Ok(f.to_json())
}

fn fig12(options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let points = darksil_bench::fig12(options.fidelity)?;
    writeln!(out, "cores  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]")?;
    for p in &points {
        writeln!(
            out,
            "{:>5}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            p.active_cores,
            p.boosting_gips.value(),
            p.constant_gips.value(),
            p.boosting_power.value(),
            p.constant_power.value()
        )?;
    }
    Ok(points.to_json())
}

fn fig13(options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig13(options.fidelity)?;
    writeln!(
        out,
        "app           inst  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]"
    )?;
    for r in &rows {
        writeln!(
            out,
            "{:<13} {:>4}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            r.app.name(),
            r.instances,
            r.boosting_gips.value(),
            r.constant_gips.value(),
            r.boosting_peak_power.value(),
            r.constant_peak_power.value()
        )?;
    }
    Ok(rows.to_json())
}

fn dtm(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::dtm_response()?;
    writeln!(
        out,
        "TDP[W]  admitted-dark  sustained-dark  powered-down  DTM fired"
    )?;
    for r in &rows {
        writeln!(
            out,
            "{:>6.0}  {:>12.0}%  {:>13.0}%  {:>12}  {}",
            r.tdp.value(),
            r.admitted_dark_percent,
            r.sustained_dark_percent,
            r.instances_powered_down,
            r.triggered
        )?;
    }
    writeln!(
        out,
        "Optimistic TDPs hide dark silicon behind the DTM reaction (§3.1)."
    )?;
    Ok(rows.to_json())
}

fn aging(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let cmp = darksil_bench::aging_rotation()?;
    writeln!(
        out,
        "{} epochs × {} h, 56/100 cores active:",
        cmp.epochs, cmp.epoch_hours
    )?;
    writeln!(
        out,
        "  static placement: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.static_max_wear, cmp.static_imbalance
    )?;
    writeln!(
        out,
        "  rotating dark set: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.rotating_max_wear, cmp.rotating_imbalance
    )?;
    writeln!(out, "  implied lifetime gain: {:.2}x", cmp.lifetime_gain())?;
    Ok(cmp.to_json())
}

fn variability(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::variability_savings(5)?;
    writeln!(out, "chip  best-pick[W]  leaky-pick[W]  saving")?;
    for r in &rows {
        writeln!(
            out,
            "{:>4}  {:>11.1}  {:>12.1}  {:>5.1}%",
            r.seed,
            r.best_pick_power.value(),
            r.worst_pick_power.value(),
            r.saving_percent
        )?;
    }
    Ok(rows.to_json())
}

fn cooling(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let (packages, sweep) = darksil_bench::cooling_sensitivity()?;
    writeln!(out, "package            dark%   active  peak[°C]")?;
    for p in &packages {
        writeln!(
            out,
            "{:<17} {:>5.0}%  {:>6}  {:>7.1}",
            p.package,
            100.0 * p.dark_fraction,
            p.active_cores,
            p.peak_temperature.value()
        )?;
    }
    writeln!(out, "\nR_conv[K/W]  dark%   active  power[W]")?;
    for pt in &sweep {
        writeln!(
            out,
            "{:>10.2}  {:>5.0}%  {:>6}  {:>7.0}",
            pt.convection_resistance,
            100.0 * pt.dark_fraction,
            pt.active_cores,
            pt.total_power.value()
        )?;
    }
    writeln!(
        out,
        "\nDark silicon is a property of chip + cooling, not of the chip alone."
    )?;
    Ok((packages, sweep).to_json())
}

fn pareto(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let (points, frontier) = darksil_bench::pareto_x264()?;
    writeln!(
        out,
        "{} feasible of {} configurations; Pareto frontier:",
        points.iter().filter(|p| p.feasible).count(),
        points.len()
    )?;
    writeln!(
        out,
        "threads  inst  f[GHz]  GIPS   power[W]  dark%  peak[°C]"
    )?;
    for p in &frontier {
        writeln!(
            out,
            "{:>7}  {:>4}  {:>5.1}  {:>5.0}  {:>8.0}  {:>4.0}%  {:>7.1}",
            p.threads,
            p.instances,
            p.frequency.as_ghz(),
            p.total_gips.value(),
            p.total_power.value(),
            100.0 * p.dark_fraction,
            p.peak_temperature.value()
        )?;
    }
    writeln!(
        out,
        "\nThe §3.3 trade-off made explicit: both axes (threads, V/f) appear on the frontier."
    )?;
    Ok(frontier.to_json())
}

fn fig14(_options: &Options, out: &mut String) -> Result<Json, Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig14()?;
    writeln!(out, "app           NTC[kJ]  STC1[kJ]  STC2[kJ]  NTC wins")?;
    for r in &rows {
        writeln!(
            out,
            "{:<13} {:>7.2}  {:>8.2}  {:>8.2}  {}",
            r.app.name(),
            r.ntc.energy.value() / 1e3,
            r.stc_one_thread.energy.value() / 1e3,
            r.stc_two_threads.energy.value() / 1e3,
            r.ntc_wins()
        )?;
    }
    let (ntc, stc1, stc2) = fig14_total_energy(&rows);
    writeln!(
        out,
        "totals: NTC {:.1} kJ vs STC1 {:.1} kJ vs STC2 {:.1} kJ",
        ntc.value() / 1e3,
        stc1.value() / 1e3,
        stc2.value() / 1e3
    )?;
    Ok(rows.to_json())
}
