//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <artefact> [--json DIR] [--paper] [--inject ARTEFACT]
//!
//! artefacts: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!            fig11 fig12 fig13 fig14 dtm aging variability cooling
//!            pareto all
//! --json DIR        additionally write machine-readable series to DIR
//! --paper           run transients at the paper's full horizons (slow)
//! --inject ARTEFACT inject a NaN-power fault into that artefact (test
//!                   hook for the partial-failure machinery)
//! ```
//!
//! Every artefact runs in isolation: an error (or even a panic) in one
//! figure does not stop the others, the per-artefact outcomes are
//! collected into `error_report.json` (under `--json DIR`, otherwise
//! printed to stderr), and the exit code reflects the aggregate.

use std::env;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use darksil_bench::{fig14_total_energy, Fidelity};
use darksil_json::{Json, ToJson};
use darksil_robust::DarksilError;

struct Options {
    json_dir: Option<PathBuf>,
    fidelity: Fidelity,
    inject: Option<String>,
}

/// One named artefact runner for the dispatch tables.
type Runner = (
    &'static str,
    fn(&Options) -> Result<(), Box<dyn std::error::Error>>,
);

const RUNNERS: [Runner; 19] = [
    ("table1", table1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("fig8", fig8),
    ("fig9", fig9),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("dtm", dtm),
    ("aging", aging),
    ("variability", variability),
    ("cooling", cooling),
    ("pareto", pareto),
];

/// The result of one isolated artefact run.
struct ArtefactOutcome {
    name: &'static str,
    /// `ok`, `error` or `panic`.
    status: &'static str,
    /// The classified error for non-`ok` outcomes.
    error: Option<DarksilError>,
    /// Wall-clock seconds spent.
    seconds: f64,
}

impl ArtefactOutcome {
    fn succeeded(&self) -> bool {
        self.status == "ok"
    }
}

impl ToJson for ArtefactOutcome {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("artefact".to_string(), Json::Str(self.name.to_string())),
            ("status".to_string(), Json::Str(self.status.to_string())),
            ("seconds".to_string(), Json::Num(self.seconds)),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), e.to_json()));
        }
        Json::Obj(fields)
    }
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let Some(artefact) = args.next() else {
        eprintln!("usage: repro <table1|fig2..fig14|dtm|aging|variability|cooling|pareto|all> [--json DIR] [--paper] [--inject ARTEFACT]");
        return ExitCode::FAILURE;
    };
    let mut options = Options {
        json_dir: None,
        fidelity: Fidelity::Quick,
        inject: None,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => match args.next() {
                Some(dir) => options.json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--paper" => options.fidelity = Fidelity::Paper,
            "--inject" => match args.next() {
                Some(name) => options.inject = Some(name),
                None => {
                    eprintln!("--inject requires an artefact name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let selected: Vec<&Runner> = if artefact == "all" {
        RUNNERS.iter().collect()
    } else {
        match RUNNERS.iter().find(|(name, _)| *name == artefact) {
            Some(runner) => vec![runner],
            None => {
                eprintln!("unknown artefact {artefact}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut outcomes: Vec<ArtefactOutcome> = Vec::with_capacity(selected.len());
    for (name, run) in selected {
        if artefact == "all" {
            println!("\n================ {name} ================");
        }
        outcomes.push(run_isolated(name, *run, &options));
    }

    let failed = outcomes.iter().filter(|o| !o.succeeded()).count();
    if let Err(e) = write_error_report(&options, &outcomes, failed) {
        eprintln!("cannot write error report: {e}");
        return ExitCode::FAILURE;
    }
    for o in outcomes.iter().filter(|o| !o.succeeded()) {
        let detail = o
            .error
            .as_ref()
            .map_or_else(|| "unknown failure".to_string(), ToString::to_string);
        eprintln!("repro {}: {} — {detail}", o.name, o.status);
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "repro: {failed} of {} artefacts failed ({} succeeded)",
            outcomes.len(),
            outcomes.len() - failed
        );
        ExitCode::FAILURE
    }
}

/// Runs one artefact with full isolation: errors are classified into
/// the workspace taxonomy and panics are caught, so one broken figure
/// can never take the others down.
fn run_isolated(
    name: &'static str,
    run: fn(&Options) -> Result<(), Box<dyn std::error::Error>>,
    options: &Options,
) -> ArtefactOutcome {
    let started = Instant::now();
    let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
        if options.inject.as_deref() == Some(name) {
            injected_failure()?;
        }
        run(options)
    }));
    let seconds = started.elapsed().as_secs_f64();
    match attempt {
        Ok(Ok(())) => ArtefactOutcome {
            name,
            status: "ok",
            error: None,
            seconds,
        },
        Ok(Err(e)) => ArtefactOutcome {
            name,
            status: "error",
            error: Some(classify(e.as_ref()).context(name)),
            seconds,
        },
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            ArtefactOutcome {
                name,
                status: "panic",
                error: Some(DarksilError::internal(message).context(name)),
                seconds,
            }
        }
    }
}

/// Maps any artefact error onto the workspace taxonomy, preserving the
/// typed class when the concrete error type is known.
fn classify(e: &(dyn std::error::Error + 'static)) -> DarksilError {
    if let Some(d) = e.downcast_ref::<DarksilError>() {
        return d.clone();
    }
    if let Some(d) = e.downcast_ref::<darksil_core::EstimateError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_mapping::MappingError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_thermal::ThermalError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_numerics::NumericsError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_power::PowerError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_boost::BoostError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<darksil_workload::WorkloadError>() {
        return d.clone().into();
    }
    if let Some(d) = e.downcast_ref::<std::io::Error>() {
        return DarksilError::io(d.to_string());
    }
    DarksilError::internal(e.to_string())
}

/// Test hook behind `--inject`: feeds a NaN power sample into the real
/// thermal solver, exercising the library's non-finite input guard the
/// same way a broken power model would.
fn injected_failure() -> Result<(), Box<dyn std::error::Error>> {
    let platform = darksil_mapping::Platform::for_node(darksil_power::TechnologyNode::Nm16)?;
    let mut power = vec![darksil_units::Watts::new(1.0); platform.core_count()];
    power[0] = darksil_units::Watts::new(f64::NAN);
    platform.thermal().steady_state(&power)?;
    Ok(())
}

/// Writes the machine-readable per-artefact report. With `--json DIR`
/// it lands in `DIR/error_report.json`; otherwise it goes to stderr so
/// scripted callers always have it.
fn write_error_report(
    options: &Options,
    outcomes: &[ArtefactOutcome],
    failed: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = Json::Obj(vec![
        ("artefacts".to_string(), Json::Num(outcomes.len() as f64)),
        ("failed".to_string(), Json::Num(failed as f64)),
        (
            "outcomes".to_string(),
            Json::Arr(outcomes.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    let text = darksil_json::to_string_pretty(&report);
    match &options.json_dir {
        Some(dir) => {
            fs::create_dir_all(dir)?;
            let path = dir.join("error_report.json");
            fs::write(&path, text)?;
            println!("[wrote {}]", path.display());
        }
        None if failed > 0 => eprintln!("{text}"),
        None => {}
    }
    Ok(())
}

fn dump<T: ToJson>(
    options: &Options,
    name: &str,
    data: &T,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(dir) = &options.json_dir {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, darksil_json::to_string_pretty(data))?;
        println!("[wrote {}]", path.display());
    }
    Ok(())
}

fn table1(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::table1();
    println!("Technology  Vdd   Freq  Cap   Area  Core-area[mm²]");
    for r in &rows {
        println!(
            "{:>6} nm  {:>5.2} {:>5.2} {:>5.2} {:>5.2}  {:>6.1}",
            r.node_nm, r.vdd, r.frequency, r.capacitance, r.area, r.core_area_mm2
        );
    }
    dump(options, "table1", &rows)
}

fn fig2(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let pts = darksil_bench::fig2(27);
    println!("Voltage[V]  Frequency[GHz]  Region");
    for p in &pts {
        println!(
            "{:>9.3}  {:>13.3}  {}",
            p.voltage.value(),
            p.frequency.as_ghz(),
            p.region
        );
    }
    dump(options, "fig2", &pts)
}

fn fig3(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let f = darksil_bench::fig3()?;
    println!("Frequency[GHz]  Measured[W]  Model[W]");
    for p in &f.points {
        println!(
            "{:>13.2}  {:>10.2}  {:>8.2}",
            p.frequency.as_ghz(),
            p.measured.value(),
            p.fitted.value()
        );
    }
    println!("fit RMSE: {:.3} W", f.rmse.value());
    dump(options, "fig3", &f)
}

fn fig4(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let series = darksil_bench::fig4();
    print!("Threads ");
    for s in &series {
        print!("{:>12}", s.app.name());
    }
    println!();
    for i in 0..series[0].points.len() {
        print!("{:>7} ", series[0].points[i].0);
        for s in &series {
            print!("{:>12.2}", s.points[i].1);
        }
        println!();
    }
    dump(options, "fig4", &series)
}

fn fig5(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig5()?;
    for panel in &panels {
        println!("-- TDP = {} --", panel.tdp);
        println!("app           2.8GHz  3.0GHz  3.2GHz  3.4GHz  3.6GHz   (dark %)");
        for app in darksil_workload::ParsecApp::ALL {
            print!("{:<13}", app.name());
            for cell in panel.cells.iter().filter(|c| c.app == app) {
                print!(" {:>6.0}%", cell.dark_percent);
            }
            println!();
        }
        println!("peak temperatures at 3.6 GHz:");
        for (app, t) in &panel.peak_temperatures {
            println!("  {:<13} {:>6.1} °C", app.name(), t.value());
        }
        println!("any thermal violation: {}", panel.any_violation);
    }
    dump(options, "fig5", &panels)
}

fn fig6(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig6()?;
    for panel in &panels {
        println!("-- {} @ {:.1} GHz --", panel.node, panel.frequency.as_ghz());
        println!("app           dark(TDP)  dark(thermal)");
        for row in &panel.rows {
            println!(
                "{:<13} {:>8.0}%  {:>12.0}%",
                row.app.name(),
                row.dark_tdp_percent,
                row.dark_thermal_percent
            );
        }
        println!(
            "average dark-silicon reduction: {:.0}%",
            panel.average_reduction_percent
        );
    }
    dump(options, "fig6", &panels)
}

fn fig7(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let panels = darksil_bench::fig7()?;
    for panel in &panels {
        println!("-- {} --", panel.node);
        println!("app           GIPS(nom)  GIPS(dvfs)  act%(nom)  act%(dvfs)  chosen");
        for r in &panel.rows {
            println!(
                "{:<13} {:>9.0}  {:>10.0}  {:>8.0}%  {:>9.0}%  {}t @ {:.1} GHz",
                r.app.name(),
                r.nominal_gips.value(),
                r.tuned_gips.value(),
                r.nominal_active_percent,
                r.tuned_active_percent,
                r.chosen_threads,
                r.chosen_frequency.as_ghz()
            );
        }
        println!(
            "max performance gain: {:.0}%",
            (panel.max_gain - 1.0) * 100.0
        );
    }
    dump(options, "fig7", &panels)
}

fn fig8(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let patterns = darksil_bench::fig8()?;
    for p in &patterns {
        println!(
            "-- {}: {} cores @ 3.6 GHz, Ptotal = {:.0} W, peak = {:.1} °C, violates T_DTM: {} --",
            p.name,
            p.active_cores,
            p.total_power.value(),
            p.peak_temperature.value(),
            p.violates
        );
        println!("{}", p.thermal_art);
    }
    dump(options, "fig8", &patterns)
}

fn fig9(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig9()?;
    println!("mix             TDPmap[GIPS]  DsRem[GIPS]  act%(TDP)  act%(Ds)  speedup");
    for r in &rows {
        println!(
            "{:<15} {:>12.0}  {:>11.0}  {:>8.0}%  {:>7.0}%  {:>6.2}x",
            r.mix,
            r.tdpmap_gips.value(),
            r.dsrem_gips.value(),
            r.tdpmap_active_percent,
            r.dsrem_active_percent,
            r.speedup
        );
    }
    dump(options, "fig9", &rows)
}

fn fig10(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let bars = darksil_bench::fig10()?;
    println!("node    dark%   TSP/core[W]  total[GIPS]");
    for b in &bars {
        println!(
            "{:<7} {:>4.0}%  {:>10.2}  {:>11.0}",
            b.node.to_string(),
            100.0 * b.dark_fraction,
            b.tsp_per_core.value(),
            b.total_gips.value()
        );
    }
    dump(options, "fig10", &bars)
}

fn fig11(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let f = darksil_bench::fig11(options.fidelity)?;
    println!(
        "boosting: avg {:.1} GIPS, settled temperature band {:.1}–{:.1} °C",
        f.boosting_avg_gips.value(),
        f.boosting_temp_band.0.value(),
        f.boosting_temp_band.1.value()
    );
    println!(
        "constant: avg {:.1} GIPS, peak {:.1} °C",
        f.constant_avg_gips.value(),
        f.constant_peak_temp.value()
    );
    println!(
        "boosting gain: {:.1}%",
        100.0 * (f.boosting_avg_gips / f.constant_avg_gips - 1.0)
    );
    dump(options, "fig11", &f)
}

fn fig12(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let points = darksil_bench::fig12(options.fidelity)?;
    println!("cores  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]");
    for p in &points {
        println!(
            "{:>5}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            p.active_cores,
            p.boosting_gips.value(),
            p.constant_gips.value(),
            p.boosting_power.value(),
            p.constant_power.value()
        );
    }
    dump(options, "fig12", &points)
}

fn fig13(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig13(options.fidelity)?;
    println!("app           inst  boost[GIPS]  const[GIPS]  boostP[W]  constP[W]");
    for r in &rows {
        println!(
            "{:<13} {:>4}  {:>10.0}  {:>10.0}  {:>9.0}  {:>8.0}",
            r.app.name(),
            r.instances,
            r.boosting_gips.value(),
            r.constant_gips.value(),
            r.boosting_peak_power.value(),
            r.constant_peak_power.value()
        );
    }
    dump(options, "fig13", &rows)
}

fn dtm(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::dtm_response()?;
    println!("TDP[W]  admitted-dark  sustained-dark  powered-down  DTM fired");
    for r in &rows {
        println!(
            "{:>6.0}  {:>12.0}%  {:>13.0}%  {:>12}  {}",
            r.tdp.value(),
            r.admitted_dark_percent,
            r.sustained_dark_percent,
            r.instances_powered_down,
            r.triggered
        );
    }
    println!("Optimistic TDPs hide dark silicon behind the DTM reaction (§3.1).");
    dump(options, "dtm", &rows)
}

fn aging(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let cmp = darksil_bench::aging_rotation()?;
    println!(
        "{} epochs × {} h, 56/100 cores active:",
        cmp.epochs, cmp.epoch_hours
    );
    println!(
        "  static placement: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.static_max_wear, cmp.static_imbalance
    );
    println!(
        "  rotating dark set: max wear {:.0} ref-s, imbalance {:.2}",
        cmp.rotating_max_wear, cmp.rotating_imbalance
    );
    println!("  implied lifetime gain: {:.2}x", cmp.lifetime_gain());
    dump(options, "aging", &cmp)
}

fn variability(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::variability_savings(5)?;
    println!("chip  best-pick[W]  leaky-pick[W]  saving");
    for r in &rows {
        println!(
            "{:>4}  {:>11.1}  {:>12.1}  {:>5.1}%",
            r.seed,
            r.best_pick_power.value(),
            r.worst_pick_power.value(),
            r.saving_percent
        );
    }
    dump(options, "variability", &rows)
}

fn cooling(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let (packages, sweep) = darksil_bench::cooling_sensitivity()?;
    println!("package            dark%   active  peak[°C]");
    for p in &packages {
        println!(
            "{:<17} {:>5.0}%  {:>6}  {:>7.1}",
            p.package,
            100.0 * p.dark_fraction,
            p.active_cores,
            p.peak_temperature.value()
        );
    }
    println!("\nR_conv[K/W]  dark%   active  power[W]");
    for pt in &sweep {
        println!(
            "{:>10.2}  {:>5.0}%  {:>6}  {:>7.0}",
            pt.convection_resistance,
            100.0 * pt.dark_fraction,
            pt.active_cores,
            pt.total_power.value()
        );
    }
    println!("\nDark silicon is a property of chip + cooling, not of the chip alone.");
    dump(options, "cooling", &(packages, sweep))
}

fn pareto(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let (points, frontier) = darksil_bench::pareto_x264()?;
    println!(
        "{} feasible of {} configurations; Pareto frontier:",
        points.iter().filter(|p| p.feasible).count(),
        points.len()
    );
    println!("threads  inst  f[GHz]  GIPS   power[W]  dark%  peak[°C]");
    for p in &frontier {
        println!(
            "{:>7}  {:>4}  {:>5.1}  {:>5.0}  {:>8.0}  {:>4.0}%  {:>7.1}",
            p.threads,
            p.instances,
            p.frequency.as_ghz(),
            p.total_gips.value(),
            p.total_power.value(),
            100.0 * p.dark_fraction,
            p.peak_temperature.value()
        );
    }
    println!(
        "\nThe §3.3 trade-off made explicit: both axes (threads, V/f) appear on the frontier."
    );
    dump(options, "pareto", &frontier)
}

fn fig14(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let rows = darksil_bench::fig14()?;
    println!("app           NTC[kJ]  STC1[kJ]  STC2[kJ]  NTC wins");
    for r in &rows {
        println!(
            "{:<13} {:>7.2}  {:>8.2}  {:>8.2}  {}",
            r.app.name(),
            r.ntc.energy.value() / 1e3,
            r.stc_one_thread.energy.value() / 1e3,
            r.stc_two_threads.energy.value() / 1e3,
            r.ntc_wins()
        );
    }
    let (ntc, stc1, stc2) = fig14_total_energy(&rows);
    println!(
        "totals: NTC {:.1} kJ vs STC1 {:.1} kJ vs STC2 {:.1} kJ",
        ntc.value() / 1e3,
        stc1.value() / 1e3,
        stc2.value() / 1e3
    );
    dump(options, "fig14", &rows)
}
