//! Data builders, one per table/figure.
//!
//! The multi-panel figures fan their independent inner loops (per-app,
//! per-node, per-instance-count work) out over `darksil-engine`; the
//! engine returns results in submission order, so the emitted series
//! are byte-identical at any `--jobs` setting.

use darksil_archsim::{McPatSampler, SampleSweep};
use darksil_boost::{
    iso_performance_comparison, run_boosting, run_constant, sweep_active_cores, IsoPerfComparison,
    PolicyConfig, PolicyTrace, SweepPoint,
};
use darksil_core::{scenarios, tsp_eval, DarkSiliconEstimator};
use darksil_engine::Engine;
use darksil_mapping::{
    place_contiguous, place_patterned, place_thermal_aware, DsRem, Platform, TdpMap,
};
use darksil_power::{CorePowerModel, LeakageModel, OperatingRegion, TechnologyNode, VfRelation};
use darksil_robust::DarksilError;
use darksil_units::{Celsius, Gips, Hertz, Joules, Seconds, Volts, Watts};
use darksil_workload::{ParsecApp, Workload};

/// How much simulated time the transient figures spend.
///
/// `Paper` reproduces the paper's 100 s horizons at a 1 ms control
/// period; `Quick` shortens horizons and coarsens periods so the whole
/// suite regenerates in minutes. Shapes are identical; only the
/// statistical smoothness of the transient averages differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Short horizons / coarse periods for CI and smoke runs.
    Quick,
    /// The paper's horizons (Figure 11: 100 s at 1 ms).
    Paper,
}

impl Fidelity {
    fn horizon(self) -> Seconds {
        match self {
            Self::Quick => Seconds::new(40.0),
            Self::Paper => Seconds::new(100.0),
        }
    }

    fn period(self) -> Seconds {
        match self {
            Self::Quick => Seconds::new(0.01),
            Self::Paper => Seconds::new(1.0e-3),
        }
    }

    fn sweep_horizon(self) -> Seconds {
        match self {
            Self::Quick => Seconds::new(20.0),
            Self::Paper => Seconds::new(100.0),
        }
    }

    fn sweep_period(self) -> Seconds {
        match self {
            Self::Quick => Seconds::new(0.02),
            Self::Paper => Seconds::new(2.0e-3),
        }
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of the Figure 1 scaling table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Feature size in nm.
    pub node_nm: u32,
    /// Vdd multiplier vs 22 nm.
    pub vdd: f64,
    /// Frequency multiplier.
    pub frequency: f64,
    /// Capacitance multiplier.
    pub capacitance: f64,
    /// Area multiplier.
    pub area: f64,
    /// Core area at this node in mm².
    pub core_area_mm2: f64,
}

/// Regenerates the Figure 1 scaling-factor table.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    TechnologyNode::ALL
        .iter()
        .map(|&node| {
            let s = node.scaling();
            Table1Row {
                node_nm: node.nanometers(),
                vdd: s.vdd,
                frequency: s.frequency,
                capacitance: s.capacitance,
                area: s.area,
                core_area_mm2: node.core_area().value(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// One sample of the 22 nm f–V curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Point {
    /// Supply voltage.
    pub voltage: Volts,
    /// Maximum stable frequency per Eq. (2).
    pub frequency: Hertz,
    /// Operating region at this voltage.
    pub region: OperatingRegion,
}

/// Regenerates Figure 2: the Eq. (2) curve (k = 3.7, Vth = 178 mV)
/// sampled over 0.2–1.5 V with region labels.
#[must_use]
pub fn fig2(points: usize) -> Vec<Fig2Point> {
    let vf = VfRelation::paper_22nm();
    (0..points)
        .map(|i| {
            let v = Volts::new(0.2 + 1.3 * i as f64 / (points.max(2) - 1) as f64);
            Fig2Point {
                voltage: v,
                frequency: vf.frequency_at(v),
                region: vf.region_of(v),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// One row of the Figure 3 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// Frequency of the sample.
    pub frequency: Hertz,
    /// "Experimental" (McPAT stand-in) power.
    pub measured: Watts,
    /// Power predicted by the fitted Eq. (1) model.
    pub fitted: Watts,
}

/// The Figure 3 fit and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// Per-sample comparison.
    pub points: Vec<Fig3Point>,
    /// Root-mean-square error of the fit in watts.
    pub rmse: Watts,
}

/// Regenerates Figure 3: sample the McPAT stand-in over 0.5–4 GHz for a
/// single x264 thread at 22 nm, fit Eq. (1), and tabulate both.
///
/// # Errors
///
/// Propagates sampling/fitting failures (none occur for the built-in
/// configuration).
pub fn fig3() -> Result<Fig3, Box<dyn std::error::Error>> {
    let sampler = McPatSampler::new(CorePowerModel::x264_22nm(), 0.03, 0xDAC15)?;
    let samples = sampler.sample(&SampleSweep::figure3())?;
    let fitted = CorePowerModel::fit(
        &samples,
        &LeakageModel::alpha_core_22nm(),
        VfRelation::paper_22nm(),
    )?;
    let points = samples
        .iter()
        .map(|s| Fig3Point {
            frequency: s.frequency,
            measured: s.power,
            fitted: fitted.power(s.alpha, s.vdd, s.frequency, s.temperature),
        })
        .collect();
    Ok(Fig3 {
        points,
        rmse: fitted.rmse(&samples),
    })
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// One speed-up curve of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Series {
    /// The application.
    pub app: ParsecApp,
    /// `(threads, speed-up)` samples.
    pub points: Vec<(usize, f64)>,
}

/// Regenerates Figure 4: wide-scaling speed-ups at 2 GHz for x264,
/// bodytrack and canneal over 16–64 threads.
#[must_use]
pub fn fig4() -> Vec<Fig4Series> {
    [ParsecApp::X264, ParsecApp::Bodytrack, ParsecApp::Canneal]
        .iter()
        .map(|&app| {
            let profile = app.profile();
            Fig4Series {
                app,
                points: (16..=64)
                    .step_by(8)
                    .map(|t| (t, profile.speedup_wide(t)))
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// One (application, frequency) cell of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Cell {
    /// The application.
    pub app: ParsecApp,
    /// Sweep frequency.
    pub frequency: Hertz,
    /// Active-core percentage.
    pub active_percent: f64,
    /// Dark-silicon percentage.
    pub dark_percent: f64,
}

/// One TDP panel of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Panel {
    /// The TDP this panel was computed for.
    pub tdp: Watts,
    /// All (app × frequency) cells.
    pub cells: Vec<Fig5Cell>,
    /// Peak temperature per application at the maximum frequency.
    pub peak_temperatures: Vec<(ParsecApp, Celsius)>,
    /// Whether any application violated the 80 °C threshold.
    pub any_violation: bool,
}

/// Regenerates Figure 5: dark silicon for all seven applications over
/// 2.8–3.6 GHz at 16 nm under the optimistic (220 W) and pessimistic
/// (185 W) TDP, plus the peak-temperature bars.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig5() -> Result<Vec<Fig5Panel>, DarksilError> {
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)?;
    let freqs = [2.8, 3.0, 3.2, 3.4, 3.6];
    let engine = Engine::auto();
    let mut panels = Vec::new();
    for tdp_w in [220.0, 185.0] {
        let tdp = Watts::new(tdp_w);
        // One job per application; submission order preserves the
        // `ParsecApp::ALL` row order of the panel.
        let per_app = engine.try_par_map(ParsecApp::ALL.to_vec(), |app| {
            let mut cells = Vec::new();
            let mut peak = None;
            let mut violation = false;
            for ghz in freqs {
                let e = est.under_power_budget(app, 8, Hertz::from_ghz(ghz), tdp)?;
                cells.push(Fig5Cell {
                    app,
                    frequency: Hertz::from_ghz(ghz),
                    active_percent: 100.0 * (1.0 - e.dark_fraction),
                    dark_percent: 100.0 * e.dark_fraction,
                });
                if (ghz - 3.6).abs() < 1e-9 {
                    peak = Some((app, e.peak_temperature));
                    violation |= e.thermal_violation;
                }
            }
            Ok((cells, peak, violation))
        })?;
        let mut cells = Vec::new();
        let mut peaks = Vec::new();
        let mut any_violation = false;
        for (app_cells, peak, violation) in per_app {
            cells.extend(app_cells);
            peaks.extend(peak);
            any_violation |= violation;
        }
        panels.push(Fig5Panel {
            tdp,
            cells,
            peak_temperatures: peaks,
            any_violation,
        });
    }
    Ok(panels)
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// One application row of a Figure 6 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// The application.
    pub app: ParsecApp,
    /// Dark percentage under the TDP constraint.
    pub dark_tdp_percent: f64,
    /// Dark percentage under the temperature constraint.
    pub dark_thermal_percent: f64,
}

/// One technology panel of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Panel {
    /// Technology node.
    pub node: TechnologyNode,
    /// Frequency used for this node (3.6 GHz @16 nm, 4 GHz @11 nm).
    pub frequency: Hertz,
    /// Per-application rows.
    pub rows: Vec<Fig6Row>,
    /// Average relative reduction in dark silicon (%) from switching to
    /// the temperature constraint.
    pub average_reduction_percent: f64,
}

/// Regenerates Figure 6: TDP (185 W) vs temperature-constrained dark
/// silicon at 16 nm / 3.6 GHz and 11 nm / 4.0 GHz.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig6() -> Result<Vec<Fig6Panel>, DarksilError> {
    let engine = Engine::auto();
    let mut panels = Vec::new();
    for node in [TechnologyNode::Nm16, TechnologyNode::Nm11] {
        let est = DarkSiliconEstimator::for_node(node)?;
        let f = node.nominal_max_frequency();
        // Both constraints for one application are a single job; rows
        // come back in `ParsecApp::ALL` order.
        let rows = engine.try_par_map(ParsecApp::ALL.to_vec(), |app| {
            let tdp = est.under_power_budget(app, 8, f, Watts::new(185.0))?;
            let thermal = est.under_temperature_constraint(app, 8, f)?;
            Ok(Fig6Row {
                app,
                dark_tdp_percent: 100.0 * tdp.dark_fraction,
                dark_thermal_percent: 100.0 * thermal.dark_fraction,
            })
        })?;
        let mut reductions = Vec::new();
        for row in &rows {
            if row.dark_tdp_percent > 0.0 {
                reductions.push(
                    100.0 * (row.dark_tdp_percent - row.dark_thermal_percent)
                        / row.dark_tdp_percent,
                );
            }
        }
        let average_reduction_percent = if reductions.is_empty() {
            0.0
        } else {
            reductions.iter().sum::<f64>() / reductions.len() as f64
        };
        panels.push(Fig6Panel {
            node,
            frequency: f,
            rows,
            average_reduction_percent,
        });
    }
    Ok(panels)
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// One application row of a Figure 7 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// The application.
    pub app: ParsecApp,
    /// Scenario 1 (nominal frequency) total performance.
    pub nominal_gips: Gips,
    /// Scenario 2 (characteristics-aware DVFS) total performance.
    pub tuned_gips: Gips,
    /// Scenario 1 active-core percentage.
    pub nominal_active_percent: f64,
    /// Scenario 2 active-core percentage.
    pub tuned_active_percent: f64,
    /// Scenario 2's chosen threads per instance.
    pub chosen_threads: usize,
    /// Scenario 2's chosen frequency.
    pub chosen_frequency: Hertz,
}

/// One technology panel of Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Panel {
    /// Technology node.
    pub node: TechnologyNode,
    /// Per-application rows.
    pub rows: Vec<Fig7Row>,
    /// Largest per-application performance gain (ratio).
    pub max_gain: f64,
}

/// Regenerates Figure 7: both DVFS scenarios at 16 nm and 11 nm under
/// TDP = 185 W.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig7() -> Result<Vec<Fig7Panel>, DarksilError> {
    let engine = Engine::auto();
    let mut panels = Vec::new();
    for node in [TechnologyNode::Nm16, TechnologyNode::Nm11] {
        let est = DarkSiliconEstimator::for_node(node)?;
        // The scenario search per application is independent; the gain
        // fold below runs over the ordered results.
        let per_app = engine.try_par_map(ParsecApp::ALL.to_vec(), |app| {
            let c = scenarios::compare(&est, app, Watts::new(185.0))?;
            let row = Fig7Row {
                app,
                nominal_gips: c.nominal.total_gips,
                tuned_gips: c.tuned.total_gips,
                nominal_active_percent: 100.0 * (1.0 - c.nominal.dark_fraction),
                tuned_active_percent: 100.0 * (1.0 - c.tuned.dark_fraction),
                chosen_threads: c.config.threads,
                chosen_frequency: c.config.frequency,
            };
            Ok((row, c.gain()))
        })?;
        let mut rows = Vec::new();
        let mut max_gain: f64 = 1.0;
        for (row, gain) in per_app {
            max_gain = max_gain.max(gain);
            rows.push(row);
        }
        panels.push(Fig7Panel {
            node,
            rows,
            max_gain,
        });
    }
    Ok(panels)
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// One mapping pattern of Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Pattern {
    /// Pattern name ("contiguous" / "patterned").
    pub name: String,
    /// Active cores.
    pub active_cores: usize,
    /// Total chip power at the converged temperatures.
    pub total_power: Watts,
    /// Peak die temperature.
    pub peak_temperature: Celsius,
    /// Whether `T_DTM` is exceeded.
    pub violates: bool,
    /// ASCII rendering of the die thermal profile (fixed 64–82 °C
    /// scale, like the paper's colour bar).
    pub thermal_art: String,
}

/// Regenerates Figure 8: contiguous mapping of 52 cores (196 W,
/// violating `T_DTM`) vs thermally optimised dark-silicon patterning of
/// 60 cores (226 W, safe), both swaptions at 3.6 GHz on the 16 nm chip.
/// Swaptions' 4-thread instances draw ≈3.77 W per core — exactly the
/// paper's 196 W / 52 cores.
///
/// # Errors
///
/// Propagates mapping/thermal failures.
pub fn fig8() -> Result<Vec<Fig8Pattern>, Box<dyn std::error::Error>> {
    let platform = Platform::for_node(TechnologyNode::Nm16)?;
    let level = platform.max_level();
    let mut out = Vec::new();

    // Pattern (a): 13 × 4-thread instances crammed contiguously = 52
    // cores.
    let w52 = Workload::uniform(ParsecApp::Swaptions, 13, 4)?;
    let contiguous = place_contiguous(platform.floorplan(), &w52, level)?;
    // Pattern (b): 15 × 4-thread instances on an optimised pattern = 60
    // cores.
    let w60 = Workload::uniform(ParsecApp::Swaptions, 15, 4)?;
    let patterned = place_thermal_aware(&platform, &w60, level)?;

    for (name, mapping) in [("contiguous", contiguous), ("patterned", patterned)] {
        let map = mapping.steady_temperatures(&platform)?;
        let temps: Vec<Celsius> = map.die_temperatures().collect();
        let power: Watts = mapping.power_map_at(&platform, &temps).iter().sum();
        let grid = map.to_grid_map(platform.floorplan())?;
        out.push(Fig8Pattern {
            name: name.to_string(),
            active_cores: mapping.active_core_count(),
            total_power: power,
            peak_temperature: map.peak(),
            violates: map.peak() > platform.t_dtm(),
            thermal_art: grid.render_ascii_scaled(64.0, 82.0),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------------

/// One workload-mix row of Figure 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Mix description.
    pub mix: String,
    /// TDPmap total performance.
    pub tdpmap_gips: Gips,
    /// DsRem total performance.
    pub dsrem_gips: Gips,
    /// TDPmap active-core percentage.
    pub tdpmap_active_percent: f64,
    /// DsRem active-core percentage.
    pub dsrem_active_percent: f64,
    /// DsRem speed-up over TDPmap.
    pub speedup: f64,
}

/// Regenerates Figure 9: DsRem vs TDPmap on single applications and
/// mixes at 16 nm, TDP = 185 W.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn fig9() -> Result<Vec<Fig9Row>, Box<dyn std::error::Error>> {
    let platform = Platform::for_node(TechnologyNode::Nm16)?;
    let tdp = Watts::new(185.0);
    let tdpmap = TdpMap::new(tdp);
    let dsrem = DsRem::new(tdp)?;
    let n = platform.core_count() as f64;

    let mut workloads: Vec<(String, Workload)> = vec![
        ("mix(14×8t)".into(), Workload::parsec_mix(14, 8)?),
        ("mix(20×8t)".into(), Workload::parsec_mix(20, 8)?),
    ];
    for app in [
        ParsecApp::X264,
        ParsecApp::Swaptions,
        ParsecApp::Canneal,
        ParsecApp::Ferret,
    ] {
        workloads.push((format!("{app}×13"), Workload::uniform(app, 13, 8)?));
    }

    let mut rows = Vec::new();
    for (mix, w) in workloads {
        let a = tdpmap.map(&platform, &w)?;
        let b = dsrem.map(&platform, &w)?;
        let g_a = a.total_gips(&platform);
        let g_b = b.total_gips(&platform);
        rows.push(Fig9Row {
            mix,
            tdpmap_gips: g_a,
            dsrem_gips: g_b,
            tdpmap_active_percent: 100.0 * a.active_core_count() as f64 / n,
            dsrem_active_percent: 100.0 * b.active_core_count() as f64 / n,
            speedup: g_b / g_a,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------------

/// One bar of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Bar {
    /// Technology node.
    pub node: TechnologyNode,
    /// Dark-silicon fraction the TSP budget was computed for.
    pub dark_fraction: f64,
    /// Total system performance.
    pub total_gips: Gips,
    /// Per-core TSP budget.
    pub tsp_per_core: Watts,
}

/// Regenerates Figure 10: TSP-budgeted performance at 20 % / 30 % /
/// 40 % dark silicon for 16 / 11 / 8 nm, plus neighbouring fractions
/// to show the dark-vs-performance trade-off.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig10() -> Result<Vec<Fig10Bar>, DarksilError> {
    let cases = [
        (TechnologyNode::Nm16, [0.10, 0.20, 0.30]),
        (TechnologyNode::Nm11, [0.20, 0.30, 0.40]),
        (TechnologyNode::Nm8, [0.30, 0.40, 0.50]),
    ];
    // Build the estimators serially (cheap, fallible setup), then fan
    // every (node, fraction) TSP evaluation out as one job.
    let mut estimators = Vec::new();
    let mut jobs = Vec::new();
    for (node, fractions) in cases {
        estimators.push((node, DarkSiliconEstimator::for_node(node)?));
        let est_index = estimators.len() - 1;
        for dark in fractions {
            jobs.push((est_index, dark));
        }
    }
    Engine::auto().try_par_map(jobs, |(est_index, dark)| {
        let (node, est) = &estimators[est_index];
        let perf = tsp_eval::tsp_performance(est, dark)?;
        Ok(Fig10Bar {
            node: *node,
            dark_fraction: dark,
            total_gips: perf.total_gips,
            tsp_per_core: perf.tsp_per_core,
        })
    })
}

// ---------------------------------------------------------------------------
// Figures 11–14
// ---------------------------------------------------------------------------

/// Decimated transient series of Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// `(time, GIPS, peak °C)` for boosting, decimated for plotting.
    pub boosting: Vec<(f64, f64, f64)>,
    /// `(time, GIPS, peak °C)` for the constant policy.
    pub constant: Vec<(f64, f64, f64)>,
    /// Settled average performance, boosting.
    pub boosting_avg_gips: Gips,
    /// Settled average performance, constant.
    pub constant_avg_gips: Gips,
    /// Oscillation band of the boosting peak temperature (settled).
    pub boosting_temp_band: (Celsius, Celsius),
    /// Settled constant-policy peak temperature.
    pub constant_peak_temp: Celsius,
}

/// Regenerates Figure 11: 12 × (x264, 8 threads) on the 16 nm chip,
/// boosting vs constant frequency.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig11(fidelity: Fidelity) -> Result<Fig11, Box<dyn std::error::Error>> {
    let platform =
        Platform::for_node(TechnologyNode::Nm16)?.with_boost_levels(Hertz::from_ghz(4.4))?;
    let workload = Workload::uniform(ParsecApp::X264, 12, 8)?;
    let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())?;
    let config = PolicyConfig {
        period: fidelity.period(),
        ..PolicyConfig::default()
    };
    let horizon = fidelity.horizon();
    // The two policies simulate the same mapping independently — run
    // them as two engine jobs and destructure in submission order.
    let traces = Engine::auto().try_par_map(vec![true, false], |boosting| {
        Ok(if boosting {
            run_boosting(&platform, &mapping, horizon, &config)?
        } else {
            run_constant(&platform, &mapping, horizon, &config)?
        })
    })?;
    let [boost, constant]: [PolicyTrace; 2] = traces
        .try_into()
        .map_err(|_| DarksilError::internal("fig11 expected exactly two policy traces"))?;

    let decimate = |trace: &darksil_boost::PolicyTrace| {
        let stride = (trace.len() / 200).max(1);
        trace
            .samples()
            .iter()
            .step_by(stride)
            .map(|s| (s.time.value(), s.gips.value(), s.peak_temperature.value()))
            .collect::<Vec<_>>()
    };

    Ok(Fig11 {
        boosting: decimate(&boost),
        constant: decimate(&constant),
        boosting_avg_gips: boost.average_gips_tail(0.5),
        constant_avg_gips: constant.average_gips_tail(0.5),
        boosting_temp_band: (
            boost.min_peak_temperature_tail(0.3),
            boost.peak_temperature(),
        ),
        constant_peak_temp: constant.peak_temperature(),
    })
}

/// Regenerates Figure 12: performance and power vs active cores for
/// x264 at 16 nm, boosting vs constant, one instance per 8 cores.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig12(fidelity: Fidelity) -> Result<Vec<SweepPoint>, Box<dyn std::error::Error>> {
    let platform =
        Platform::for_node(TechnologyNode::Nm16)?.with_boost_levels(Hertz::from_ghz(4.4))?;
    let config = PolicyConfig {
        period: fidelity.sweep_period(),
        ..PolicyConfig::default()
    };
    Ok(sweep_active_cores(
        &platform,
        ParsecApp::X264,
        12,
        fidelity.sweep_horizon(),
        &config,
    )?)
}

/// One (application, instance-count) group of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Row {
    /// The application.
    pub app: ParsecApp,
    /// Number of 8-thread instances (12 or 24).
    pub instances: usize,
    /// Settled boosting performance.
    pub boosting_gips: Gips,
    /// Settled constant performance.
    pub constant_gips: Gips,
    /// Peak power under boosting.
    pub boosting_peak_power: Watts,
    /// Peak power under the constant policy.
    pub constant_peak_power: Watts,
}

/// Regenerates Figure 13: all seven applications at 11 nm with 12 and
/// 24 instances, boosting vs constant.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig13(fidelity: Fidelity) -> Result<Vec<Fig13Row>, Box<dyn std::error::Error>> {
    let platform =
        Platform::for_node(TechnologyNode::Nm11)?.with_boost_levels(Hertz::from_ghz(4.8))?;
    let config = PolicyConfig {
        period: fidelity.sweep_period(),
        ..PolicyConfig::default()
    };
    let horizon = fidelity.sweep_horizon();
    let mut pairs = Vec::new();
    for app in ParsecApp::ALL {
        for instances in [12_usize, 24] {
            pairs.push((app, instances));
        }
    }
    // Oversized groups are skipped (`None`), not errors, so the row
    // list matches the serial loop after flattening.
    let rows = Engine::auto().try_par_map(pairs, |(app, instances)| {
        let workload = Workload::uniform(app, instances, 8)?;
        if workload.total_threads() > platform.core_count() {
            return Ok(None);
        }
        let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())?;
        let boost = run_boosting(&platform, &mapping, horizon, &config)?;
        let constant = run_constant(&platform, &mapping, horizon, &config)?;
        Ok(Some(Fig13Row {
            app,
            instances,
            boosting_gips: boost.average_gips_tail(0.5),
            constant_gips: constant.average_gips_tail(0.5),
            boosting_peak_power: boost.peak_power(),
            constant_peak_power: constant.peak_power(),
        }))
    })?;
    Ok(rows.into_iter().flatten().collect())
}

/// Regenerates Figure 14: STC (1 and 2 threads) vs NTC (8 threads at
/// 1 GHz) iso-performance energy for all seven applications at 11 nm,
/// 24 instances, 500 giga-instructions per instance.
///
/// # Errors
///
/// Propagates power-model failures.
pub fn fig14() -> Result<Vec<IsoPerfComparison>, Box<dyn std::error::Error>> {
    let platform = Platform::for_node(TechnologyNode::Nm11)?;
    let rows = Engine::auto().try_par_map(ParsecApp::ALL.to_vec(), |app| {
        Ok(iso_performance_comparison(&platform, app, 24, 500.0)?)
    })?;
    Ok(rows)
}

/// Total energy helper for Figure 14 summaries.
#[must_use]
pub fn fig14_total_energy(rows: &[IsoPerfComparison]) -> (Joules, Joules, Joules) {
    let ntc: Joules = rows.iter().map(|r| r.ntc.energy).sum();
    let stc1: Joules = rows.iter().map(|r| r.stc_one_thread.energy).sum();
    let stc2: Joules = rows.iter().map(|r| r.stc_two_threads.energy).sum();
    (ntc, stc1, stc2)
}

darksil_json::impl_json!(struct Table1Row { node_nm, vdd, frequency, capacitance, area, core_area_mm2 });
darksil_json::impl_json!(struct Fig2Point { voltage, frequency, region });
darksil_json::impl_json!(struct Fig3Point { frequency, measured, fitted });
darksil_json::impl_json!(struct Fig3 { points, rmse });
darksil_json::impl_json!(struct Fig4Series { app, points });
darksil_json::impl_json!(struct Fig5Cell { app, frequency, active_percent, dark_percent });
darksil_json::impl_json!(struct Fig5Panel { tdp, cells, peak_temperatures, any_violation });
darksil_json::impl_json!(struct Fig6Row { app, dark_tdp_percent, dark_thermal_percent });
darksil_json::impl_json!(struct Fig6Panel { node, frequency, rows, average_reduction_percent });
darksil_json::impl_json!(struct Fig7Row { app, nominal_gips, tuned_gips, nominal_active_percent, tuned_active_percent, chosen_threads, chosen_frequency });
darksil_json::impl_json!(struct Fig7Panel { node, rows, max_gain });
darksil_json::impl_json!(struct Fig8Pattern { name, active_cores, total_power, peak_temperature, violates, thermal_art });
darksil_json::impl_json!(struct Fig9Row { mix, tdpmap_gips, dsrem_gips, tdpmap_active_percent, dsrem_active_percent, speedup });
darksil_json::impl_json!(struct Fig10Bar { node, dark_fraction, total_gips, tsp_per_core });
darksil_json::impl_json!(struct Fig11 { boosting, constant, boosting_avg_gips, constant_avg_gips, boosting_temp_band, constant_peak_temp });
darksil_json::impl_json!(struct Fig13Row { app, instances, boosting_gips, constant_gips, boosting_peak_power, constant_peak_power });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].node_nm, 22);
        assert_eq!(rows[1].frequency, 1.35);
        assert_eq!(rows[3].area, 0.15);
        assert!((rows[1].core_area_mm2 - 5.1).abs() < 1e-9);
    }

    #[test]
    fn fig2_regions_progress() {
        let pts = fig2(40);
        assert_eq!(pts.len(), 40);
        // Low voltages are NTC, high voltages Boost.
        assert_eq!(pts[0].region, OperatingRegion::NearThreshold);
        assert_eq!(
            pts.last().expect("test value").region,
            OperatingRegion::Boost
        );
        // Monotone frequency.
        for w in pts.windows(2) {
            assert!(w[1].frequency >= w[0].frequency);
        }
    }

    #[test]
    fn fig3_fit_is_tight() {
        let f = fig3().expect("test value");
        assert_eq!(f.points.len(), 15);
        assert!(f.rmse.value() < 0.5, "rmse {}", f.rmse);
        // Fitted curve tracks measurements within noise everywhere —
        // relative in the cubic region, absolute at the watt-scale low
        // end where ±3 % noise dominates.
        for p in &f.points {
            let abs = (p.fitted.value() - p.measured.value()).abs();
            let rel = abs / p.measured.value();
            assert!(
                rel < 0.08 || abs < 0.3,
                "at {}: rel {rel}, abs {abs}",
                p.frequency
            );
        }
    }

    #[test]
    fn fig4_speedups_match_figure() {
        let series = fig4();
        assert_eq!(series.len(), 3);
        let x264 = &series[0];
        let last = x264.points.last().expect("test value");
        assert_eq!(last.0, 64);
        assert!((last.1 - 3.0).abs() < 0.3);
        // Canneal is the flattest curve.
        let canneal = &series[2];
        assert!(canneal.points.last().expect("test value").1 < 2.0);
    }

    #[test]
    fn fig10_rises_across_nodes_at_paper_fractions() {
        let bars = fig10().expect("test value");
        let pick = |node, dark: f64| {
            bars.iter()
                .find(|b| b.node == node && (b.dark_fraction - dark).abs() < 1e-9)
                .expect("test value")
                .total_gips
                .value()
        };
        let g16 = pick(TechnologyNode::Nm16, 0.20);
        let g11 = pick(TechnologyNode::Nm11, 0.30);
        let g8 = pick(TechnologyNode::Nm8, 0.40);
        assert!(g11 > g16);
        assert!(g8 > g11);
    }

    #[test]
    fn fig14_observation4() {
        let rows = fig14().expect("test value");
        assert_eq!(rows.len(), 7);
        let canneal = rows
            .iter()
            .find(|r| r.app == ParsecApp::Canneal)
            .expect("test value");
        assert!(!canneal.ntc_wins());
        let winners = rows.iter().filter(|r| r.ntc_wins()).count();
        assert!(winners >= 4, "only {winners} NTC wins");
    }
}
