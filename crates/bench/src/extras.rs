//! Extension experiments beyond the paper's figures (DESIGN.md §9).

use darksil_core::{dtm, pareto, sensitivity, DarkSiliconEstimator};
use darksil_mapping::{simulate_rotating, simulate_static, Platform};
use darksil_power::{AgingModel, TechnologyNode, VariationModel};
use darksil_units::{Hertz, Seconds, Watts};
use darksil_workload::{ParsecApp, Workload};

/// One row of the DTM-response experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmRow {
    /// The TDP admitted against.
    pub tdp: Watts,
    /// Dark percentage the budget view reports.
    pub admitted_dark_percent: f64,
    /// Dark percentage after DTM settles.
    pub sustained_dark_percent: f64,
    /// Instances DTM powered down.
    pub instances_powered_down: usize,
    /// Whether DTM fired.
    pub triggered: bool,
}

/// The hidden dark silicon of optimistic TDPs (§3.1): swaptions at
/// 16 nm / 3.6 GHz under both paper TDPs, with the DTM reaction
/// simulated.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn dtm_response() -> Result<Vec<DtmRow>, Box<dyn std::error::Error>> {
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)?;
    let mut rows = Vec::new();
    for tdp_w in [220.0, 185.0] {
        let out = dtm::simulate_dtm(
            &est,
            ParsecApp::Swaptions,
            8,
            Hertz::from_ghz(3.6),
            Watts::new(tdp_w),
        )?;
        rows.push(DtmRow {
            tdp: Watts::new(tdp_w),
            admitted_dark_percent: 100.0 * out.admitted.dark_fraction,
            sustained_dark_percent: 100.0 * out.sustained.dark_fraction,
            instances_powered_down: out.instances_powered_down,
            triggered: out.triggered,
        });
    }
    Ok(rows)
}

/// Result of the wear-leveling experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingComparison {
    /// Simulated epochs.
    pub epochs: usize,
    /// Epoch length in hours.
    pub epoch_hours: f64,
    /// Maximum per-core wear under a fixed placement.
    pub static_max_wear: f64,
    /// Maximum per-core wear with least-worn-first rotation.
    pub rotating_max_wear: f64,
    /// Wear imbalance (max/mean) under a fixed placement.
    pub static_imbalance: f64,
    /// Wear imbalance with rotation.
    pub rotating_imbalance: f64,
}

impl AgingComparison {
    /// Lifetime extension factor implied by the lower maximum wear.
    #[must_use]
    pub fn lifetime_gain(&self) -> f64 {
        self.static_max_wear / self.rotating_max_wear
    }
}

/// Wear-leveling rotation vs fixed placement (the Hayat use of dark
/// silicon): 56 of 100 cores active at 16 nm, 24 one-hour epochs.
///
/// # Errors
///
/// Propagates placement/thermal failures.
pub fn aging_rotation() -> Result<AgingComparison, Box<dyn std::error::Error>> {
    let platform = Platform::for_node(TechnologyNode::Nm16)?;
    let workload = Workload::uniform(ParsecApp::X264, 7, 8)?;
    let level = platform.max_level();
    let model = AgingModel::nbti_like();
    let epoch = Seconds::new(3600.0);
    let epochs = 24;
    let fixed = simulate_static(&platform, &workload, level, &model, epoch, epochs)?;
    let rotated = simulate_rotating(&platform, &workload, level, &model, epoch, epochs)?;
    Ok(AgingComparison {
        epochs,
        epoch_hours: 1.0,
        static_max_wear: fixed.max_wear(),
        rotating_max_wear: rotated.max_wear(),
        static_imbalance: fixed.imbalance(),
        rotating_imbalance: rotated.imbalance(),
    })
}

/// One row of the variability experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariabilityRow {
    /// RNG seed of the sampled chip.
    pub seed: u64,
    /// Total power when the lowest-leakage cores are lit.
    pub best_pick_power: Watts,
    /// Total power when the leakiest cores are lit.
    pub worst_pick_power: Watts,
    /// Relative saving of the variability-aware pick.
    pub saving_percent: f64,
}

/// Variability-aware core picking on sampled chips: the same workload
/// mapped onto the least- vs most-leaky cores (DaSim's variability
/// angle).
///
/// # Errors
///
/// Propagates placement/thermal failures.
pub fn variability_savings(
    chips: usize,
) -> Result<Vec<VariabilityRow>, Box<dyn std::error::Error>> {
    use darksil_floorplan::CoreId;
    use darksil_mapping::{pick_low_leakage, MappedInstance, Mapping};
    use darksil_units::Celsius;

    let mut rows = Vec::new();
    for seed in 0..chips as u64 {
        let platform = Platform::for_node(TechnologyNode::Nm16)?
            .with_variation(VariationModel::typical(seed + 1));
        let workload = Workload::uniform(ParsecApp::Swaptions, 6, 8)?;
        let n = workload.total_threads();
        let best = pick_low_leakage(&platform, n);
        let order = platform.variation().cores_by_leakage();
        let worst: Vec<CoreId> = order.iter().rev().take(n).map(|&i| CoreId(i)).collect();

        let power_of = |cores: &[CoreId]| -> Result<Watts, Box<dyn std::error::Error>> {
            let mut mapping = Mapping::new(platform.core_count());
            let mut it = cores.iter().copied();
            for instance in &workload {
                let assigned: Vec<CoreId> = it.by_ref().take(instance.threads()).collect();
                mapping.push(MappedInstance {
                    instance: *instance,
                    cores: assigned,
                    level: platform.max_level(),
                })?;
            }
            let map = mapping.steady_temperatures(&platform)?;
            let temps: Vec<Celsius> = map.die_temperatures().collect();
            Ok(mapping.power_map_at(&platform, &temps).iter().sum())
        };
        let best_pick_power = power_of(&best)?;
        let worst_pick_power = power_of(&worst)?;
        rows.push(VariabilityRow {
            seed: seed + 1,
            best_pick_power,
            worst_pick_power,
            saving_percent: 100.0 * (1.0 - best_pick_power / worst_pick_power),
        });
    }
    Ok(rows)
}

/// Dark silicon vs cooling solution: the paper's desktop package
/// bracketed by laptop and server sinks, plus a convection-resistance
/// sweep (swaptions at 16 nm / 3.6 GHz, temperature-constrained).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn cooling_sensitivity() -> Result<
    (
        Vec<sensitivity::PackagePoint>,
        Vec<sensitivity::CoolingPoint>,
    ),
    Box<dyn std::error::Error>,
> {
    let packages = sensitivity::package_comparison(TechnologyNode::Nm16, ParsecApp::Swaptions)?;
    let sweep = sensitivity::cooling_sweep(
        TechnologyNode::Nm16,
        ParsecApp::Swaptions,
        Hertz::from_ghz(3.6),
        &[0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6],
    )?;
    Ok((packages, sweep))
}

/// The §3.3 configuration space for x264 at 16 nm and its thermally
/// feasible performance/power Pareto frontier.
///
/// # Errors
///
/// Propagates mapping/thermal failures.
pub fn pareto_x264(
) -> Result<(Vec<pareto::ConfigPoint>, Vec<pareto::ConfigPoint>), Box<dyn std::error::Error>> {
    let platform = Platform::for_node(TechnologyNode::Nm16)?;
    let points = pareto::explore(&platform, ParsecApp::X264, 2)?;
    let frontier = pareto::pareto_frontier(&points);
    Ok((points, frontier))
}

darksil_json::impl_json!(struct DtmRow { tdp, admitted_dark_percent, sustained_dark_percent, instances_powered_down, triggered });
darksil_json::impl_json!(struct AgingComparison { epochs, epoch_hours, static_max_wear, rotating_max_wear, static_imbalance, rotating_imbalance });
darksil_json::impl_json!(struct VariabilityRow { seed, best_pick_power, worst_pick_power, saving_percent });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtm_rows_tell_the_section31_story() {
        let rows = dtm_response().expect("test value");
        assert_eq!(rows.len(), 2);
        let optimistic = &rows[0];
        assert!(optimistic.triggered);
        assert!(optimistic.sustained_dark_percent > optimistic.admitted_dark_percent);
        let pessimistic = &rows[1];
        assert!(!pessimistic.triggered);
    }

    #[test]
    fn rotation_extends_lifetime() {
        let cmp = aging_rotation().expect("test value");
        assert!(cmp.lifetime_gain() > 1.05, "gain {}", cmp.lifetime_gain());
        assert!(cmp.rotating_imbalance < cmp.static_imbalance);
    }

    #[test]
    fn cooling_dominates_dark_silicon() {
        let (packages, sweep) = cooling_sensitivity().expect("test value");
        assert_eq!(packages.len(), 3);
        assert!(packages[0].dark_fraction > packages[2].dark_fraction);
        assert!(sweep.last().expect("test value").dark_fraction > sweep[0].dark_fraction);
    }

    #[test]
    fn pareto_frontier_exists_and_spans_thread_counts() {
        let (points, frontier) = pareto_x264().expect("test value");
        assert!(points.len() > 30);
        assert!(frontier.len() >= 3);
        let kinds: std::collections::BTreeSet<usize> = frontier.iter().map(|p| p.threads).collect();
        assert!(kinds.len() >= 2, "{kinds:?}");
    }

    #[test]
    fn variability_savings_are_positive() {
        let rows = variability_savings(3).expect("test value");
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.saving_percent > 0.0,
                "seed {}: {}",
                r.seed,
                r.saving_percent
            );
        }
    }
}
