//! Figure/table regeneration for the DAC'15 dark-silicon paper.
//!
//! One public function per table and figure of the paper's evaluation,
//! each returning a serializable data structure with exactly the
//! rows/series the paper plots. The `repro` binary prints them as text
//! tables (and JSON via `--json`); the Criterion benches in `benches/`
//! time the computational kernels behind each figure.
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`table1`]  | Figure 1's scaling-factor table |
//! | [`fig2`]    | f–V curve with NTC/STC/Boost regions |
//! | [`fig3`]    | Eq. (1) fit vs McPAT-style samples |
//! | [`fig4`]    | speed-up vs threads |
//! | [`fig5`]    | dark silicon under two TDPs vs frequency |
//! | [`fig6`]    | TDP- vs temperature-constrained dark silicon |
//! | [`fig7`]    | DVFS scenarios (performance + active cores) |
//! | [`fig8`]    | mapping patterns and thermal profiles |
//! | [`fig9`]    | DsRem vs TDPmap |
//! | [`fig10`]   | performance under TSP across nodes |
//! | [`fig11`]   | transient boosting vs constant frequency |
//! | [`fig12`]   | performance/power vs active cores |
//! | [`fig13`]   | boosting vs constant across applications |
//! | [`fig14`]   | STC vs NTC iso-performance energy |
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod extras;
pub mod figures;
pub mod journal;

pub use extras::*;
pub use figures::*;
pub use journal::{
    ArtefactState, Journal, JournalCounts, JournalEntry, DEFAULT_JOURNAL_PATH, JOURNAL_SCHEMA,
};
