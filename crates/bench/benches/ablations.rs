//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! CG vs dense LU, Jacobi preconditioning, backward Euler vs RK4,
//! blind-spread vs thermally optimised patterning, and the
//! leakage-temperature loop vs a single cold-leakage solve.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darksil_floorplan::Floorplan;
use darksil_mapping::{optimize_pattern, spread_cores, Platform};
use darksil_numerics::ode::LinearOde;
use darksil_numerics::{conjugate_gradient, CgOptions, TripletMatrix};
use darksil_power::TechnologyNode;
use darksil_thermal::{PackageConfig, ThermalModel};
use darksil_units::{SquareMillimeters, Watts};
use std::hint::black_box;

fn thermal_setup(cores: usize) -> (ThermalModel, Vec<Watts>) {
    // Node-appropriate core areas so every chip fits the 3 cm spreader.
    let area = match cores {
        0..=100 => 5.1,
        101..=198 => 2.7,
        _ => 1.4,
    };
    let plan = Floorplan::squarish(cores, SquareMillimeters::new(area)).unwrap();
    let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
    let power: Vec<Watts> = (0..cores)
        .map(|i| {
            if i % 3 != 0 {
                Watts::new(2.5)
            } else {
                Watts::zero()
            }
        })
        .collect();
    (model, power)
}

/// CG vs pre-factored dense LU for steady-state solves. LU pays a large
/// factorisation cost but each subsequent solve is O(n²); CG re-solves
/// from scratch. The crossover justifies using the prefactored solver
/// for sweeps and CG for one-shots.
fn bench_cg_vs_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cg_vs_lu");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);

    for cores in [100_usize, 198] {
        let (model, power) = thermal_setup(cores);
        g.bench_with_input(BenchmarkId::new("cg_solve", cores), &cores, |b, _| {
            b.iter(|| black_box(model.steady_state(&power).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("lu_factor_once", cores), &cores, |b, _| {
            b.iter(|| black_box(model.prefactored().unwrap()));
        });
        let solver = model.prefactored().unwrap();
        g.bench_with_input(BenchmarkId::new("lu_resolve", cores), &cores, |b, _| {
            b.iter(|| black_box(solver.solve(&power).unwrap()));
        });
    }
    g.finish();
}

/// Jacobi preconditioning on vs off for the thermal conductance matrix.
fn bench_preconditioner(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_jacobi");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));

    let (model, power) = thermal_setup(100);
    let rhs: Vec<f64> = {
        // Rebuild the rhs the way the model does: P + G_amb·T_amb.
        let mut r: Vec<f64> = model
            .ambient_conductances()
            .iter()
            .map(|gv| gv * model.ambient().value())
            .collect();
        for (ri, p) in r.iter_mut().zip(&power) {
            *ri += p.value();
        }
        r
    };
    for jacobi in [true, false] {
        let opts = CgOptions {
            jacobi_preconditioner: jacobi,
            ..CgOptions::default()
        };
        g.bench_with_input(
            BenchmarkId::new("cg", if jacobi { "jacobi" } else { "plain" }),
            &jacobi,
            |b, _| {
                b.iter(|| black_box(conjugate_gradient(model.conductance(), &rhs, &opts).unwrap()));
            },
        );
    }
    g.finish();
}

/// Backward Euler (one implicit solve) vs RK4 (four explicit
/// evaluations) per step on the stiff thermal system. RK4 steps are
/// cheaper but need ~1000× smaller dt for stability; this measures the
/// raw per-step cost behind that trade-off.
fn bench_be_vs_rk4(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_be_vs_rk4");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));

    let (model, power) = thermal_setup(100);
    let n = model.node_count();
    let mut t = TripletMatrix::new(n, n);
    for (r, cidx, v) in model.conductance().iter() {
        t.add(r, cidx, v);
    }
    let ode = LinearOde::new(t.to_csr(), model.capacitances().to_vec()).unwrap();
    let b_vec: Vec<f64> = {
        let mut r: Vec<f64> = model
            .ambient_conductances()
            .iter()
            .map(|gv| gv * model.ambient().value())
            .collect();
        for (ri, p) in r.iter_mut().zip(&power) {
            *ri += p.value();
        }
        r
    };
    let x0 = vec![45.0; n];

    g.bench_function("backward_euler_step_1ms", |bch| {
        let stepper = ode.backward_euler(1.0e-3).unwrap();
        bch.iter(|| black_box(stepper.step(&x0, &b_vec).unwrap()));
    });
    g.bench_function("rk4_step_1us", |bch| {
        bch.iter(|| black_box(ode.rk4_step(&x0, &b_vec, 1.0e-6)));
    });
    g.finish();
}

/// Blind R2 spread vs the greedy thermally optimised pattern.
fn bench_patterning(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_patterning");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);

    let platform = Platform::for_node(TechnologyNode::Nm16).unwrap();
    g.bench_function("blind_spread_60", |b| {
        b.iter(|| black_box(spread_cores(platform.floorplan(), 60)));
    });
    g.bench_function("optimized_pattern_60", |b| {
        b.iter(|| black_box(optimize_pattern(&platform, 60, Watts::new(3.77), 100).unwrap()));
    });
    g.finish();
}

/// Block model vs grid-mode subdivision: solve cost at s = 1, 2, 3.
fn bench_subdivision(c: &mut Criterion) {
    use darksil_thermal::PackageConfig as Pkg;
    let mut g = c.benchmark_group("ablation_subdivision");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);

    let plan = Floorplan::squarish(100, SquareMillimeters::new(5.1)).unwrap();
    let power: Vec<Watts> = (0..100)
        .map(|i| {
            if i % 2 == 0 {
                Watts::new(3.0)
            } else {
                Watts::zero()
            }
        })
        .collect();
    for s in [1_usize, 2, 3] {
        let model =
            darksil_thermal::ThermalModel::with_subdivision(&plan, Pkg::paper_dac15(), s).unwrap();
        g.bench_with_input(BenchmarkId::new("steady_state", s), &s, |b, _| {
            b.iter(|| black_box(model.steady_state(&power).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_cg_vs_lu,
    bench_preconditioner,
    bench_be_vs_rk4,
    bench_patterning,
    bench_subdivision
);
criterion_main!(ablations);
