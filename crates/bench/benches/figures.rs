//! Criterion benchmarks of the figure-regeneration pipelines.
//!
//! One group per paper artefact. The heavy transient figures (11–13)
//! are benchmarked at reduced horizons — the timing interest is in the
//! per-second simulation cost, which scales linearly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use darksil_bench::Fidelity;
use std::hint::black_box;

fn bench_static_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_figures");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));

    g.bench_function("table1", |b| b.iter(|| black_box(darksil_bench::table1())));
    g.bench_function("fig2", |b| b.iter(|| black_box(darksil_bench::fig2(27))));
    g.bench_function("fig3_sample_and_fit", |b| {
        b.iter(|| black_box(darksil_bench::fig3().unwrap()));
    });
    g.bench_function("fig4", |b| b.iter(|| black_box(darksil_bench::fig4())));
    g.finish();
}

fn bench_estimation_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimation_figures");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);

    g.bench_function("fig5_dark_silicon_panels", |b| {
        b.iter(|| black_box(darksil_bench::fig5().unwrap()));
    });
    g.bench_function("fig6_constraint_comparison", |b| {
        b.iter(|| black_box(darksil_bench::fig6().unwrap()));
    });
    g.bench_function("fig7_dvfs_scenarios", |b| {
        b.iter(|| black_box(darksil_bench::fig7().unwrap()));
    });
    g.bench_function("fig8_patterning", |b| {
        b.iter(|| black_box(darksil_bench::fig8().unwrap()));
    });
    g.bench_function("fig9_dsrem_vs_tdpmap", |b| {
        b.iter(|| black_box(darksil_bench::fig9().unwrap()));
    });
    g.bench_function("fig10_tsp_performance", |b| {
        b.iter(|| black_box(darksil_bench::fig10().unwrap()));
    });
    g.bench_function("fig14_stc_vs_ntc", |b| {
        b.iter(|| black_box(darksil_bench::fig14().unwrap()));
    });
    g.finish();
}

fn bench_transient_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("transient_figures");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);

    g.bench_function("fig11_quick", |b| {
        b.iter(|| black_box(darksil_bench::fig11(Fidelity::Quick).unwrap()));
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_static_figures,
    bench_estimation_figures,
    bench_transient_figures
);
criterion_main!(figures);
