//! Criterion benchmarks of the computational kernels behind the
//! figures: thermal solves at each chip size, transient stepping, power
//! evaluation, TSP computation and mapping policies.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darksil_floorplan::Floorplan;
use darksil_mapping::{place_patterned, DsRem, Platform, TdpMap};
use darksil_power::{CorePowerModel, TechnologyNode};
use darksil_thermal::{PackageConfig, ThermalModel, TransientSim};
use darksil_tsp::TspCalculator;
use darksil_units::{Celsius, Hertz, Seconds, SquareMillimeters, Watts};
use darksil_workload::{ParsecApp, Workload};
use std::hint::black_box;

fn bench_thermal_steady(c: &mut Criterion) {
    let mut g = c.benchmark_group("thermal_steady_state");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));

    for cores in [100_usize, 198, 361] {
        // Node-appropriate core areas: 5.1 / 2.7 / 1.4 mm².
        let area = match cores {
            100 => 5.1,
            198 => 2.7,
            _ => 1.4,
        };
        let plan = Floorplan::squarish(cores, SquareMillimeters::new(area)).unwrap();
        let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
        let power: Vec<Watts> = (0..cores)
            .map(|i| {
                if i % 2 == 0 {
                    Watts::new(3.0)
                } else {
                    Watts::zero()
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("cg", cores), &cores, |b, _| {
            b.iter(|| black_box(model.steady_state(&power).unwrap()));
        });
    }
    g.finish();
}

fn bench_thermal_transient(c: &mut Criterion) {
    let mut g = c.benchmark_group("thermal_transient_step");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));

    for cores in [100_usize, 361] {
        let area = if cores == 100 { 5.1 } else { 1.4 };
        let plan = Floorplan::squarish(cores, SquareMillimeters::new(area)).unwrap();
        let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
        let power = vec![Watts::new(2.0); cores];
        g.bench_with_input(
            BenchmarkId::new("backward_euler_1ms", cores),
            &cores,
            |b, _| {
                let mut sim = TransientSim::new(&model, Seconds::new(1.0e-3)).unwrap();
                b.iter(|| black_box(sim.step(&power).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_power_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("power_model");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));

    let model = CorePowerModel::x264_22nm().scaled_to(TechnologyNode::Nm16);
    let f = Hertz::from_ghz(3.6);
    let t = Celsius::new(70.0);
    g.bench_function("eq1_at_frequency", |b| {
        b.iter(|| black_box(model.power_at_frequency(0.85, f, t).unwrap()));
    });
    let vf = *model.vf();
    g.bench_function("eq2_voltage_for", |b| {
        b.iter(|| black_box(vf.voltage_for(f).unwrap()));
    });
    g.finish();
}

fn bench_tsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsp");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);

    let plan = Floorplan::squarish(100, TechnologyNode::Nm16.core_area()).unwrap();
    let model = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
    let tsp = TspCalculator::new(&plan, &model, Celsius::new(80.0));
    g.bench_function("worst_case_60_of_100", |b| {
        b.iter(|| black_box(tsp.worst_case(60).unwrap()));
    });
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapping_policies");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);

    let platform = Platform::for_node(TechnologyNode::Nm16).unwrap();
    let workload = Workload::parsec_mix(14, 8).unwrap();
    g.bench_function("tdpmap", |b| {
        let policy = TdpMap::new(Watts::new(185.0));
        b.iter(|| black_box(policy.map(&platform, &workload).unwrap()));
    });
    g.bench_function("dsrem", |b| {
        let policy = DsRem::new(Watts::new(185.0)).expect("valid budget");
        b.iter(|| black_box(policy.map(&platform, &workload).unwrap()));
    });
    g.bench_function("leakage_fixed_point", |b| {
        let mapping = place_patterned(
            platform.floorplan(),
            &Workload::uniform(ParsecApp::X264, 7, 8).unwrap(),
            platform.max_level(),
        )
        .unwrap();
        b.iter(|| black_box(mapping.steady_temperatures(&platform).unwrap()));
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_thermal_steady,
    bench_thermal_transient,
    bench_power_model,
    bench_tsp,
    bench_policies
);
criterion_main!(kernels);
