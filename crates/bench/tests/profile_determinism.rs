//! `repro --profile` must never change what the harness computes: the
//! artefact payloads have to be byte-identical with profiling on or
//! off, at any worker count, while the profile run additionally emits
//! the trace and baseline reports.

use std::fs;
use std::path::Path;
use std::process::Command;

/// Runs the `repro` binary in `work_dir` and asserts it succeeded.
fn repro(work_dir: &Path, args: &[&str]) {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .current_dir(work_dir)
        .output()
        .expect("repro binary runs");
    assert!(
        output.status.success(),
        "repro {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

/// Collects `name → bytes` for every artefact file in a `--json`
/// output directory. `error_report.json` is run diagnostics (wall-clock
/// timings), not an artefact payload — it differs between any two runs,
/// profiled or not, so it is excluded from the byte comparison.
fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("artefact dir exists")
        .filter_map(|entry| {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == "error_report.json" {
                return None;
            }
            let bytes = fs::read(entry.path()).expect("artefact readable");
            Some((name, bytes))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

#[test]
fn profile_flag_never_changes_artefact_bytes() {
    let root = std::env::temp_dir().join(format!("darksil-profile-det-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let plain = root.join("plain");
    let profiled = root.join("profiled");
    fs::create_dir_all(&plain).expect("mkdir plain");
    fs::create_dir_all(&profiled).expect("mkdir profiled");

    // Same artefact, profiling off at --jobs 1 vs on at --jobs 2: any
    // difference in the payload bytes is a determinism bug.
    repro(
        &plain,
        &["table1", "--no-cache", "--jobs", "1", "--json", "out"],
    );
    repro(
        &profiled,
        &[
            "table1",
            "--no-cache",
            "--jobs",
            "2",
            "--profile",
            "--json",
            "out",
        ],
    );

    let a = dir_bytes(&plain.join("out"));
    let b = dir_bytes(&profiled.join("out"));
    assert!(!a.is_empty(), "plain run produced no artefacts");
    assert_eq!(
        a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "artefact file sets differ"
    );
    for ((name, plain_bytes), (_, profiled_bytes)) in a.iter().zip(&b) {
        assert_eq!(
            plain_bytes, profiled_bytes,
            "artefact '{name}' differs between --profile off and on"
        );
    }

    // Profiling off writes no trace; profiling on writes both reports.
    assert!(
        !plain.join("results/trace_repro.json").exists(),
        "trace written without --profile"
    );
    let trace_text =
        fs::read_to_string(profiled.join("results/trace_repro.json")).expect("trace written");
    let trace: darksil_obs::Trace = darksil_json::from_str(&trace_text).expect("trace parses");
    assert!(
        trace.spans.iter().any(|s| s.name == "repro.run"),
        "root span missing"
    );
    assert!(
        trace.spans.iter().any(|s| s.name == "artefact.table1"),
        "artefact span missing"
    );

    let bench_text =
        fs::read_to_string(profiled.join("BENCH_repro.json")).expect("baseline written");
    let baseline: darksil_obs::BenchBaseline =
        darksil_json::from_str(&bench_text).expect("baseline parses");
    assert_eq!(baseline.jobs, 2);
    assert_eq!(baseline.selection, "table1");
    assert!(baseline.total_seconds > 0.0);
    assert!(baseline.max_total_seconds >= baseline.total_seconds);
    assert!(
        baseline.phases.iter().any(|p| p.span == "artefact.table1"),
        "baseline lacks the artefact phase"
    );
    // A fresh report never regresses against itself.
    assert!(baseline.regressions_in(&baseline).is_empty());

    let _ = fs::remove_dir_all(&root);
}
