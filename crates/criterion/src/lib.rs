//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim under the same name. It implements the
//! surface the darksil benches use — groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, warm-up/measurement knobs and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock timer printing mean/min per benchmark. No statistics,
//! plots, or baselines.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = name.into();
        println!("group {group}");
        let (warm_up, measurement) = (self.warm_up, self.measurement);
        BenchmarkGroup {
            _parent: self,
            name: group,
            warm_up,
            measurement,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.warm_up, self.measurement, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing timing knobs.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for compatibility; the shim's timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.warm_up, self.measurement, &mut f);
        self
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I, F, P>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, self.warm_up, self.measurement, &mut wrapped);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A function + parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function.into()),
        }
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Handed to each benchmark closure; [`Bencher::iter`] times the work.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// (iterations, total elapsed) recorded by `iter`.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, running it repeatedly for the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also yields a rough per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measurement || iters == 0 {
            black_box(f());
            iters += 1;
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((iters, elapsed)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "  {label}: {} per iter ({iters} iters)",
                human_time(per_iter)
            );
        }
        None => println!("  {label}: no measurement recorded"),
    }
}

fn human_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(2));
        g.sample_size(10);
        let mut hits = 0_u64;
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &3_u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
        hits += 1;
        assert_eq!(hits, 1);
    }

    #[test]
    fn human_time_scales() {
        assert!(human_time(2.0).ends_with(" s"));
        assert!(human_time(2e-3).ends_with(" ms"));
        assert!(human_time(2e-6).contains("µs"));
        assert!(human_time(2e-9).ends_with(" ns"));
    }
}
