//! Property tests for the power models.

use darksil_power::{
    CorePowerModel, DvfsTable, LeakageModel, TechnologyNode, VariationModel, VfRelation,
};
use darksil_units::{Celsius, Hertz, Volts};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechnologyNode> {
    (0_usize..4).prop_map(|i| TechnologyNode::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eq2_frequency_monotone_in_voltage(node in any_node(), v in 0.2_f64..1.5, dv in 0.001_f64..0.2) {
        let vf = VfRelation::for_node(node);
        let f1 = vf.frequency_at(Volts::new(v));
        let f2 = vf.frequency_at(Volts::new(v + dv));
        prop_assert!(f2 >= f1);
    }

    #[test]
    fn eq2_voltage_is_minimal(node in any_node(), ghz in 0.1_f64..4.5) {
        // The voltage returned for f sustains f, and a slightly lower
        // voltage does not.
        let vf = VfRelation::for_node(node);
        let f = Hertz::from_ghz(ghz);
        let v = vf.voltage_for(f).unwrap();
        prop_assert!(vf.frequency_at(v) >= f - Hertz::new(1.0));
        let v_less = Volts::new(v.value() * 0.995);
        prop_assert!(vf.frequency_at(v_less) < f);
    }

    #[test]
    fn scaling_reduces_iso_frequency_power(ghz in 0.3_f64..2.5, t in 40.0_f64..85.0) {
        // At any common frequency, each smaller node draws less power
        // than its predecessor (lower C, lower V for the same f).
        let temp = Celsius::new(t);
        let f = Hertz::from_ghz(ghz);
        let mut last = f64::INFINITY;
        for node in TechnologyNode::ALL {
            let m = CorePowerModel::x264_22nm().scaled_to(node);
            let p = m.power_at_frequency(1.0, f, temp).unwrap().value();
            prop_assert!(p < last, "{node}: {p} >= {last}");
            last = p;
        }
    }

    #[test]
    fn breakdown_components_are_nonnegative_and_sum(
        alpha in 0.0_f64..1.0,
        v in 0.2_f64..1.4,
        ghz in 0.0_f64..4.0,
        t in 0.0_f64..100.0,
    ) {
        let m = CorePowerModel::x264_22nm();
        let b = m.breakdown(alpha, Volts::new(v), Hertz::from_ghz(ghz), Celsius::new(t));
        prop_assert!(b.dynamic.value() >= 0.0);
        prop_assert!(b.leakage.value() >= 0.0);
        prop_assert!(b.independent.value() >= 0.0);
        let total = m.power(alpha, Volts::new(v), Hertz::from_ghz(ghz), Celsius::new(t));
        prop_assert!((b.total().value() - total.value()).abs() < 1e-12);
    }

    #[test]
    fn leakage_shape_scales_linearly_in_i0(
        scale in 0.1_f64..4.0,
        v in 0.3_f64..1.3,
        t in 20.0_f64..100.0,
    ) {
        let base = LeakageModel::alpha_core_22nm();
        let scaled = base.with_i0_scaled(scale);
        let i_base = base.current(Volts::new(v), Celsius::new(t)).value();
        let i_scaled = scaled.current(Volts::new(v), Celsius::new(t)).value();
        prop_assert!((i_scaled - scale * i_base).abs() < 1e-12 * (1.0 + i_scaled));
    }

    #[test]
    fn dvfs_floor_is_sound(node in any_node(), ghz in 0.05_f64..5.0) {
        let vf = VfRelation::for_node(node);
        let table = DvfsTable::standard(&vf, node.nominal_max_frequency()).unwrap();
        let f = Hertz::from_ghz(ghz);
        match table.floor(f) {
            Some(level) => {
                prop_assert!(level.frequency <= f + Hertz::from_mhz(1.0));
                // And it is the *highest* such level.
                let idx = table.floor_index(f).unwrap();
                if let Some(next) = table.get(idx + 1) {
                    prop_assert!(next.frequency > f);
                }
            }
            None => prop_assert!(f < table.min_level().unwrap().frequency),
        }
    }

    #[test]
    fn fit_round_trips_random_models(
        ceff_nf in 0.5_f64..4.0,
        pind in 0.0_f64..1.0,
        i0_scale in 0.2_f64..3.0,
    ) {
        // Build a random ground truth, sample it noise-free over varied
        // (α, f, T), and recover the coefficients.
        let truth = CorePowerModel::new(
            darksil_units::Farads::new(ceff_nf * 1e-9),
            LeakageModel::alpha_core_22nm().with_i0_scaled(i0_scale),
            darksil_units::Watts::new(pind),
            VfRelation::paper_22nm(),
        )
        .unwrap();
        let mut samples = Vec::new();
        for (i, ghz) in (0..12).map(|i| (i, 0.5 + 0.3 * i as f64)) {
            let f = Hertz::from_ghz(ghz);
            let v = truth.vf().voltage_for(f).unwrap();
            let t = Celsius::new(45.0 + (i * 7 % 40) as f64);
            let alpha = [1.0, 0.6, 0.3][i % 3];
            samples.push(darksil_power::PowerSample {
                alpha,
                vdd: v,
                frequency: f,
                temperature: t,
                power: truth.power(alpha, v, f, t),
            });
        }
        let fitted = CorePowerModel::fit(
            &samples,
            &LeakageModel::alpha_core_22nm(),
            VfRelation::paper_22nm(),
        )
        .unwrap();
        let rel = (fitted.ceff().value() - truth.ceff().value()).abs() / truth.ceff().value();
        prop_assert!(rel < 1e-6, "ceff off by {rel}");
        prop_assert!((fitted.p_ind().value() - pind).abs() < 1e-6);
    }

    #[test]
    fn variation_maps_preserve_mean_leakage(seed in 0_u64..1000) {
        let map = VariationModel::typical(seed).generate(2000);
        let mean = map.mean_leakage();
        prop_assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        prop_assert!(map.leakage_factors().iter().all(|&f| f > 0.0));
    }
}
