//! The frequency/voltage relation of Eq. (2) and operating regions.

use darksil_units::{Hertz, Volts};

use crate::{PowerError, TechnologyNode};

/// Default boundary between the near-threshold (NTC) and
/// super-threshold (STC) regions, in volts (Figure 2 draws it around
/// 0.55 V for the 22 nm curve; NTC work such as Pinckney et al. uses
/// voltages near 0.4–0.55 V).
pub const DEFAULT_NTC_LIMIT_VOLTS: f64 = 0.55;

/// Classification of an operating point per Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingRegion {
    /// Near-Threshold Computing: supply close to `Vth`.
    NearThreshold,
    /// Conventional super-threshold DVFS range.
    SuperThreshold,
    /// Above the nominal maximum — boosting territory.
    Boost,
}

impl std::fmt::Display for OperatingRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::NearThreshold => "NTC",
            Self::SuperThreshold => "STC",
            Self::Boost => "Boost",
        };
        f.write_str(s)
    }
}

/// The maximum-stable-frequency relation of Eq. (2):
/// `f = k·(V − Vth)² / V`, optionally composed with the Figure 1
/// technology scaling (voltage and frequency multipliers).
///
/// The physical meaning (§2.2): for a supply voltage there is a maximum
/// stable frequency; conversely, running a required frequency at any
/// voltage above [`VfRelation::voltage_for`] wastes power. All
/// frequency/voltage pairs used in the workspace therefore come from
/// this relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfRelation {
    /// Fitting factor `k` in GHz/V (3.7 at 22 nm, from Grenat et al.).
    k_ghz_per_volt: f64,
    /// Threshold voltage at the *base* (22 nm) node.
    vth_volts: f64,
    /// Voltage multiplier applied on top of the base relation.
    voltage_scale: f64,
    /// Frequency multiplier applied on top of the base relation.
    frequency_scale: f64,
    /// Nominal maximum frequency in GHz; above it the operating point is
    /// classified as [`OperatingRegion::Boost`].
    nominal_max_ghz: f64,
    /// NTC/STC boundary in (scaled) volts.
    ntc_limit_volts: f64,
}

impl VfRelation {
    /// The paper's 22 nm relation: `k = 3.7`, `Vth = 178 mV` (Figure 2).
    #[must_use]
    pub fn paper_22nm() -> Self {
        Self {
            k_ghz_per_volt: 3.7,
            vth_volts: 0.178,
            voltage_scale: 1.0,
            frequency_scale: 1.0,
            nominal_max_ghz: TechnologyNode::Nm22.nominal_max_frequency().as_ghz(),
            ntc_limit_volts: DEFAULT_NTC_LIMIT_VOLTS,
        }
    }

    /// The paper's relation projected to `node` using the Figure 1
    /// voltage and frequency factors: `f_n(V) = s_f · f22(V / s_v)`.
    #[must_use]
    pub fn for_node(node: TechnologyNode) -> Self {
        let s = node.scaling();
        Self {
            voltage_scale: s.vdd,
            frequency_scale: s.frequency,
            nominal_max_ghz: node.nominal_max_frequency().as_ghz(),
            ntc_limit_volts: DEFAULT_NTC_LIMIT_VOLTS * s.vdd,
            ..Self::paper_22nm()
        }
    }

    /// Builds a custom relation.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive or
    /// non-finite `k`/`vth`.
    pub fn new(k_ghz_per_volt: f64, vth: Volts) -> Result<Self, PowerError> {
        if k_ghz_per_volt <= 0.0 || !k_ghz_per_volt.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "k",
                value: k_ghz_per_volt,
            });
        }
        if vth.value() <= 0.0 || !vth.value().is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "vth",
                value: vth.value(),
            });
        }
        Ok(Self {
            k_ghz_per_volt,
            vth_volts: vth.value(),
            voltage_scale: 1.0,
            frequency_scale: 1.0,
            nominal_max_ghz: TechnologyNode::Nm22.nominal_max_frequency().as_ghz(),
            ntc_limit_volts: DEFAULT_NTC_LIMIT_VOLTS,
        })
    }

    /// Returns a copy with a different nominal maximum frequency
    /// (the Boost-region boundary).
    #[must_use]
    pub fn with_nominal_max(mut self, f: Hertz) -> Self {
        self.nominal_max_ghz = f.as_ghz();
        self
    }

    /// The threshold voltage after scaling.
    #[must_use]
    pub fn threshold_voltage(&self) -> Volts {
        Volts::new(self.vth_volts * self.voltage_scale)
    }

    /// The nominal maximum (non-boost) frequency.
    #[must_use]
    pub fn nominal_max_frequency(&self) -> Hertz {
        Hertz::from_ghz(self.nominal_max_ghz)
    }

    /// Maximum stable frequency at supply voltage `v` (Eq. (2)).
    /// Voltages at or below the (scaled) threshold yield zero.
    #[must_use]
    pub fn frequency_at(&self, v: Volts) -> Hertz {
        let v_base = v.value() / self.voltage_scale;
        if v_base <= self.vth_volts {
            return Hertz::zero();
        }
        let f_base_ghz = self.k_ghz_per_volt * (v_base - self.vth_volts).powi(2) / v_base;
        Hertz::from_ghz(f_base_ghz * self.frequency_scale)
    }

    /// Minimum supply voltage able to sustain frequency `f` — the
    /// inverse of Eq. (2), taking the super-threshold root of
    /// `k·V² − (2·k·Vth + f)·V + k·Vth² = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::FrequencyOutOfRange`] for negative or
    /// non-finite frequencies.
    pub fn voltage_for(&self, f: Hertz) -> Result<Volts, PowerError> {
        let f_ghz = f.as_ghz();
        if f_ghz < 0.0 || !f_ghz.is_finite() {
            return Err(PowerError::FrequencyOutOfRange { ghz: f_ghz });
        }
        let f_base = f_ghz / self.frequency_scale;
        let k = self.k_ghz_per_volt;
        let vth = self.vth_volts;
        let b = 2.0 * k * vth + f_base;
        // disc = f_base² + 4·k·vth·f_base ≥ 0 algebraically for
        // f_base ≥ 0; clamp away the last-ulp negative at f = 0.
        let disc = (b * b - 4.0 * k * k * vth * vth).max(0.0);
        let v_base = (b + disc.sqrt()) / (2.0 * k);
        Ok(Volts::new(v_base * self.voltage_scale))
    }

    /// Classifies an operating voltage into NTC / STC / Boost regions
    /// (Figure 2). The Boost region is defined by exceeding the nominal
    /// maximum frequency.
    #[must_use]
    pub fn region_of(&self, v: Volts) -> OperatingRegion {
        if self.frequency_at(v) > self.nominal_max_frequency() {
            OperatingRegion::Boost
        } else if v.value() <= self.ntc_limit_volts {
            OperatingRegion::NearThreshold
        } else {
            OperatingRegion::SuperThreshold
        }
    }
}

darksil_json::impl_json_enum!(OperatingRegion {
    NearThreshold => "near_threshold",
    SuperThreshold => "super_threshold",
    Boost => "boost",
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let vf = VfRelation::paper_22nm();
        assert_eq!(vf.threshold_voltage(), Volts::new(0.178));
        // Figure 2: around 1 V the curve passes ~2.5 GHz.
        let f = vf.frequency_at(Volts::new(1.0));
        assert!((f.as_ghz() - 2.5).abs() < 0.1, "got {} GHz", f.as_ghz());
    }

    #[test]
    fn inverse_round_trips() {
        let vf = VfRelation::paper_22nm();
        for ghz in [0.2, 0.5, 1.0, 2.0, 2.66, 3.5] {
            let v = vf.voltage_for(Hertz::from_ghz(ghz)).expect("valid ladder");
            let back = vf.frequency_at(v);
            assert!(
                (back.as_ghz() - ghz).abs() < 1e-9,
                "{ghz} GHz -> {v} -> {} GHz",
                back.as_ghz()
            );
        }
    }

    #[test]
    fn zero_frequency_needs_only_threshold() {
        let vf = VfRelation::paper_22nm();
        let v = vf.voltage_for(Hertz::zero()).expect("valid ladder");
        assert!((v.value() - 0.178).abs() < 1e-9);
    }

    #[test]
    fn below_threshold_is_zero_frequency() {
        let vf = VfRelation::paper_22nm();
        assert_eq!(vf.frequency_at(Volts::new(0.1)), Hertz::zero());
        assert_eq!(vf.frequency_at(Volts::new(0.178)), Hertz::zero());
    }

    #[test]
    fn frequency_is_monotonic_in_voltage() {
        let vf = VfRelation::for_node(TechnologyNode::Nm16);
        let mut last = Hertz::zero();
        let mut v = 0.2;
        while v < 1.5 {
            let f = vf.frequency_at(Volts::new(v));
            assert!(f >= last, "non-monotonic at {v} V");
            last = f;
            v += 0.01;
        }
    }

    #[test]
    fn scaled_node_reaches_nominal_at_lower_voltage() {
        // 3.6 GHz at 16 nm should need less voltage than 3.6 GHz at 22 nm.
        let f = Hertz::from_ghz(3.6);
        let v22 = VfRelation::paper_22nm()
            .voltage_for(f)
            .expect("valid ladder");
        let v16 = VfRelation::for_node(TechnologyNode::Nm16)
            .voltage_for(f)
            .expect("valid platform");
        assert!(v16 < v22, "16 nm {v16} vs 22 nm {v22}");
        // And the 16 nm voltage for nominal max is within sane bounds.
        assert!(v16.value() > 0.8 && v16.value() < 1.05, "got {v16}");
    }

    #[test]
    fn regions() {
        let vf = VfRelation::for_node(TechnologyNode::Nm16);
        // Near threshold.
        assert_eq!(
            vf.region_of(Volts::new(0.4)),
            OperatingRegion::NearThreshold
        );
        // Normal DVFS range.
        assert_eq!(
            vf.region_of(Volts::new(0.8)),
            OperatingRegion::SuperThreshold
        );
        // Far above nominal max.
        assert_eq!(vf.region_of(Volts::new(1.4)), OperatingRegion::Boost);
    }

    #[test]
    fn paper_fig14_ntc_point_is_ntc() {
        // Figure 14's NTC configuration runs 1 GHz near threshold in
        // 11 nm (the paper annotates 0.46 V; under the Figure 1 scaling
        // factors our relation needs a slightly lower voltage — the
        // *classification* as NTC is the claim that must hold).
        let vf = VfRelation::for_node(TechnologyNode::Nm11);
        let v = vf.voltage_for(Hertz::from_ghz(1.0)).expect("valid ladder");
        assert!(v.value() > 0.25 && v.value() < 0.5, "model gives {v}");
        assert_eq!(vf.region_of(v), OperatingRegion::NearThreshold);
    }

    #[test]
    fn paper_fig13_stc_point_is_stc() {
        // Figure 13: 3.0 GHz in 11 nm is "still in the STC region"
        // (annotated 0.92 V in the paper; see DESIGN.md on the scaling
        // inconsistency — the region classification is the invariant).
        let vf = VfRelation::for_node(TechnologyNode::Nm11);
        let v = vf.voltage_for(Hertz::from_ghz(3.0)).expect("valid ladder");
        assert!(v.value() > 0.5 && v.value() < 1.0, "model gives {v}");
        assert_eq!(vf.region_of(v), OperatingRegion::SuperThreshold);
    }

    #[test]
    fn invalid_inputs() {
        let vf = VfRelation::paper_22nm();
        assert!(vf.voltage_for(Hertz::from_ghz(-1.0)).is_err());
        assert!(vf.voltage_for(Hertz::new(f64::NAN)).is_err());
        assert!(VfRelation::new(0.0, Volts::new(0.1)).is_err());
        assert!(VfRelation::new(3.7, Volts::new(-0.1)).is_err());
    }

    #[test]
    fn display_regions() {
        assert_eq!(OperatingRegion::NearThreshold.to_string(), "NTC");
        assert_eq!(OperatingRegion::SuperThreshold.to_string(), "STC");
        assert_eq!(OperatingRegion::Boost.to_string(), "Boost");
    }
}
