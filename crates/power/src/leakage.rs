//! Voltage- and temperature-dependent leakage current.

use darksil_units::{Amperes, Celsius, Volts, Watts};

use crate::PowerError;

/// Leakage-current model `Ileak(Vdd, T)` used in Eq. (1).
///
/// The functional form is exponential in the supply voltage and affine
/// in temperature:
///
/// `Ileak = I₀ · e^(kv·V) · (1 + kt·(T − Tref))`
///
/// This captures the two effects the paper relies on: leakage rises
/// steeply with `Vdd` (sub-threshold + gate leakage), and rises with
/// temperature — which is why the leakage/temperature loop in
/// `darksil-core` iterates power and thermal models to a fixed point.
/// # Examples
///
/// ```
/// use darksil_power::LeakageModel;
/// use darksil_units::{Celsius, Volts};
///
/// let leak = LeakageModel::alpha_core_22nm();
/// let cold = leak.power(Volts::new(0.9), Celsius::new(45.0));
/// let hot = leak.power(Volts::new(0.9), Celsius::new(80.0));
/// assert!(hot > cold); // leakage rises with temperature
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Base current `I₀` in amperes.
    i0_amps: f64,
    /// Voltage sensitivity `kv` in 1/V.
    kv_per_volt: f64,
    /// Temperature sensitivity `kt` in 1/°C.
    kt_per_celsius: f64,
    /// Reference temperature for the affine term.
    t_ref_celsius: f64,
}

impl LeakageModel {
    /// Default calibration for a 22 nm Alpha-21264-class core: ≈0.3 W of
    /// leakage at 0.86 V / 45 °C rising to ≈1.9 W at 1.41 V / 80 °C,
    /// consistent with the leakage fraction visible in Figure 3.
    #[must_use]
    pub fn alpha_core_22nm() -> Self {
        Self {
            i0_amps: 0.052,
            kv_per_volt: 2.0,
            kt_per_celsius: 0.01,
            t_ref_celsius: 25.0,
        }
    }

    /// Builds a custom leakage model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-finite or
    /// negative parameters.
    pub fn new(
        i0: Amperes,
        kv_per_volt: f64,
        kt_per_celsius: f64,
        t_ref: Celsius,
    ) -> Result<Self, PowerError> {
        for (name, value) in [
            ("i0", i0.value()),
            ("kv", kv_per_volt),
            ("kt", kt_per_celsius),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(PowerError::InvalidParameter { name, value });
            }
        }
        if !t_ref.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "t_ref",
                value: t_ref.value(),
            });
        }
        Ok(Self {
            i0_amps: i0.value(),
            kv_per_volt,
            kt_per_celsius,
            t_ref_celsius: t_ref.value(),
        })
    }

    /// The base current `I₀`.
    #[must_use]
    pub fn i0(&self) -> Amperes {
        Amperes::new(self.i0_amps)
    }

    /// Returns a copy with `I₀` scaled by `factor` — used when
    /// projecting the 22 nm calibration to smaller nodes (leakage
    /// current tracks the capacitance/width scaling).
    #[must_use]
    pub fn with_i0_scaled(mut self, factor: f64) -> Self {
        self.i0_amps *= factor;
        self
    }

    /// Leakage current at the given supply voltage and temperature.
    ///
    /// Negative temperatures below the reference simply shrink the
    /// affine factor; it is clamped at zero so pathological inputs can
    /// never produce negative leakage.
    #[must_use]
    pub fn current(&self, vdd: Volts, t: Celsius) -> Amperes {
        let thermal = (1.0 + self.kt_per_celsius * (t.value() - self.t_ref_celsius)).max(0.0);
        Amperes::new(self.i0_amps * (self.kv_per_volt * vdd.value()).exp() * thermal)
    }

    /// Leakage *power* `Vdd · Ileak(Vdd, T)` — the second term of
    /// Eq. (1).
    #[must_use]
    pub fn power(&self, vdd: Volts, t: Celsius) -> Watts {
        vdd * self.current(vdd, t)
    }

    /// The normalised shape factor `e^(kv·V)·(1 + kt·(T − Tref))` with
    /// `I₀` divided out. Used by the least-squares fitter, which treats
    /// `I₀` as the unknown linear coefficient.
    #[must_use]
    pub fn shape(&self, vdd: Volts, t: Celsius) -> f64 {
        let thermal = (1.0 + self.kt_per_celsius * (t.value() - self.t_ref_celsius)).max(0.0);
        (self.kv_per_volt * vdd.value()).exp() * thermal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_targets() {
        let m = LeakageModel::alpha_core_22nm();
        let p_low = m.power(Volts::new(0.86), Celsius::new(45.0));
        assert!(p_low.value() > 0.15 && p_low.value() < 0.5, "low {p_low}");
        let p_high = m.power(Volts::new(1.41), Celsius::new(80.0));
        assert!(
            p_high.value() > 1.2 && p_high.value() < 2.6,
            "high {p_high}"
        );
    }

    #[test]
    fn leakage_rises_with_voltage() {
        let m = LeakageModel::alpha_core_22nm();
        let t = Celsius::new(60.0);
        let mut last = Amperes::zero();
        for v in [0.4, 0.6, 0.8, 1.0, 1.2] {
            let i = m.current(Volts::new(v), t);
            assert!(i > last);
            last = i;
        }
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let m = LeakageModel::alpha_core_22nm();
        let v = Volts::new(0.9);
        let cold = m.current(v, Celsius::new(45.0));
        let hot = m.current(v, Celsius::new(80.0));
        assert!(hot > cold);
        // 35 °C at kt = 0.01 ⇒ exactly 1 + 0.35/1.20 relative increase.
        let expected = (1.0 + 0.01 * 55.0) / (1.0 + 0.01 * 20.0);
        assert!((hot / cold - expected).abs() < 1e-12);
    }

    #[test]
    fn never_negative() {
        let m = LeakageModel::alpha_core_22nm();
        let i = m.current(Volts::new(0.5), Celsius::new(-300.0));
        assert!(i.value() >= 0.0);
    }

    #[test]
    fn shape_times_i0_is_current() {
        let m = LeakageModel::alpha_core_22nm();
        let v = Volts::new(1.1);
        let t = Celsius::new(70.0);
        let via_shape = m.i0().value() * m.shape(v, t);
        assert!((via_shape - m.current(v, t).value()).abs() < 1e-15);
    }

    #[test]
    fn i0_scaling() {
        let m = LeakageModel::alpha_core_22nm().with_i0_scaled(0.64);
        assert!((m.i0().value() - 0.052 * 0.64).abs() < 1e-15);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LeakageModel::new(Amperes::new(-1.0), 2.0, 0.01, Celsius::new(25.0)).is_err());
        assert!(LeakageModel::new(Amperes::new(0.05), f64::NAN, 0.01, Celsius::new(25.0)).is_err());
        assert!(
            LeakageModel::new(Amperes::new(0.05), 2.0, 0.01, Celsius::new(f64::INFINITY)).is_err()
        );
    }
}
