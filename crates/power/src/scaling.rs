//! Technology nodes and the Figure 1 scaling-factor table.
//!
//! The paper simulates at 22 nm and projects to 16/11/8 nm using
//! ITRS/Intel scaling factors (all relative to 22 nm):
//!
//! | Technology | Vdd  | Frequency | Capacitance | Area |
//! |-----------:|-----:|----------:|------------:|-----:|
//! | 22 nm      | 1.00 | 1.00      | 1.00        | 1.00 |
//! | 16 nm      | 0.89 | 1.35      | 0.64        | 0.53 |
//! | 11 nm      | 0.81 | 1.75      | 0.39        | 0.28 |
//! | 8 nm       | 0.74 | 2.3       | 0.24        | 0.15 |

use std::fmt;

use darksil_units::{Hertz, SquareMillimeters};

/// Per-core area measured from the 22 nm McPAT runs (§2.1).
pub const CORE_AREA_22NM_MM2: f64 = 9.6;

/// A FinFET technology node evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechnologyNode {
    /// 22 nm — the node simulated directly with gem5 + McPAT.
    Nm22,
    /// 16 nm.
    Nm16,
    /// 11 nm.
    Nm11,
    /// 8 nm.
    Nm8,
}

impl TechnologyNode {
    /// All nodes, largest feature size first.
    pub const ALL: [Self; 4] = [Self::Nm22, Self::Nm16, Self::Nm11, Self::Nm8];

    /// The scaling factors of this node relative to 22 nm (Figure 1).
    #[must_use]
    pub const fn scaling(self) -> ScalingFactors {
        match self {
            Self::Nm22 => ScalingFactors {
                vdd: 1.00,
                frequency: 1.00,
                capacitance: 1.00,
                area: 1.00,
            },
            Self::Nm16 => ScalingFactors {
                vdd: 0.89,
                frequency: 1.35,
                capacitance: 0.64,
                area: 0.53,
            },
            Self::Nm11 => ScalingFactors {
                vdd: 0.81,
                frequency: 1.75,
                capacitance: 0.39,
                area: 0.28,
            },
            Self::Nm8 => ScalingFactors {
                vdd: 0.74,
                frequency: 2.3,
                capacitance: 0.24,
                area: 0.15,
            },
        }
    }

    /// Feature size in nanometres.
    #[must_use]
    pub const fn nanometers(self) -> u32 {
        match self {
            Self::Nm22 => 22,
            Self::Nm16 => 16,
            Self::Nm11 => 11,
            Self::Nm8 => 8,
        }
    }

    /// Area of one Alpha-21264-class core at this node, derived from the
    /// measured 9.6 mm² at 22 nm and the area scaling factors
    /// (9.6 → 5.1 → 2.7 → 1.4 mm², §2.1).
    #[must_use]
    pub fn core_area(self) -> SquareMillimeters {
        let mm2 = match self {
            Self::Nm22 => CORE_AREA_22NM_MM2,
            Self::Nm16 => 5.1,
            Self::Nm11 => 2.7,
            Self::Nm8 => 1.4,
        };
        SquareMillimeters::new(mm2)
    }

    /// The maximum *nominal* (non-boost) core frequency assumed at this
    /// node: 3.6 GHz at 16 nm, 4 GHz at 11 nm, 4.4 GHz at 8 nm (§3.1,
    /// §3.2), and the corresponding 22 nm base of 3.6/1.35 ≈ 2.67 GHz.
    #[must_use]
    pub fn nominal_max_frequency(self) -> Hertz {
        match self {
            Self::Nm22 => Hertz::from_ghz(3.6 / 1.35),
            Self::Nm16 => Hertz::from_ghz(3.6),
            Self::Nm11 => Hertz::from_ghz(4.0),
            Self::Nm8 => Hertz::from_ghz(4.4),
        }
    }

    /// Core count used for this node's manycore chip in the paper's
    /// experiments (100 at 16 nm, 198 at 11 nm, 361 at 8 nm; the 22 nm
    /// baseline machine also has 100 cores).
    #[must_use]
    pub const fn evaluated_core_count(self) -> usize {
        match self {
            Self::Nm22 | Self::Nm16 => 100,
            Self::Nm11 => 198,
            Self::Nm8 => 361,
        }
    }

    /// The next smaller node, or `None` at 8 nm.
    #[must_use]
    pub const fn next(self) -> Option<Self> {
        match self {
            Self::Nm22 => Some(Self::Nm16),
            Self::Nm16 => Some(Self::Nm11),
            Self::Nm11 => Some(Self::Nm8),
            Self::Nm8 => None,
        }
    }
}

impl fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.nanometers())
    }
}

/// Scaling factors of a node relative to 22 nm (the Figure 1 table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingFactors {
    /// Supply-voltage multiplier.
    pub vdd: f64,
    /// Frequency multiplier at iso-voltage-headroom.
    pub frequency: f64,
    /// Effective-capacitance multiplier.
    pub capacitance: f64,
    /// Area multiplier.
    pub area: f64,
}

impl ScalingFactors {
    /// Dynamic-power multiplier implied by the factors:
    /// `C′·V′²·f′ / (C·V²·f) = c · v² · f`.
    #[must_use]
    pub fn dynamic_power(self) -> f64 {
        self.capacitance * self.vdd * self.vdd * self.frequency
    }

    /// Power-density multiplier: dynamic power scaling divided by area
    /// scaling. Greater than 1 means densities rise with scaling — the
    /// root cause of dark silicon.
    #[must_use]
    pub fn power_density(self) -> f64 {
        self.dynamic_power() / self.area
    }
}

/// Serialises as the feature size in nanometres (`16`, not `"Nm16"`),
/// matching the `node` field of scenario files.
impl darksil_json::ToJson for TechnologyNode {
    fn to_json(&self) -> darksil_json::Json {
        darksil_json::Json::Num(f64::from(self.nanometers()))
    }
}

impl darksil_json::FromJson for TechnologyNode {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        let nm = <u32 as darksil_json::FromJson>::from_json(v)?;
        Self::ALL
            .iter()
            .copied()
            .find(|n| n.nanometers() == nm)
            .ok_or_else(|| {
                darksil_json::JsonError::msg(format!(
                    "unknown technology node {nm} nm (expected 22, 16, 11 or 8)"
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        let s16 = TechnologyNode::Nm16.scaling();
        assert_eq!(
            (s16.vdd, s16.frequency, s16.capacitance, s16.area),
            (0.89, 1.35, 0.64, 0.53)
        );
        let s11 = TechnologyNode::Nm11.scaling();
        assert_eq!(
            (s11.vdd, s11.frequency, s11.capacitance, s11.area),
            (0.81, 1.75, 0.39, 0.28)
        );
        let s8 = TechnologyNode::Nm8.scaling();
        assert_eq!(
            (s8.vdd, s8.frequency, s8.capacitance, s8.area),
            (0.74, 2.3, 0.24, 0.15)
        );
        let s22 = TechnologyNode::Nm22.scaling();
        assert_eq!(s22.dynamic_power(), 1.0);
    }

    #[test]
    fn core_areas_match_paper() {
        assert_eq!(TechnologyNode::Nm22.core_area().value(), 9.6);
        assert_eq!(TechnologyNode::Nm16.core_area().value(), 5.1);
        assert_eq!(TechnologyNode::Nm11.core_area().value(), 2.7);
        assert_eq!(TechnologyNode::Nm8.core_area().value(), 1.4);
        // The quoted areas are the 53 %-per-node chain, rounded.
        for node in [
            TechnologyNode::Nm16,
            TechnologyNode::Nm11,
            TechnologyNode::Nm8,
        ] {
            let derived = CORE_AREA_22NM_MM2 * node.scaling().area;
            assert!(
                (derived - node.core_area().value()).abs() < 0.15,
                "{node}: derived {derived} vs quoted {}",
                node.core_area()
            );
        }
    }

    #[test]
    fn power_density_rises_with_scaling() {
        let mut last = TechnologyNode::Nm22.scaling().power_density();
        for node in [
            TechnologyNode::Nm16,
            TechnologyNode::Nm11,
            TechnologyNode::Nm8,
        ] {
            let d = node.scaling().power_density();
            assert!(d > last, "density must rise: {node} gives {d} <= {last}");
            last = d;
        }
    }

    #[test]
    fn nominal_frequencies() {
        assert_eq!(TechnologyNode::Nm16.nominal_max_frequency().as_ghz(), 3.6);
        assert_eq!(TechnologyNode::Nm11.nominal_max_frequency().as_ghz(), 4.0);
        assert_eq!(TechnologyNode::Nm8.nominal_max_frequency().as_ghz(), 4.4);
    }

    #[test]
    fn node_chain() {
        let mut node = TechnologyNode::Nm22;
        let mut count = 1;
        while let Some(next) = node.next() {
            assert!(next.nanometers() < node.nanometers());
            node = next;
            count += 1;
        }
        assert_eq!(count, TechnologyNode::ALL.len());
    }

    #[test]
    fn evaluated_core_counts() {
        assert_eq!(TechnologyNode::Nm16.evaluated_core_count(), 100);
        assert_eq!(TechnologyNode::Nm11.evaluated_core_count(), 198);
        assert_eq!(TechnologyNode::Nm8.evaluated_core_count(), 361);
    }

    #[test]
    fn display() {
        assert_eq!(TechnologyNode::Nm16.to_string(), "16 nm");
    }
}
