//! Error type for the power crate.

use std::error::Error;
use std::fmt;

/// Errors produced by power-model construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A requested frequency is outside the achievable range of the V/f
    /// relation (negative, non-finite, or absurdly high).
    FrequencyOutOfRange {
        /// Requested frequency in GHz.
        ghz: f64,
    },
    /// A voltage below the threshold voltage was supplied where a
    /// super-threshold voltage is required.
    VoltageBelowThreshold {
        /// Supplied voltage in volts.
        volts: f64,
        /// The threshold voltage in volts.
        vth: f64,
    },
    /// A model parameter was invalid (non-finite or out of physical
    /// range).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The sample set handed to the model fitter was unusable.
    FitFailed {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FrequencyOutOfRange { ghz } => {
                write!(f, "frequency {ghz} GHz is outside the achievable range")
            }
            Self::VoltageBelowThreshold { volts, vth } => {
                write!(
                    f,
                    "voltage {volts} V is below the threshold voltage {vth} V"
                )
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid model parameter {name} = {value}")
            }
            Self::FitFailed { reason } => write!(f, "power-model fit failed: {reason}"),
        }
    }
}

impl Error for PowerError {}

impl From<PowerError> for darksil_robust::DarksilError {
    fn from(e: PowerError) -> Self {
        match &e {
            PowerError::FrequencyOutOfRange { .. } | PowerError::VoltageBelowThreshold { .. } => {
                Self::unsupported(e.to_string())
            }
            PowerError::InvalidParameter { .. } => Self::config(e.to_string()),
            PowerError::FitFailed { .. } => Self::solver(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        assert!(PowerError::FrequencyOutOfRange { ghz: -1.0 }
            .to_string()
            .contains("-1 GHz"));
        assert!(PowerError::VoltageBelowThreshold {
            volts: 0.1,
            vth: 0.178
        }
        .to_string()
        .contains("0.178"));
        assert!(PowerError::InvalidParameter {
            name: "ceff",
            value: f64::NAN
        }
        .to_string()
        .contains("ceff"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_bounds<T: Error + Send + Sync>() {}
        assert_bounds::<PowerError>();
    }
}
