//! Per-core process variation.
//!
//! The dark-silicon management work the paper builds on (DaSim,
//! DATE'15; Hayat, DAC'15) is *variability-aware*: manufactured cores
//! differ in leakage (strongly, log-normally) and in maximum stable
//! frequency (mildly). Dark silicon turns this into an opportunity —
//! with spare cores available, management can prefer the efficient ones
//! and leave leaky or slow cores dark.
//!
//! [`VariationModel`] describes the statistical spread;
//! [`VariationMap`] is one sampled chip (deterministic per seed). The
//! leakage factors are mean-one log-normal (`exp(N(0,σ) − σ²/2)`) so a
//! varied chip has the same *expected* leakage as the nominal model;
//! frequency factors are `min(1, 1 + N(0, σ_f))` clamped to a floor —
//! a core can only be as fast as the nominal design or slower.

use crate::PowerError;

/// Lowest admissible per-core frequency factor: even the slowest
/// manufactured core reaches 70 % of nominal.
const MIN_FREQUENCY_FACTOR: f64 = 0.7;

/// Statistical description of within-die variation.
///
/// # Examples
///
/// ```
/// use darksil_power::VariationModel;
///
/// let chip = VariationModel::typical(42).generate(100);
/// // Mean-one leakage factors with real spread.
/// assert!((chip.mean_leakage() - 1.0).abs() < 0.1);
/// let quietest = chip.cores_by_leakage()[0];
/// assert!(chip.leakage_factor(quietest) < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    leakage_sigma: f64,
    frequency_sigma: f64,
    seed: u64,
}

impl VariationModel {
    /// Builds a variation model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative or
    /// non-finite sigmas.
    pub fn new(leakage_sigma: f64, frequency_sigma: f64, seed: u64) -> Result<Self, PowerError> {
        for (name, value) in [
            ("leakage_sigma", leakage_sigma),
            ("frequency_sigma", frequency_sigma),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(PowerError::InvalidParameter { name, value });
            }
        }
        Ok(Self {
            leakage_sigma,
            frequency_sigma,
            seed,
        })
    }

    /// Typical FinFET-node spread: σ = 0.25 on log-leakage (≈ ±60 %
    /// core-to-core swings) and σ = 3 % on frequency.
    #[must_use]
    pub fn typical(seed: u64) -> Self {
        Self {
            leakage_sigma: 0.25,
            frequency_sigma: 0.03,
            seed,
        }
    }

    /// Samples one chip of `cores` cores.
    #[must_use]
    pub fn generate(&self, cores: usize) -> VariationMap {
        let mut rng = SplitMix64::new(self.seed);
        let mut leakage = Vec::with_capacity(cores);
        let mut frequency = Vec::with_capacity(cores);
        // Mean-one log-normal: E[exp(N(0,σ))] = exp(σ²/2).
        let bias = self.leakage_sigma * self.leakage_sigma / 2.0;
        for _ in 0..cores {
            let zl = rng.next_gaussian();
            leakage.push((self.leakage_sigma * zl - bias).exp());
            let zf = rng.next_gaussian();
            let f = (1.0 + self.frequency_sigma * zf).min(1.0);
            frequency.push(f.max(MIN_FREQUENCY_FACTOR));
        }
        VariationMap { leakage, frequency }
    }
}

/// One sampled chip: per-core leakage and frequency factors.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationMap {
    leakage: Vec<f64>,
    frequency: Vec<f64>,
}

impl VariationMap {
    /// A variation-free chip (all factors 1).
    #[must_use]
    pub fn uniform(cores: usize) -> Self {
        Self {
            leakage: vec![1.0; cores],
            frequency: vec![1.0; cores],
        }
    }

    /// Number of cores covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leakage.len()
    }

    /// Whether the map covers no cores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leakage.is_empty()
    }

    /// Leakage multiplier of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn leakage_factor(&self, i: usize) -> f64 {
        self.leakage[i]
    }

    /// Maximum-frequency factor of core `i` (≤ 1).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn frequency_factor(&self, i: usize) -> f64 {
        self.frequency[i]
    }

    /// All leakage factors.
    #[must_use]
    pub fn leakage_factors(&self) -> &[f64] {
        &self.leakage
    }

    /// Mean leakage factor (≈ 1 by construction).
    #[must_use]
    pub fn mean_leakage(&self) -> f64 {
        if self.leakage.is_empty() {
            return 1.0;
        }
        self.leakage.iter().sum::<f64>() / self.leakage.len() as f64
    }

    /// Core indices sorted by ascending leakage — the order a
    /// variability-aware manager prefers to light cores in.
    #[must_use]
    pub fn cores_by_leakage(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.leakage.len()).collect();
        idx.sort_by(|&a, &b| self.leakage[a].total_cmp(&self.leakage[b]).then(a.cmp(&b)));
        idx
    }
}

/// SplitMix64 with a Box–Muller Gaussian on top — deterministic,
/// dependency-free.
#[derive(Debug)]
struct SplitMix64 {
    state: u64,
    cached: Option<f64>,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self {
            state: seed,
            cached: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1].
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1_u64 << 53) as f64
    }

    fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let u1 = self.next_unit();
        let u2 = self.next_unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let m = VariationModel::typical(42);
        let a = m.generate(100);
        let b = m.generate(100);
        assert_eq!(a, b);
        let c = VariationModel::typical(43).generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn leakage_factors_are_mean_one_and_positive() {
        let map = VariationModel::typical(7).generate(10_000);
        assert!(map.leakage_factors().iter().all(|&f| f > 0.0));
        let mean = map.mean_leakage();
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        // And there is real spread.
        let max = map.leakage_factors().iter().copied().fold(0.0, f64::max);
        let min = map.leakage_factors().iter().copied().fold(9.0, f64::min);
        assert!(max / min > 1.5, "spread {max}/{min}");
    }

    #[test]
    fn frequency_factors_are_clamped() {
        let map = VariationModel::new(0.0, 0.2, 11)
            .expect("test value")
            .generate(5_000);
        for i in 0..map.len() {
            let f = map.frequency_factor(i);
            assert!((MIN_FREQUENCY_FACTOR..=1.0).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn uniform_map_is_all_ones() {
        let map = VariationMap::uniform(16);
        assert_eq!(map.len(), 16);
        assert!(!map.is_empty());
        for i in 0..16 {
            assert_eq!(map.leakage_factor(i), 1.0);
            assert_eq!(map.frequency_factor(i), 1.0);
        }
        assert_eq!(map.mean_leakage(), 1.0);
    }

    #[test]
    fn leakage_ordering_is_ascending() {
        let map = VariationModel::typical(3).generate(64);
        let order = map.cores_by_leakage();
        assert_eq!(order.len(), 64);
        for w in order.windows(2) {
            assert!(map.leakage_factor(w[0]) <= map.leakage_factor(w[1]));
        }
    }

    #[test]
    fn zero_sigma_collapses_to_uniform() {
        let map = VariationModel::new(0.0, 0.0, 9)
            .expect("test value")
            .generate(32);
        for i in 0..32 {
            assert!((map.leakage_factor(i) - 1.0).abs() < 1e-12);
            assert_eq!(map.frequency_factor(i), 1.0);
        }
    }

    #[test]
    fn invalid_sigmas_rejected() {
        assert!(VariationModel::new(-0.1, 0.0, 1).is_err());
        assert!(VariationModel::new(0.1, f64::NAN, 1).is_err());
    }
}
