//! The Eq. (1) per-core power model.

use darksil_numerics::{fit_least_squares, DenseMatrix};
use darksil_units::{Celsius, Farads, Hertz, Volts, Watts};

use crate::{LeakageModel, PowerError, TechnologyNode, VfRelation};

/// One power measurement, e.g. produced by the McPAT stand-in of
/// `darksil-archsim`. Used to fit [`CorePowerModel`] (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Activity factor α (0..=1).
    pub alpha: f64,
    /// Supply voltage.
    pub vdd: Volts,
    /// Clock frequency.
    pub frequency: Hertz,
    /// Core temperature during the measurement.
    pub temperature: Celsius,
    /// Measured total core power.
    pub power: Watts,
}

/// Additive decomposition of Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// `α·Ceff·V²·f` — dynamic switching power.
    pub dynamic: Watts,
    /// `V·Ileak(V, T)` — leakage power.
    pub leakage: Watts,
    /// `Pind` — frequency-independent power of an enabled core.
    pub independent: Watts,
}

impl PowerBreakdown {
    /// Total power (the left-hand side of Eq. (1)).
    #[must_use]
    pub fn total(&self) -> Watts {
        self.dynamic + self.leakage + self.independent
    }
}

/// The per-core power model of Eq. (1):
/// `P = α·Ceff·V²·f + V·Ileak(V, T) + Pind`.
///
/// A model is specific to an (application, technology node) pair: the
/// effective capacitance `Ceff` depends on the application's switching
/// profile, and all parameters scale with technology (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerModel {
    ceff_farads: f64,
    leakage: LeakageModel,
    p_ind_watts: f64,
    vf: VfRelation,
}

impl CorePowerModel {
    /// Calibration for an H.264 encoder (x264) thread on a 22 nm
    /// Alpha-21264-class core, matching the Figure 3 curve:
    /// ≈3.5 W at 2 GHz rising cubically to ≈16–18 W at 4 GHz.
    #[must_use]
    pub fn x264_22nm() -> Self {
        Self {
            ceff_farads: 1.75e-9,
            leakage: LeakageModel::alpha_core_22nm(),
            p_ind_watts: 0.15,
            vf: VfRelation::paper_22nm(),
        }
    }

    /// Builds a model from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative or
    /// non-finite `ceff`/`p_ind`.
    pub fn new(
        ceff: Farads,
        leakage: LeakageModel,
        p_ind: Watts,
        vf: VfRelation,
    ) -> Result<Self, PowerError> {
        if !ceff.value().is_finite() || ceff.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "ceff",
                value: ceff.value(),
            });
        }
        if !p_ind.value().is_finite() || p_ind.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "p_ind",
                value: p_ind.value(),
            });
        }
        Ok(Self {
            ceff_farads: ceff.value(),
            leakage,
            p_ind_watts: p_ind.value(),
            vf,
        })
    }

    /// Effective switching capacitance `Ceff`.
    #[must_use]
    pub fn ceff(&self) -> Farads {
        Farads::new(self.ceff_farads)
    }

    /// Frequency-independent power `Pind`.
    #[must_use]
    pub fn p_ind(&self) -> Watts {
        Watts::new(self.p_ind_watts)
    }

    /// The leakage sub-model.
    #[must_use]
    pub fn leakage(&self) -> &LeakageModel {
        &self.leakage
    }

    /// The V/f relation this model operates under.
    #[must_use]
    pub fn vf(&self) -> &VfRelation {
        &self.vf
    }

    /// Returns a copy with `Ceff` multiplied by `factor` — how
    /// application power classes are derived from the x264 baseline.
    #[must_use]
    pub fn with_ceff_scaled(mut self, factor: f64) -> Self {
        self.ceff_farads *= factor;
        self
    }

    /// Projects this 22 nm model to `node` using the Figure 1 factors:
    /// capacitance and leakage width scale with the capacitance factor,
    /// the V/f relation picks up the voltage/frequency factors, and
    /// `Pind` scales with capacitance·Vdd (it is dominated by clocking
    /// and always-on structures whose size tracks capacitance and whose
    /// swing tracks Vdd).
    #[must_use]
    pub fn scaled_to(&self, node: TechnologyNode) -> Self {
        let s = node.scaling();
        Self {
            ceff_farads: self.ceff_farads * s.capacitance,
            leakage: self.leakage.with_i0_scaled(s.capacitance),
            p_ind_watts: self.p_ind_watts * s.capacitance * s.vdd,
            vf: VfRelation::for_node(node),
        }
    }

    /// Dynamic power `α·Ceff·V²·f`.
    #[must_use]
    pub fn dynamic_power(&self, alpha: f64, vdd: Volts, f: Hertz) -> Watts {
        Watts::new(self.ceff_farads * alpha * vdd.value() * vdd.value() * f.value())
    }

    /// Full Eq. (1) evaluation.
    #[must_use]
    pub fn power(&self, alpha: f64, vdd: Volts, f: Hertz, t: Celsius) -> Watts {
        self.breakdown(alpha, vdd, f, t).total()
    }

    /// Eq. (1) split into its three terms.
    #[must_use]
    pub fn breakdown(&self, alpha: f64, vdd: Volts, f: Hertz, t: Celsius) -> PowerBreakdown {
        PowerBreakdown {
            dynamic: self.dynamic_power(alpha, vdd, f),
            leakage: self.leakage.power(vdd, t),
            independent: Watts::new(self.p_ind_watts),
        }
    }

    /// Evaluates Eq. (1) at a frequency, deriving the minimum stable
    /// voltage from Eq. (2) — the paper's operating discipline ("running
    /// at higher voltages would be power/energy inefficient").
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::FrequencyOutOfRange`] for invalid
    /// frequencies.
    pub fn power_at_frequency(
        &self,
        alpha: f64,
        f: Hertz,
        t: Celsius,
    ) -> Result<Watts, PowerError> {
        let vdd = self.vf.voltage_for(f)?;
        Ok(self.power(alpha, vdd, f, t))
    }

    /// Fits `(Ceff, I₀, Pind)` to power samples by linear least squares,
    /// keeping the leakage shape (`kv`, `kt`, `Tref`) of
    /// `leakage_template` and the supplied V/f relation fixed. This is
    /// the Figure 3 procedure: Eq. (1) is linear in those three
    /// coefficients once `(α, V, f, T)` are known.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::FitFailed`] when fewer than three samples
    /// are supplied or the design matrix is degenerate, and propagates
    /// invalid fitted parameters (negative `Ceff`, …) as
    /// [`PowerError::InvalidParameter`].
    pub fn fit(
        samples: &[PowerSample],
        leakage_template: &LeakageModel,
        vf: VfRelation,
    ) -> Result<Self, PowerError> {
        if samples.len() < 3 {
            return Err(PowerError::FitFailed {
                reason: format!("need at least 3 samples, got {}", samples.len()),
            });
        }
        let mut design = DenseMatrix::zeros(samples.len(), 3);
        let mut y = Vec::with_capacity(samples.len());
        for (i, s) in samples.iter().enumerate() {
            design[(i, 0)] = s.alpha * s.vdd.value() * s.vdd.value() * s.frequency.value();
            design[(i, 1)] = s.vdd.value() * leakage_template.shape(s.vdd, s.temperature);
            design[(i, 2)] = 1.0;
            y.push(s.power.value());
        }
        let coef = fit_least_squares(&design, &y).map_err(|e| PowerError::FitFailed {
            reason: e.to_string(),
        })?;
        // The template carries the fixed shape (kv, kt, Tref); install
        // the fitted I₀ by scaling the template's base current.
        let i0_ratio = if leakage_template.i0().value() > 0.0 {
            coef[1].max(0.0) / leakage_template.i0().value()
        } else {
            0.0
        };
        Self::new(
            Farads::new(coef[0].max(0.0)),
            leakage_template.with_i0_scaled(i0_ratio),
            Watts::new(coef[2].max(0.0)),
            vf,
        )
    }

    /// Root-mean-square error of this model against a sample set, in
    /// watts — the goodness-of-fit metric for the Figure 3 comparison.
    #[must_use]
    pub fn rmse(&self, samples: &[PowerSample]) -> Watts {
        if samples.is_empty() {
            return Watts::zero();
        }
        let sum_sq: f64 = samples
            .iter()
            .map(|s| {
                let p = self.power(s.alpha, s.vdd, s.frequency, s.temperature);
                let e = p.value() - s.power.value();
                e * e
            })
            .sum();
        Watts::new((sum_sq / samples.len() as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CorePowerModel {
        CorePowerModel::x264_22nm()
    }

    #[test]
    fn figure3_calibration_targets() {
        // Figure 3: single-threaded x264 at 22 nm, α = 1.
        let m = model();
        let t = Celsius::new(60.0);
        let p2 = m
            .power_at_frequency(1.0, Hertz::from_ghz(2.0), t)
            .expect("test value");
        let p3 = m
            .power_at_frequency(1.0, Hertz::from_ghz(3.0), t)
            .expect("test value");
        let p4 = m
            .power_at_frequency(1.0, Hertz::from_ghz(4.0), t)
            .expect("test value");
        assert!(p2.value() > 2.5 && p2.value() < 5.5, "P(2GHz) = {p2}");
        assert!(p3.value() > 6.0 && p3.value() < 11.0, "P(3GHz) = {p3}");
        assert!(p4.value() > 14.0 && p4.value() < 22.0, "P(4GHz) = {p4}");
        // Super-cubic growth overall: quadrupling frequency costs >4×.
        assert!(p4 / p2 > 4.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = model();
        let v = Volts::new(1.0);
        let f = Hertz::from_ghz(2.4);
        let t = Celsius::new(70.0);
        let b = m.breakdown(0.8, v, f, t);
        assert_eq!(b.total(), m.power(0.8, v, f, t));
        assert!(b.dynamic.value() > 0.0);
        assert!(b.leakage.value() > 0.0);
        assert_eq!(b.independent, Watts::new(0.15));
    }

    #[test]
    fn idle_core_still_draws_static_power() {
        let m = model();
        let p = m.power(0.0, Volts::new(0.7), Hertz::zero(), Celsius::new(45.0));
        assert!(p >= m.p_ind());
        assert_eq!(
            m.dynamic_power(0.0, Volts::new(0.7), Hertz::from_ghz(1.0)),
            Watts::zero()
        );
    }

    #[test]
    fn scaling_to_16nm_reduces_power_at_iso_frequency() {
        let m22 = model();
        let m16 = m22.scaled_to(TechnologyNode::Nm16);
        let f = Hertz::from_ghz(2.0);
        let t = Celsius::new(60.0);
        let p22 = m22.power_at_frequency(1.0, f, t).expect("test value");
        let p16 = m16.power_at_frequency(1.0, f, t).expect("test value");
        assert!(p16 < p22, "16 nm {p16} vs 22 nm {p22}");
    }

    #[test]
    fn per_core_power_at_16nm_nominal_matches_paper_scale() {
        // Figure 8: 52 active cores at 3.6 GHz consume 196 W ⇒ ≈3.8 W
        // per fully-loaded core at 16 nm.
        let m16 = model().scaled_to(TechnologyNode::Nm16);
        let p = m16
            .power_at_frequency(1.0, Hertz::from_ghz(3.6), Celsius::new(75.0))
            .expect("test value");
        assert!(p.value() > 3.0 && p.value() < 5.5, "got {p}");
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let truth = model();
        let t = Celsius::new(60.0);
        let mut samples = Vec::new();
        for ghz in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
            let f = Hertz::from_ghz(ghz);
            let v = truth.vf().voltage_for(f).expect("valid ladder");
            samples.push(PowerSample {
                alpha: 1.0,
                vdd: v,
                frequency: f,
                temperature: t,
                power: truth.power(1.0, v, f, t),
            });
        }
        let fitted = CorePowerModel::fit(
            &samples,
            &LeakageModel::alpha_core_22nm(),
            VfRelation::paper_22nm(),
        )
        .expect("test value");
        assert!((fitted.ceff().value() - truth.ceff().value()).abs() / truth.ceff().value() < 1e-6);
        assert!((fitted.p_ind().value() - 0.15).abs() < 1e-6);
        assert!(fitted.rmse(&samples).value() < 1e-9);
    }

    #[test]
    fn fit_tolerates_noise() {
        let truth = model();
        let mut samples = Vec::new();
        // Deterministic ±2 % "measurement noise". Activity factors and
        // temperatures vary across samples so the dynamic and leakage
        // columns decorrelate — a pure frequency sweep at α = 1 leaves
        // them nearly collinear and the individual coefficients poorly
        // identified (the curve itself still fits; see the rmse check).
        for (i, ghz) in (0..16).map(|i| (i, 0.4 + 0.225 * i as f64)) {
            let f = Hertz::from_ghz(ghz);
            let v = truth.vf().voltage_for(f).expect("valid ladder");
            let t = Celsius::new(45.0 + ((i * 17) % 36) as f64);
            let alpha = [1.0, 0.5, 0.75, 0.25][i % 4];
            let noise = 1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
            samples.push(PowerSample {
                alpha,
                vdd: v,
                frequency: f,
                temperature: t,
                power: truth.power(alpha, v, f, t) * noise,
            });
        }
        let fitted = CorePowerModel::fit(
            &samples,
            &LeakageModel::alpha_core_22nm(),
            VfRelation::paper_22nm(),
        )
        .expect("test value");
        let rel = (fitted.ceff().value() - truth.ceff().value()).abs() / truth.ceff().value();
        assert!(rel < 0.1, "Ceff off by {rel}");
        // What Figure 3 actually shows: the fitted curve tracks the
        // samples closely across the whole frequency range.
        assert!(fitted.rmse(&samples).value() < 0.5);
    }

    #[test]
    fn fit_rejects_tiny_sample_sets() {
        assert!(matches!(
            CorePowerModel::fit(
                &[],
                &LeakageModel::alpha_core_22nm(),
                VfRelation::paper_22nm()
            ),
            Err(PowerError::FitFailed { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(CorePowerModel::new(
            Farads::new(-1.0),
            LeakageModel::alpha_core_22nm(),
            Watts::new(0.5),
            VfRelation::paper_22nm(),
        )
        .is_err());
        assert!(CorePowerModel::new(
            Farads::new(1.0e-9),
            LeakageModel::alpha_core_22nm(),
            Watts::new(f64::NAN),
            VfRelation::paper_22nm(),
        )
        .is_err());
    }

    #[test]
    fn ceff_class_scaling() {
        let m = model().with_ceff_scaled(1.2);
        assert!((m.ceff().value() - 2.1e-9).abs() < 1e-15);
    }

    #[test]
    fn hotter_core_draws_more_power() {
        let m = model();
        let f = Hertz::from_ghz(3.0);
        let cold = m
            .power_at_frequency(1.0, f, Celsius::new(45.0))
            .expect("test value");
        let hot = m
            .power_at_frequency(1.0, f, Celsius::new(80.0))
            .expect("test value");
        assert!(hot > cold);
    }
}
