//! Temperature-driven transistor aging.
//!
//! The dark-silicon reliability work the paper cites (Hayat, DAC'15:
//! "harnessing dark silicon … for aging deceleration and balancing")
//! treats spare cores as a wear-leveling resource: cores age faster the
//! hotter and the more stressed they run, so rotating which cores stay
//! dark balances the wear-out across the chip.
//!
//! [`AgingModel`] implements the standard thermally activated form: the
//! degradation rate accelerates with temperature following an Arrhenius
//! law, `rate(T) = exp(−Eₐ/(k·T))`, normalised so that a core running
//! continuously at the reference temperature ages at rate 1. The
//! absolute time-to-failure calibration is irrelevant for *balancing*
//! decisions — only the ratios between cores matter — so aging is
//! accounted in dimensionless "reference-hours".

use darksil_units::{Celsius, Seconds};

use crate::PowerError;

/// Boltzmann constant in eV/K.
const BOLTZMANN_EV: f64 = 8.617_333_262e-5;

/// Thermally activated aging-rate model.
///
/// # Examples
///
/// ```
/// use darksil_power::AgingModel;
/// use darksil_units::Celsius;
///
/// let aging = AgingModel::nbti_like();
/// // A core at the 80 °C threshold ages at the reference rate; a dark
/// // core near ambient ages far slower.
/// assert!((aging.rate(Celsius::new(80.0)) - 1.0).abs() < 1e-12);
/// assert!(aging.rate(Celsius::new(45.0)) < 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// Activation energy in eV (NBTI/electromigration-class values are
    /// 0.1–0.9 eV).
    activation_energy_ev: f64,
    /// Reference temperature at which the rate is 1.
    t_ref: Celsius,
}

impl AgingModel {
    /// A typical NBTI-like calibration: Eₐ = 0.5 eV, referenced to the
    /// 80 °C DTM threshold.
    #[must_use]
    pub fn nbti_like() -> Self {
        Self {
            activation_energy_ev: 0.5,
            t_ref: Celsius::new(80.0),
        }
    }

    /// Builds a custom model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive
    /// activation energy or a reference temperature at/below absolute
    /// zero.
    pub fn new(activation_energy_ev: f64, t_ref: Celsius) -> Result<Self, PowerError> {
        if activation_energy_ev <= 0.0 || !activation_energy_ev.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "activation_energy",
                value: activation_energy_ev,
            });
        }
        if t_ref.to_kelvin().value() <= 0.0 || !t_ref.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "t_ref",
                value: t_ref.value(),
            });
        }
        Ok(Self {
            activation_energy_ev,
            t_ref,
        })
    }

    /// Relative aging rate at temperature `t`: 1 at the reference,
    /// `> 1` above it, `< 1` below. An idle (power-gated) core should
    /// be accounted at its actual — much cooler — temperature, which is
    /// where the wear-leveling benefit of dark silicon comes from.
    ///
    /// # Panics
    ///
    /// Panics if `t` is at or below absolute zero.
    #[must_use]
    pub fn rate(&self, t: Celsius) -> f64 {
        let tk = t.to_kelvin().value();
        assert!(tk > 0.0, "temperature below absolute zero");
        let tref_k = self.t_ref.to_kelvin().value();
        let ea = self.activation_energy_ev;
        (ea / BOLTZMANN_EV * (1.0 / tref_k - 1.0 / tk)).exp()
    }

    /// Aging accumulated over `duration` at constant temperature `t`,
    /// in reference-seconds.
    #[must_use]
    pub fn accumulate(&self, t: Celsius, duration: Seconds) -> f64 {
        self.rate(t) * duration.value()
    }
}

impl Default for AgingModel {
    fn default() -> Self {
        Self::nbti_like()
    }
}

/// Per-core accumulated aging, in reference-seconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AgingLedger {
    wear: Vec<f64>,
}

impl AgingLedger {
    /// A fresh chip of `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            wear: vec![0.0; cores],
        }
    }

    /// Number of cores tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wear.len()
    }

    /// Whether the ledger tracks no cores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wear.is_empty()
    }

    /// Accumulated wear of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn wear(&self, i: usize) -> f64 {
        self.wear[i]
    }

    /// Records `duration` at per-core temperatures `temps`.
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not have one entry per core.
    pub fn record(&mut self, model: &AgingModel, temps: &[Celsius], duration: Seconds) {
        assert_eq!(temps.len(), self.wear.len(), "one temperature per core");
        for (w, &t) in self.wear.iter_mut().zip(temps) {
            *w += model.accumulate(t, duration);
        }
    }

    /// The most-worn core's accumulated aging — the chip's lifetime is
    /// set by its weakest (most aged) core.
    #[must_use]
    pub fn max_wear(&self) -> f64 {
        self.wear.iter().copied().fold(0.0, f64::max)
    }

    /// Mean accumulated aging.
    #[must_use]
    pub fn mean_wear(&self) -> f64 {
        if self.wear.is_empty() {
            return 0.0;
        }
        self.wear.iter().sum::<f64>() / self.wear.len() as f64
    }

    /// Imbalance ratio `max/mean` — 1.0 is perfectly levelled wear.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            return 1.0;
        }
        self.max_wear() / mean
    }

    /// Core indices sorted by ascending wear — the rotation order a
    /// wear-leveling manager lights cores in.
    #[must_use]
    pub fn cores_by_wear(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.wear.len()).collect();
        idx.sort_by(|&a, &b| self.wear[a].total_cmp(&self.wear[b]).then(a.cmp(&b)));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_one_at_reference() {
        let m = AgingModel::nbti_like();
        assert!((m.rate(Celsius::new(80.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rate_accelerates_with_temperature() {
        let m = AgingModel::nbti_like();
        let cold = m.rate(Celsius::new(45.0));
        let ref_rate = m.rate(Celsius::new(80.0));
        let hot = m.rate(Celsius::new(95.0));
        assert!(cold < ref_rate && ref_rate < hot);
        // ~0.5 eV: roughly 2× per ~12–15 °C around 80 °C.
        let doubling = m.rate(Celsius::new(94.0)) / ref_rate;
        assert!(doubling > 1.6 && doubling < 2.6, "got {doubling}");
        // An idle core at ambient ages far slower than a hot one.
        assert!(hot / cold > 5.0);
    }

    #[test]
    fn accumulation_is_linear_in_time() {
        let m = AgingModel::nbti_like();
        let t = Celsius::new(70.0);
        let one = m.accumulate(t, Seconds::new(100.0));
        let two = m.accumulate(t, Seconds::new(200.0));
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn ledger_tracks_per_core_wear() {
        let m = AgingModel::nbti_like();
        let mut ledger = AgingLedger::new(3);
        assert!(!ledger.is_empty());
        let temps = [Celsius::new(80.0), Celsius::new(60.0), Celsius::new(45.0)];
        ledger.record(&m, &temps, Seconds::new(1000.0));
        assert!(ledger.wear(0) > ledger.wear(1));
        assert!(ledger.wear(1) > ledger.wear(2));
        assert_eq!(ledger.max_wear(), ledger.wear(0));
        assert!(ledger.imbalance() > 1.0);
        assert_eq!(ledger.cores_by_wear(), vec![2, 1, 0]);
    }

    #[test]
    fn fresh_ledger_is_balanced() {
        let ledger = AgingLedger::new(8);
        assert_eq!(ledger.max_wear(), 0.0);
        assert_eq!(ledger.imbalance(), 1.0);
        assert_eq!(ledger.len(), 8);
    }

    #[test]
    fn invalid_models_rejected() {
        assert!(AgingModel::new(0.0, Celsius::new(80.0)).is_err());
        assert!(AgingModel::new(0.5, Celsius::new(-300.0)).is_err());
        assert!(AgingModel::new(f64::NAN, Celsius::new(80.0)).is_err());
    }
}
