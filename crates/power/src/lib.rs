//! Core power modelling for dark-silicon analysis.
//!
//! Implements the paper's power machinery (§2.1–2.2):
//!
//! * **Eq. (1)** — per-core power
//!   `P = α·Ceff·V²·f + V·Ileak(V, T) + Pind` ([`CorePowerModel`]),
//! * **Eq. (2)** — the frequency/voltage relation
//!   `f = k·(V − Vth)²/V` with `k = 3.7`, `Vth = 178 mV` at 22 nm
//!   ([`VfRelation`], Figure 2),
//! * the ITRS/Intel scaling-factor table of Figure 1
//!   ([`TechnologyNode`], [`ScalingFactors`]) used to project 22 nm
//!   simulation results to 16/11/8 nm,
//! * voltage- and temperature-dependent leakage ([`LeakageModel`]),
//! * discrete DVFS level tables with the 200 MHz step granularity used
//!   by the boosting controller in §6 ([`DvfsTable`], [`VfLevel`]),
//! * classification of operating points into the NTC / STC / Boost
//!   regions of Figure 2 ([`OperatingRegion`]),
//! * per-core process variation maps for variability-aware management
//!   ([`VariationModel`], [`VariationMap`]),
//! * thermally activated aging with per-core wear accounting
//!   ([`AgingModel`], [`AgingLedger`]) for the wear-leveling use of
//!   dark silicon,
//! * least-squares fitting of Eq. (1) to power samples, reproducing the
//!   Figure 3 model-vs-McPAT fit ([`CorePowerModel::fit`]).
//!
//! # Examples
//!
//! ```
//! use darksil_power::{CorePowerModel, TechnologyNode, VfRelation};
//! use darksil_units::{Celsius, Hertz};
//!
//! // The paper's 22 nm V/f relation.
//! let vf = VfRelation::paper_22nm();
//! let v = vf.voltage_for(Hertz::from_ghz(2.0))?;
//! assert!(v.value() > 0.8 && v.value() < 0.9);
//!
//! // An x264-like core, scaled to 16 nm.
//! let model = CorePowerModel::x264_22nm().scaled_to(TechnologyNode::Nm16);
//! let f = Hertz::from_ghz(3.6);
//! let p = model.power(1.0, model.vf().voltage_for(f)?, f, Celsius::new(60.0));
//! assert!(p.value() > 1.0 && p.value() < 10.0);
//! # Ok::<(), darksil_power::PowerError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod aging;
mod dvfs;
mod error;
mod leakage;
mod model;
mod scaling;
mod variation;
mod vf;

pub use aging::{AgingLedger, AgingModel};
pub use dvfs::{DvfsTable, VfLevel};
pub use error::PowerError;
pub use leakage::LeakageModel;
pub use model::{CorePowerModel, PowerBreakdown, PowerSample};
pub use scaling::{ScalingFactors, TechnologyNode};
pub use variation::{VariationMap, VariationModel};
pub use vf::{OperatingRegion, VfRelation};
