//! Discrete DVFS levels.
//!
//! The boosting controller of §6 moves the frequency in 200 MHz steps;
//! the DVFS experiments of §3 sweep levels like 2.8/3.0/…/3.6 GHz.
//! [`DvfsTable`] materialises a ladder of [`VfLevel`]s from a
//! [`VfRelation`], each pairing a frequency with the minimum stable
//! voltage per Eq. (2).

use darksil_units::{Hertz, Volts};

use crate::{PowerError, VfRelation};

/// Default step granularity, matching Intel Turbo Boost's 133/100 MHz
/// bins rounded to the paper's 200 MHz.
pub const DEFAULT_STEP_MHZ: f64 = 200.0;

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfLevel {
    /// Clock frequency.
    pub frequency: Hertz,
    /// Minimum stable supply voltage for that frequency (Eq. (2)).
    pub voltage: Volts,
}

impl std::fmt::Display for VfLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {}", self.frequency, self.voltage)
    }
}

/// An ascending ladder of discrete v/f levels.
///
/// # Examples
///
/// ```
/// use darksil_power::{DvfsTable, TechnologyNode, VfRelation};
/// use darksil_units::Hertz;
///
/// let vf = VfRelation::for_node(TechnologyNode::Nm16);
/// let table = DvfsTable::standard(&vf, Hertz::from_ghz(3.6))?;
/// // 200 MHz steps: 0.2 … 3.6 GHz.
/// assert_eq!(table.len(), 18);
/// let floor = table.floor(Hertz::from_ghz(3.05)).map(|level| level.frequency);
/// assert_eq!(floor, Some(Hertz::from_ghz(3.0)));
/// # Ok::<(), darksil_power::PowerError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsTable {
    levels: Vec<VfLevel>,
}

impl DvfsTable {
    /// Builds a ladder from `f_min` to `f_max` inclusive in `step`
    /// increments, with voltages derived from `vf`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::FrequencyOutOfRange`] if the range is
    /// empty, non-finite, or the step is non-positive.
    pub fn from_range(
        vf: &VfRelation,
        f_min: Hertz,
        f_max: Hertz,
        step: Hertz,
    ) -> Result<Self, PowerError> {
        if step.value() <= 0.0 || !step.value().is_finite() {
            return Err(PowerError::FrequencyOutOfRange { ghz: step.as_ghz() });
        }
        if f_min > f_max || f_min.value() < 0.0 || !f_max.value().is_finite() {
            return Err(PowerError::FrequencyOutOfRange {
                ghz: f_min.as_ghz(),
            });
        }
        let mut levels = Vec::new();
        let mut f = f_min;
        // Walk in integer multiples to dodge accumulation error.
        let mut i = 0_usize;
        while f <= f_max + step * 1e-9 {
            levels.push(VfLevel {
                frequency: f,
                voltage: vf.voltage_for(f)?,
            });
            i += 1;
            f = f_min + step * i as f64;
        }
        Ok(Self { levels })
    }

    /// Standard ladder for a node: 200 MHz steps from 200 MHz up to
    /// `f_max`.
    ///
    /// # Errors
    ///
    /// Same as [`DvfsTable::from_range`].
    pub fn standard(vf: &VfRelation, f_max: Hertz) -> Result<Self, PowerError> {
        Self::from_range(
            vf,
            Hertz::from_mhz(DEFAULT_STEP_MHZ),
            f_max,
            Hertz::from_mhz(DEFAULT_STEP_MHZ),
        )
    }

    /// Number of levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The levels in ascending frequency order.
    #[must_use]
    pub fn levels(&self) -> &[VfLevel] {
        &self.levels
    }

    /// The level at `index`.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<VfLevel> {
        self.levels.get(index).copied()
    }

    /// The lowest level.
    #[must_use]
    pub fn min_level(&self) -> Option<VfLevel> {
        self.levels.first().copied()
    }

    /// The highest level.
    #[must_use]
    pub fn max_level(&self) -> Option<VfLevel> {
        self.levels.last().copied()
    }

    /// Index of the highest level whose frequency does not exceed `f`
    /// (floor semantics), or `None` if `f` is below the lowest level.
    #[must_use]
    pub fn floor_index(&self, f: Hertz) -> Option<usize> {
        let mut best = None;
        for (i, level) in self.levels.iter().enumerate() {
            if level.frequency <= f + Hertz::new(1.0) {
                best = Some(i);
            } else {
                break;
            }
        }
        best
    }

    /// The highest level whose frequency does not exceed `f`.
    #[must_use]
    pub fn floor(&self, f: Hertz) -> Option<VfLevel> {
        self.floor_index(f).and_then(|i| self.get(i))
    }

    /// Snaps an arbitrary (possibly off-ladder) frequency request to a
    /// safe level: the floor level when one exists, otherwise the lowest
    /// level on the ladder. Returns `None` only for an empty table.
    ///
    /// This is the graceful-degradation path for fault-injected or
    /// miscalibrated frequency requests — the chip throttles to the
    /// nearest level at or below the request instead of erroring.
    #[must_use]
    pub fn clamp_to_ladder(&self, f: Hertz) -> Option<VfLevel> {
        if !f.value().is_finite() {
            return self.min_level();
        }
        self.floor(f).or_else(|| self.min_level())
    }

    /// One step up from `index`, clamped to the top of the ladder.
    #[must_use]
    pub fn step_up(&self, index: usize) -> usize {
        (index + 1).min(self.levels.len().saturating_sub(1))
    }

    /// One step down from `index`, clamped to the bottom.
    #[must_use]
    pub fn step_down(&self, index: usize) -> usize {
        index.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechnologyNode;

    fn table_16nm() -> DvfsTable {
        let vf = VfRelation::for_node(TechnologyNode::Nm16);
        DvfsTable::standard(&vf, Hertz::from_ghz(3.6)).expect("valid ladder")
    }

    #[test]
    fn standard_ladder_has_expected_levels() {
        let t = table_16nm();
        // 0.2, 0.4, …, 3.6 GHz = 18 levels.
        assert_eq!(t.len(), 18);
        assert_eq!(
            t.min_level().expect("test value").frequency,
            Hertz::from_ghz(0.2)
        );
        assert_eq!(
            t.max_level().expect("test value").frequency,
            Hertz::from_ghz(3.6)
        );
        assert!(!t.is_empty());
    }

    #[test]
    fn voltages_ascend_with_frequency() {
        let t = table_16nm();
        let mut last = Volts::zero();
        for level in t.levels() {
            assert!(level.voltage > last, "{level}");
            last = level.voltage;
        }
    }

    #[test]
    fn floor_semantics() {
        let t = table_16nm();
        let idx = t.floor_index(Hertz::from_ghz(3.05)).expect("test value");
        assert_eq!(
            t.get(idx).expect("test value").frequency,
            Hertz::from_ghz(3.0)
        );
        // Exact hit.
        let exact = t.floor(Hertz::from_ghz(2.8)).expect("test value");
        assert!((exact.frequency.as_ghz() - 2.8).abs() < 1e-9);
        // Below the ladder.
        assert_eq!(t.floor_index(Hertz::from_mhz(50.0)), None);
        // Above the ladder clamps to the top.
        assert_eq!(
            t.floor(Hertz::from_ghz(9.9)).expect("test value").frequency,
            Hertz::from_ghz(3.6)
        );
    }

    #[test]
    fn stepping_clamps_at_both_ends() {
        let t = table_16nm();
        assert_eq!(t.step_down(0), 0);
        assert_eq!(t.step_up(t.len() - 1), t.len() - 1);
        assert_eq!(t.step_up(3), 4);
        assert_eq!(t.step_down(3), 2);
    }

    #[test]
    fn paper_fig5_sweep_levels_exist() {
        // Figure 5 sweeps 2.8–3.6 GHz at 16 nm.
        let t = table_16nm();
        for ghz in [2.8, 3.0, 3.2, 3.4, 3.6] {
            assert!(
                t.levels()
                    .iter()
                    .any(|l| (l.frequency.as_ghz() - ghz).abs() < 1e-9),
                "{ghz} GHz missing"
            );
        }
    }

    #[test]
    fn invalid_ranges_rejected() {
        let vf = VfRelation::paper_22nm();
        assert!(DvfsTable::from_range(
            &vf,
            Hertz::from_ghz(2.0),
            Hertz::from_ghz(1.0),
            Hertz::from_mhz(200.0)
        )
        .is_err());
        assert!(DvfsTable::from_range(
            &vf,
            Hertz::from_ghz(1.0),
            Hertz::from_ghz(2.0),
            Hertz::zero()
        )
        .is_err());
    }

    #[test]
    fn eight_nm_ladder_reaches_4_4_ghz() {
        let vf = VfRelation::for_node(TechnologyNode::Nm8);
        let t = DvfsTable::standard(&vf, TechnologyNode::Nm8.nominal_max_frequency())
            .expect("valid ladder");
        assert_eq!(
            t.max_level().expect("test value").frequency,
            Hertz::from_ghz(4.4)
        );
        // More levels available at 8 nm than at 16 nm (§3.2).
        assert!(t.len() > table_16nm().len());
    }
}
