//! Property tests for the thermal RC model.

use darksil_floorplan::Floorplan;
use darksil_thermal::{PackageConfig, ThermalModel, TransientSim};
use darksil_units::{Seconds, SquareMillimeters, Watts};
use proptest::prelude::*;

fn model_4x4() -> ThermalModel {
    let plan = Floorplan::grid(4, 4, SquareMillimeters::new(5.1)).unwrap();
    ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: at steady state, all injected power leaves through
    /// convection — for any power map.
    #[test]
    fn energy_balance_for_any_power_map(
        powers in prop::collection::vec(0.0_f64..6.0, 16),
    ) {
        let m = model_4x4();
        let power: Vec<Watts> = powers.iter().map(|&p| Watts::new(p)).collect();
        let total: f64 = powers.iter().sum();
        let map = m.steady_state(&power).unwrap();
        let out: f64 = m
            .ambient_conductances()
            .iter()
            .zip(map.state())
            .map(|(g, t)| g * (t - m.ambient().value()))
            .sum();
        prop_assert!((out - total).abs() < 1e-4 * (1.0 + total), "{out} vs {total}");
    }

    /// Linearity: scaling the power map scales every temperature *rise*
    /// by the same factor.
    #[test]
    fn temperature_rise_is_linear_in_power(
        powers in prop::collection::vec(0.0_f64..4.0, 16),
        k in 0.1_f64..3.0,
    ) {
        let m = model_4x4();
        let base: Vec<Watts> = powers.iter().map(|&p| Watts::new(p)).collect();
        let scaled: Vec<Watts> = powers.iter().map(|&p| Watts::new(p * k)).collect();
        let t1 = m.steady_state(&base).unwrap();
        let t2 = m.steady_state(&scaled).unwrap();
        let amb = m.ambient().value();
        for (a, b) in t1.state().iter().zip(t2.state()) {
            let rise1 = a - amb;
            let rise2 = b - amb;
            prop_assert!((rise2 - k * rise1).abs() < 1e-5 * (1.0 + rise2.abs()));
        }
    }

    /// The prefactored LU solver agrees with CG for any power map.
    #[test]
    fn lu_and_cg_agree(
        powers in prop::collection::vec(0.0_f64..5.0, 16),
    ) {
        let m = model_4x4();
        let power: Vec<Watts> = powers.iter().map(|&p| Watts::new(p)).collect();
        let cg = m.steady_state(&power).unwrap();
        let lu = m.prefactored().unwrap().solve(&power).unwrap();
        for (a, b) in cg.state().iter().zip(lu.state()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Transient trajectories are bounded by the steady state under
    /// constant input from a cold start (monotone approach, no
    /// overshoot in a passive RC network).
    #[test]
    fn transient_never_overshoots_steady_state(
        powers in prop::collection::vec(0.0_f64..5.0, 16),
    ) {
        let m = model_4x4();
        let power: Vec<Watts> = powers.iter().map(|&p| Watts::new(p)).collect();
        let steady = m.steady_state(&power).unwrap();
        let mut sim = TransientSim::new(&m, Seconds::new(0.5)).unwrap();
        for _ in 0..40 {
            let now = sim.step(&power).unwrap();
            prop_assert!(now.peak() <= steady.peak() + 1e-6);
        }
    }

    /// Grid-mode and block-mode stay within ~1.5 °C of each other for
    /// arbitrary power maps (same physics, finer discretisation — the
    /// block model slightly overestimates isolated hotspots because it
    /// lumps away intra-footprint spreading).
    #[test]
    fn subdivision_is_a_refinement_not_a_different_model(
        powers in prop::collection::vec(0.0_f64..5.0, 9),
    ) {
        let plan = Floorplan::grid(3, 3, SquareMillimeters::new(5.1)).unwrap();
        let block = ThermalModel::new(&plan, PackageConfig::paper_dac15()).unwrap();
        let grid =
            ThermalModel::with_subdivision(&plan, PackageConfig::paper_dac15(), 2).unwrap();
        let power: Vec<Watts> = powers.iter().map(|&p| Watts::new(p)).collect();
        let t_block = block.steady_state(&power).unwrap();
        let t_grid = grid.steady_state(&power).unwrap();
        for core in plan.cores() {
            let d = (t_block.core(core) - t_grid.core(core)).abs();
            prop_assert!(d < 1.5, "{core}: {d} °C apart");
        }
    }
}
