//! Temperature maps produced by the thermal solvers.

use darksil_floorplan::{CoreId, Floorplan, GridMap};
use darksil_units::Celsius;

/// Node temperatures of one thermal solution.
///
/// Indexing helpers expose the die layer (what policies care about);
/// the full internal state is retained so transients can restart and
/// tests can check energy balance.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalMap {
    /// Per-core die temperatures (°C). For subdivided (grid-mode)
    /// models these are per-core maxima over the core's cells.
    die: Vec<f64>,
    state: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl ThermalMap {
    pub(crate) fn from_state(state: Vec<f64>, cores: usize, rows: usize, cols: usize) -> Self {
        debug_assert!(state.len() >= cores);
        let die = state[..cores].to_vec();
        Self {
            die,
            state,
            rows,
            cols,
        }
    }

    pub(crate) fn from_parts(die: Vec<f64>, state: Vec<f64>, rows: usize, cols: usize) -> Self {
        Self {
            die,
            state,
            rows,
            cols,
        }
    }

    /// Temperature of a core's die cell.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core(&self, core: CoreId) -> Celsius {
        Celsius::new(self.die[core.index()])
    }

    /// Die temperatures in core order.
    pub fn die_temperatures(&self) -> impl Iterator<Item = Celsius> + '_ {
        self.die.iter().map(|&t| Celsius::new(t))
    }

    /// Hottest die cell — the quantity compared against `T_DTM`.
    #[must_use]
    pub fn peak(&self) -> Celsius {
        self.die
            .iter()
            .fold(Celsius::new(f64::NEG_INFINITY), |acc, &t| {
                acc.max(Celsius::new(t))
            })
    }

    /// Mean die temperature (per-core, unweighted).
    #[must_use]
    pub fn mean(&self) -> Celsius {
        let sum: f64 = self.die.iter().sum();
        Celsius::new(sum / self.die.len() as f64)
    }

    /// Number of logical cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.die.len()
    }

    /// Raw node temperatures (die, spreader, sink, peripheries).
    #[must_use]
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Whether any die cell meets or exceeds `threshold`.
    #[must_use]
    pub fn violates(&self, threshold: Celsius) -> bool {
        self.peak() > threshold
    }

    /// Converts the die layer to a [`GridMap`] for rendering (Figure 8
    /// style thermal profiles).
    ///
    /// # Errors
    ///
    /// Returns the floorplan error if `plan` does not match this map's
    /// core count.
    pub fn to_grid_map(
        &self,
        plan: &Floorplan,
    ) -> Result<GridMap, darksil_floorplan::FloorplanError> {
        GridMap::from_values(plan, self.die.clone())
    }

    /// Grid shape `(rows, cols)`.
    #[must_use]
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_units::SquareMillimeters;

    fn map() -> ThermalMap {
        // 4 cores, 2×2, plus internal nodes.
        let mut state = vec![50.0, 61.5, 47.0, 55.0];
        state.extend([40.0; 10]);
        ThermalMap::from_state(state, 4, 2, 2)
    }

    #[test]
    fn accessors() {
        let m = map();
        assert_eq!(m.core(CoreId(1)), Celsius::new(61.5));
        assert_eq!(m.peak(), Celsius::new(61.5));
        assert_eq!(m.mean(), Celsius::new(53.375));
        assert_eq!(m.core_count(), 4);
        assert_eq!(m.grid_shape(), (2, 2));
        assert_eq!(m.die_temperatures().count(), 4);
    }

    #[test]
    fn violation_check() {
        let m = map();
        assert!(m.violates(Celsius::new(60.0)));
        assert!(!m.violates(Celsius::new(61.5))); // strict inequality
        assert!(!m.violates(Celsius::new(80.0)));
    }

    #[test]
    fn grid_conversion() {
        let plan = Floorplan::grid(2, 2, SquareMillimeters::new(1.0)).expect("valid floorplan");
        let g = map().to_grid_map(&plan).expect("test value");
        assert_eq!(g.max(), Some(61.5));
        let wrong = Floorplan::grid(3, 3, SquareMillimeters::new(1.0)).expect("valid floorplan");
        assert!(map().to_grid_map(&wrong).is_err());
    }
}
