//! RC-network assembly and steady-state solving.

use darksil_floorplan::Floorplan;
use std::sync::Arc;

use darksil_numerics::{
    solve_spd_factored, CgOptions, CsrMatrix, FactorCache, LuFactors, SolveDiagnostics, SpdFactors,
    TripletMatrix,
};
use darksil_units::{Celsius, Watts};

use crate::{PackageConfig, ThermalError, ThermalMap};

/// A compact thermal model of a floorplan inside a package.
///
/// Node layout for an `n`-core plan (`N = 3n + 2` nodes total):
///
/// | Range          | Layer                         |
/// |----------------|-------------------------------|
/// | `0..n`         | die cells (one per core)      |
/// | `n..2n`        | spreader cells under the die  |
/// | `2n`           | spreader periphery ring       |
/// | `2n+1..3n+1`   | sink cells under the die      |
/// | `3n+1`         | sink periphery ring           |
#[derive(Debug, Clone)]
pub struct ThermalModel {
    g: CsrMatrix,
    /// Conductance from each node to ambient (W/K); zero for
    /// non-convecting nodes.
    g_ambient: Vec<f64>,
    /// Heat capacity of each node (J/K).
    capacitance: Vec<f64>,
    ambient: Celsius,
    /// Logical cores (what power maps index).
    cores: usize,
    rows: usize,
    cols: usize,
    /// Die cells per core side: 1 for the block model, s for an s×s
    /// grid-mode subdivision.
    subdivision: usize,
    /// Logical core owning each fine die cell.
    core_of_cell: Vec<usize>,
    /// Sparse LDLᵀ factors of `g`, resolved at construction through the
    /// process-global `FactorCache` — "factor once" literally happens
    /// when the model is assembled, so every steady-state solve is a
    /// pure substitution. `None` means the matrix is not factorable and
    /// solves go through the iterative chain.
    factors: Option<Arc<SpdFactors>>,
}

impl ThermalModel {
    /// Builds the RC network for `plan` inside `package`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidPackage`] for invalid package
    /// parameters and [`ThermalError::LayerTooSmall`] when the spreader
    /// or sink cannot cover the die.
    pub fn new(plan: &Floorplan, package: PackageConfig) -> Result<Self, ThermalError> {
        Self::with_subdivision(plan, package, 1)
    }

    /// Builds the RC network with each core subdivided into
    /// `subdivision × subdivision` die/spreader/sink cells — HotSpot's
    /// "grid mode". Power maps remain *per core* (each core's power is
    /// spread uniformly over its cells); reported die temperatures are
    /// the per-core maxima, which resolves intra-die gradients more
    /// sharply at the cost of `s²` more unknowns.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidPackage`] for invalid package
    /// parameters or a zero subdivision, and
    /// [`ThermalError::LayerTooSmall`] when the spreader or sink cannot
    /// cover the die.
    pub fn with_subdivision(
        plan: &Floorplan,
        package: PackageConfig,
        subdivision: usize,
    ) -> Result<Self, ThermalError> {
        package.validate()?;
        if subdivision == 0 {
            return Err(ThermalError::InvalidPackage {
                name: "subdivision",
                value: 0.0,
            });
        }
        let s = subdivision;
        let fine = if s == 1 {
            plan.clone()
        } else {
            Floorplan::grid(
                plan.rows() * s,
                plan.cols() * s,
                plan.core_area() / (s * s) as f64,
            )
            .map_err(|_| ThermalError::InvalidPackage {
                name: "subdivision",
                value: s as f64,
            })?
        };
        let mut model = Self::assemble(&fine, package)?;
        // Re-express the model in logical-core terms.
        let cores = plan.core_count();
        let mut core_of_cell = vec![0_usize; fine.core_count()];
        for (cell, owner) in core_of_cell.iter_mut().enumerate() {
            let row = cell / fine.cols();
            let col = cell % fine.cols();
            *owner = (row / s) * plan.cols() + col / s;
        }
        model.cores = cores;
        model.rows = plan.rows();
        model.cols = plan.cols();
        model.subdivision = s;
        model.core_of_cell = core_of_cell;
        Ok(model)
    }

    /// Assembles the RC network treating every floorplan cell as one
    /// thermal cell (the logical/fine distinction is installed by the
    /// callers).
    fn assemble(plan: &Floorplan, package: PackageConfig) -> Result<Self, ThermalError> {
        let n = plan.core_count();
        let cell_area = plan.core_area().value() * 1.0e-6; // mm² → m²
        let die_area = cell_area * n as f64;

        let spreader_side = package
            .spreader
            .side_m
            .unwrap_or(plan.chip_width_mm() * 1e-3);
        let sink_side = package.sink.side_m.unwrap_or(spreader_side);
        let spreader_area = spreader_side * spreader_side;
        let sink_area = sink_side * sink_side;
        if spreader_area < die_area {
            return Err(ThermalError::LayerTooSmall { layer: "spreader" });
        }
        if sink_area < spreader_area {
            return Err(ThermalError::LayerTooSmall { layer: "sink" });
        }

        let total = 3 * n + 2;
        let sp_periph = 2 * n; // spreader periphery node index
        let sink_base = 2 * n + 1; // first sink cell
        let sink_periph = 3 * n + 1;

        let die = &package.die;
        let tim = &package.interface;
        let sp = &package.spreader;
        let sink = &package.sink;

        let mut g = TripletMatrix::new(total, total);

        // Lateral conduction: between adjacent equal-size cells the
        // conductance is k·(t·w)/w = k·t.
        let g_die_lat = die.conductivity * die.thickness_m;
        let g_sp_lat = sp.conductivity * sp.thickness_m;
        let g_sink_lat = sink.conductivity * sink.thickness_m;

        // Vertical resistances per cell column (K/W).
        let r_die_sp = die.thickness_m / 2.0 / (die.conductivity * cell_area)
            + tim.thickness_m / (tim.conductivity * cell_area)
            + sp.thickness_m / 2.0 / (sp.conductivity * cell_area);
        let r_sp_sink = sp.thickness_m / 2.0 / (sp.conductivity * cell_area)
            + sink.thickness_m / 2.0 / (sink.conductivity * cell_area);

        // Ring geometries.
        let sp_ring_area = spreader_area - die_area;
        let sink_ring_area = sink_area - die_area;
        let r_ring_vertical = if sp_ring_area > 0.0 {
            sp.thickness_m / 2.0 / (sp.conductivity * sp_ring_area)
                + sink.thickness_m / 2.0 / (sink.conductivity * sp_ring_area)
        } else {
            f64::INFINITY
        };

        for core in plan.cores() {
            let i = core.index();
            let die_node = i;
            let sp_node = n + i;
            let sink_node = sink_base + i;

            // Vertical stack.
            g.stamp_conductance(die_node, sp_node, 1.0 / r_die_sp);
            g.stamp_conductance(sp_node, sink_node, 1.0 / r_sp_sink);

            // Lateral neighbours (each undirected pair stamped once).
            let mut degree = 0;
            for nb in plan
                .neighbors(core)
                .map_err(|_| ThermalError::PowerMapMismatch {
                    got: i,
                    expected: n,
                })?
            {
                degree += 1;
                if nb.index() > i {
                    g.stamp_conductance(die_node, nb.index(), g_die_lat);
                    g.stamp_conductance(sp_node, n + nb.index(), g_sp_lat);
                    g.stamp_conductance(sink_node, sink_base + nb.index(), g_sink_lat);
                }
            }

            // Boundary faces connect to the periphery rings (spreader
            // and sink extend beyond the die; the thin die does not).
            let missing_faces = 4 - degree;
            if missing_faces > 0 && sp_ring_area > 0.0 {
                g.stamp_conductance(sp_node, sp_periph, g_sp_lat * missing_faces as f64);
                g.stamp_conductance(sink_node, sink_periph, g_sink_lat * missing_faces as f64);
            }
        }

        // Spreader ring sits on the sink (ring region).
        if sp_ring_area > 0.0 {
            g.stamp_conductance(sp_periph, sink_periph, 1.0 / r_ring_vertical);
        }

        // Convection to ambient, distributed over the sink by area.
        let g_conv_total = 1.0 / package.convection_resistance;
        let mut g_ambient = vec![0.0; total];
        for i in 0..n {
            let share = cell_area / sink_area;
            g_ambient[sink_base + i] = g_conv_total * share;
            g.stamp_to_reference(sink_base + i, g_conv_total * share);
        }
        let ring_share = sink_ring_area / sink_area;
        g_ambient[sink_periph] = g_conv_total * ring_share;
        g.stamp_to_reference(sink_periph, g_conv_total * ring_share);

        // Heat capacities.
        let mut capacitance = vec![0.0; total];
        for i in 0..n {
            capacitance[i] = die.specific_heat * cell_area * die.thickness_m
                + tim.specific_heat * cell_area * tim.thickness_m;
            capacitance[n + i] = sp.specific_heat * cell_area * sp.thickness_m;
            capacitance[sink_base + i] = sink.specific_heat * cell_area * sink.thickness_m
                + package.convection_capacitance * (cell_area / sink_area);
        }
        capacitance[sp_periph] = (sp.specific_heat * sp_ring_area * sp.thickness_m).max(1e-9);
        capacitance[sink_periph] = sink.specific_heat * sink_ring_area * sink.thickness_m
            + package.convection_capacitance * ring_share;

        let g = g.to_csr();
        let factors = FactorCache::global().get_or_factor(&g);
        Ok(Self {
            g,
            g_ambient,
            capacitance,
            ambient: package.ambient,
            cores: n,
            rows: plan.rows(),
            cols: plan.cols(),
            subdivision: 1,
            core_of_cell: (0..n).collect(),
            factors,
        })
    }

    /// Number of logical cores (what power maps index).
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores
    }

    /// Die cells per core side (1 = block model).
    #[must_use]
    pub fn subdivision(&self) -> usize {
        self.subdivision
    }

    /// Number of fine die cells (`cores · subdivision²`).
    #[must_use]
    pub fn die_cell_count(&self) -> usize {
        self.core_of_cell.len()
    }

    /// Logical core owning each fine die cell, in cell order.
    #[must_use]
    pub fn core_of_cell(&self) -> &[usize] {
        &self.core_of_cell
    }

    /// Total nodes in the network.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.g.rows()
    }

    /// The ambient temperature.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// The conductance matrix (for inspection/validation).
    #[must_use]
    pub fn conductance(&self) -> &CsrMatrix {
        &self.g
    }

    /// Per-node ambient conductances in W/K.
    #[must_use]
    pub fn ambient_conductances(&self) -> &[f64] {
        &self.g_ambient
    }

    /// Per-node heat capacities in J/K.
    #[must_use]
    pub fn capacitances(&self) -> &[f64] {
        &self.capacitance
    }

    /// Floorplan grid shape `(rows, cols)` this model was built for.
    #[must_use]
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Builds the right-hand side `P + G_amb·T_amb` for a per-core
    /// power map.
    pub(crate) fn rhs(&self, power: &[Watts]) -> Result<Vec<f64>, ThermalError> {
        if power.len() != self.cores {
            return Err(ThermalError::PowerMapMismatch {
                got: power.len(),
                expected: self.cores,
            });
        }
        if let Some(bad) = power.iter().position(|p| !p.value().is_finite()) {
            return Err(ThermalError::NonFinitePower {
                core: bad,
                value: power[bad].value(),
            });
        }
        let mut rhs: Vec<f64> = self
            .g_ambient
            .iter()
            .map(|g| g * self.ambient.value())
            .collect();
        let share = 1.0 / (self.subdivision * self.subdivision) as f64;
        for (cell, &owner) in self.core_of_cell.iter().enumerate() {
            rhs[cell] += power[owner].value() * share;
        }
        Ok(rhs)
    }

    pub(crate) fn map_from_state(&self, state: Vec<f64>) -> ThermalMap {
        if self.subdivision == 1 {
            return ThermalMap::from_state(state, self.cores, self.rows, self.cols);
        }
        let die = Self::project_die(&self.core_of_cell, self.cores, &state);
        ThermalMap::from_parts(die, state, self.rows, self.cols)
    }

    /// Per-core die temperatures as the maximum over each core's cells.
    pub(crate) fn project_die(core_of_cell: &[usize], cores: usize, state: &[f64]) -> Vec<f64> {
        let mut die = vec![f64::NEG_INFINITY; cores];
        for (cell, &owner) in core_of_cell.iter().enumerate() {
            if state[cell] > die[owner] {
                die[owner] = state[cell];
            }
        }
        die
    }

    /// Solves the steady-state temperatures for a per-core power map.
    ///
    /// The solve prefers the factor-cached fast path (sparse LDLᵀ
    /// factored once per conductance matrix, then reused across every
    /// solve on the same floorplan) and falls back to the robust chain
    /// (preconditioned CG → restarted CG with relaxed tolerance → dense
    /// LU) when the factors are unavailable or residual-checked
    /// solutions drift — so a transiently ill-conditioned system
    /// degrades to a slower solve instead of an error.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerMapMismatch`] for wrong-length maps,
    /// [`ThermalError::NonFinitePower`] for NaN/Inf power inputs, and
    /// [`ThermalError::Solver`] if every stage of the chain fails.
    pub fn steady_state(&self, power: &[Watts]) -> Result<ThermalMap, ThermalError> {
        self.steady_state_with_diagnostics(power)
            .map(|(map, _)| map)
    }

    /// Like [`ThermalModel::steady_state`] but seeds any iterative
    /// fallback solve from a previous solution's node states — the warm
    /// start used by fixed-point loops (leakage↔temperature) and
    /// placement optimisers where successive power maps differ little.
    /// The factored fast path needs no seed; when the solve does fall
    /// back to CG, the seed is guarded so a warm start never produces a
    /// worse residual than a cold one.
    ///
    /// # Errors
    ///
    /// Same as [`ThermalModel::steady_state`].
    pub fn steady_state_seeded(
        &self,
        power: &[Watts],
        seed: Option<&ThermalMap>,
    ) -> Result<ThermalMap, ThermalError> {
        self.steady_state_inner(power, seed).map(|(map, _)| map)
    }

    /// Like [`ThermalModel::steady_state`] but also reports which solver
    /// stage produced the answer and how much work it took.
    ///
    /// # Errors
    ///
    /// Same as [`ThermalModel::steady_state`].
    pub fn steady_state_with_diagnostics(
        &self,
        power: &[Watts],
    ) -> Result<(ThermalMap, SolveDiagnostics), ThermalError> {
        self.steady_state_inner(power, None)
    }

    fn steady_state_inner(
        &self,
        power: &[Watts],
        seed: Option<&ThermalMap>,
    ) -> Result<(ThermalMap, SolveDiagnostics), ThermalError> {
        let _span = darksil_obs::span("thermal.steady_state");
        #[allow(clippy::cast_precision_loss)]
        darksil_obs::observe("thermal.solve_nodes", self.node_count() as f64);
        let rhs = self.rhs(power)?;
        let seed_state: Option<&[f64]> = seed
            .map(ThermalMap::state)
            .filter(|s| s.len() == self.node_count());
        let (state, diagnostics) = solve_spd_factored(
            self.factors.as_deref(),
            &self.g,
            &rhs,
            seed_state,
            &self.cg_options(),
        )?;
        let map = self.map_from_state(state);
        if darksil_obs::events_enabled() {
            let peak = map.peak().value();
            let cores: Vec<f64> = map.die_temperatures().map(Celsius::value).collect();
            darksil_obs::event("thermal.steady", || {
                vec![("peak_c", peak.into()), ("cores", cores.into())]
            });
        }
        Ok((map, diagnostics))
    }

    /// The CG configuration for steady-state solves: the strict default
    /// normally, the declared-degraded tolerance
    /// ([`DEGRADED_CG_TOLERANCE`](crate::DEGRADED_CG_TOLERANCE)) when
    /// the current [`darksil_robust::RunContext`] runs a degraded
    /// attempt — a supervisor's last resort for a solve that blew its
    /// deadline at full accuracy.
    fn cg_options(&self) -> CgOptions {
        if darksil_robust::is_degraded() {
            CgOptions {
                tolerance: crate::DEGRADED_CG_TOLERANCE,
                ..CgOptions::default()
            }
        } else {
            CgOptions::default()
        }
    }

    /// Pre-factors the conductance matrix (dense LU) for repeated
    /// steady-state solves — worthwhile for parameter sweeps like the
    /// Figure 5/6 frequency scans.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Solver`] if factorisation fails.
    pub fn prefactored(&self) -> Result<SteadySolver<'_>, ThermalError> {
        let lu = self.g.to_dense().lu()?;
        Ok(SteadySolver { model: self, lu })
    }
}

/// A pre-factored steady-state solver borrowed from a [`ThermalModel`].
///
/// Produced by [`ThermalModel::prefactored`]; each
/// [`SteadySolver::solve`] is a forward/backward substitution rather
/// than a fresh iterative solve.
#[derive(Debug)]
pub struct SteadySolver<'a> {
    model: &'a ThermalModel,
    lu: LuFactors,
}

impl SteadySolver<'_> {
    /// Solves the steady state for one power map.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerMapMismatch`] for wrong-length maps
    /// and [`ThermalError::Solver`] on substitution failure.
    pub fn solve(&self, power: &[Watts]) -> Result<ThermalMap, ThermalError> {
        let _span = darksil_obs::span("thermal.steady_lu");
        let rhs = self.model.rhs(power)?;
        let state = self.lu.solve(&rhs)?;
        Ok(self.model.map_from_state(state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_floorplan::{CoreId, Floorplan};
    use darksil_units::SquareMillimeters;

    fn plan() -> Floorplan {
        Floorplan::grid(10, 10, SquareMillimeters::new(5.1)).expect("valid floorplan")
    }

    fn model() -> ThermalModel {
        ThermalModel::new(&plan(), PackageConfig::paper_dac15()).expect("valid thermal model")
    }

    #[test]
    fn network_shape() {
        let m = model();
        assert_eq!(m.core_count(), 100);
        assert_eq!(m.node_count(), 302);
        assert!(m.conductance().is_symmetric(1e-9));
    }

    #[test]
    fn zero_power_sits_at_ambient() {
        let m = model();
        let map = m
            .steady_state(&vec![Watts::zero(); 100])
            .expect("solve succeeds");
        for core in plan().cores() {
            let t = map.core(core);
            assert!((t.value() - 45.0).abs() < 1e-6, "{core}: {t}");
        }
    }

    #[test]
    fn energy_balance_at_steady_state() {
        let m = model();
        let power = vec![Watts::new(1.85); 100]; // 185 W total
        let map = m.steady_state(&power).expect("solve succeeds");
        let out: f64 = m
            .ambient_conductances()
            .iter()
            .zip(map.state())
            .map(|(g, t)| g * (t - m.ambient().value()))
            .sum();
        assert!((out - 185.0).abs() < 1e-3, "convected {out} W of 185 W");
    }

    #[test]
    fn uniform_load_peak_in_plausible_band() {
        // 185 W spread over the whole 100-core chip: sink rise alone is
        // 18.5 °C; die should sit tens of degrees over ambient but well
        // below runaway.
        let m = model();
        let map = m
            .steady_state(&vec![Watts::new(1.85); 100])
            .expect("solve succeeds");
        let peak = map.peak();
        assert!(peak.value() > 60.0 && peak.value() < 90.0, "peak {peak}");
        // Centre runs hotter than the corner under uniform power.
        let centre = map.core(CoreId(55));
        let corner = map.core(CoreId(0));
        assert!(centre > corner);
    }

    #[test]
    fn concentrating_power_raises_the_peak() {
        // The physical core of dark-silicon patterning (Figure 8): the
        // same total power concentrated in a contiguous block runs
        // hotter than when spread out.
        let m = model();
        let total = 150.0;
        let contiguous: Vec<Watts> = (0..100)
            .map(|i| {
                if i < 50 {
                    Watts::new(total / 50.0)
                } else {
                    Watts::zero()
                }
            })
            .collect();
        let spread: Vec<Watts> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    Watts::new(total / 50.0)
                } else {
                    Watts::zero()
                }
            })
            .collect();
        let t_contig = m.steady_state(&contiguous).expect("solve succeeds").peak();
        let t_spread = m.steady_state(&spread).expect("solve succeeds").peak();
        assert!(
            t_contig - t_spread > 0.5,
            "contiguous {t_contig} vs spread {t_spread}"
        );
    }

    #[test]
    fn figure8_scenario_brackets_the_dtm_threshold() {
        // 52 contiguous cores at 196 W total must land near/above the
        // 80 °C DTM threshold; the full chip idle-balanced case far
        // below it.
        let m = model();
        let per_core = 196.0 / 52.0;
        let contiguous: Vec<Watts> = (0..100)
            .map(|i| {
                if i < 52 {
                    Watts::new(per_core)
                } else {
                    Watts::zero()
                }
            })
            .collect();
        let peak = m.steady_state(&contiguous).expect("solve succeeds").peak();
        assert!(
            peak.value() > 74.0 && peak.value() < 92.0,
            "fig-8 contiguous peak = {peak}"
        );
    }

    #[test]
    fn prefactored_matches_cg() {
        let m = model();
        let power: Vec<Watts> = (0..100).map(|i| Watts::new((i % 5) as f64)).collect();
        let cg = m.steady_state(&power).expect("solve succeeds");
        let solver = m.prefactored().expect("solve succeeds");
        let lu = solver.solve(&power).expect("solve succeeds");
        for core in plan().cores() {
            assert!(
                (cg.core(core) - lu.core(core)).abs() < 1e-5,
                "{core}: cg {} vs lu {}",
                cg.core(core),
                lu.core(core)
            );
        }
    }

    #[test]
    fn superposition_holds() {
        // The network is linear: T(P1 + P2) − T_amb == (T(P1) − T_amb)
        // + (T(P2) − T_amb).
        let m = model();
        let p1: Vec<Watts> = (0..100)
            .map(|i| {
                if i < 30 {
                    Watts::new(2.0)
                } else {
                    Watts::zero()
                }
            })
            .collect();
        let p2: Vec<Watts> = (0..100)
            .map(|i| {
                if i >= 70 {
                    Watts::new(1.0)
                } else {
                    Watts::zero()
                }
            })
            .collect();
        let both: Vec<Watts> = p1.iter().zip(&p2).map(|(a, b)| *a + *b).collect();
        let t1 = m.steady_state(&p1).expect("solve succeeds");
        let t2 = m.steady_state(&p2).expect("solve succeeds");
        let t12 = m.steady_state(&both).expect("solve succeeds");
        for core in plan().cores() {
            let lhs = t12.core(core).value() - 45.0;
            let rhs = (t1.core(core).value() - 45.0) + (t2.core(core).value() - 45.0);
            assert!((lhs - rhs).abs() < 1e-5, "{core}");
        }
    }

    #[test]
    fn wrong_power_map_length_rejected() {
        let m = model();
        assert!(matches!(
            m.steady_state(&vec![Watts::zero(); 99]),
            Err(ThermalError::PowerMapMismatch {
                got: 99,
                expected: 100
            })
        ));
    }

    #[test]
    fn sink_too_small_rejected() {
        let mut pkg = PackageConfig::paper_dac15();
        pkg.sink.side_m = Some(0.02); // smaller than the 3 cm spreader
        assert!(matches!(
            ThermalModel::new(&plan(), pkg),
            Err(ThermalError::LayerTooSmall { layer: "sink" })
        ));
        let mut pkg = PackageConfig::paper_dac15();
        pkg.spreader.side_m = Some(0.01); // smaller than the 22.6 mm die
        assert!(matches!(
            ThermalModel::new(&plan(), pkg),
            Err(ThermalError::LayerTooSmall { layer: "spreader" })
        ));
    }

    #[test]
    fn grid_mode_shape() {
        let plan = Floorplan::grid(4, 4, SquareMillimeters::new(5.1)).expect("valid floorplan");
        let m = ThermalModel::with_subdivision(&plan, PackageConfig::paper_dac15(), 2)
            .expect("valid thermal model");
        assert_eq!(m.core_count(), 16);
        assert_eq!(m.subdivision(), 2);
        assert_eq!(m.die_cell_count(), 64);
        // Fine network: 3·64 + 2 nodes.
        assert_eq!(m.node_count(), 194);
        // Every cell has a valid owner and each core owns exactly s².
        let mut counts = [0_usize; 16];
        for &owner in m.core_of_cell() {
            counts[owner] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn grid_mode_agrees_with_block_mode_on_uniform_load() {
        let plan = Floorplan::grid(4, 4, SquareMillimeters::new(5.1)).expect("valid floorplan");
        let block =
            ThermalModel::new(&plan, PackageConfig::paper_dac15()).expect("valid thermal model");
        let grid = ThermalModel::with_subdivision(&plan, PackageConfig::paper_dac15(), 2)
            .expect("valid thermal model");
        let power = vec![Watts::new(3.0); 16];
        let t_block = block.steady_state(&power).expect("solve succeeds").peak();
        let t_grid = grid.steady_state(&power).expect("solve succeeds").peak();
        assert!(
            (t_block - t_grid).abs() < 1.0,
            "block {t_block} vs grid {t_grid}"
        );
    }

    #[test]
    fn grid_mode_energy_balance() {
        let plan = Floorplan::grid(4, 4, SquareMillimeters::new(5.1)).expect("valid floorplan");
        let m = ThermalModel::with_subdivision(&plan, PackageConfig::paper_dac15(), 3)
            .expect("valid thermal model");
        let power: Vec<Watts> = (0..16).map(|i| Watts::new((i % 4) as f64)).collect();
        let total: f64 = power.iter().map(|p| p.value()).sum();
        let map = m.steady_state(&power).expect("solve succeeds");
        let out: f64 = m
            .ambient_conductances()
            .iter()
            .zip(map.state())
            .map(|(g, t)| g * (t - m.ambient().value()))
            .sum();
        assert!((out - total).abs() < 1e-3, "convected {out} of {total} W");
    }

    #[test]
    fn grid_mode_refines_single_hotspot() {
        // A single hot core in a cold field: the subdivided model stays
        // close to the block model but runs slightly *cooler* — the
        // block model lumps the core footprint into one node and cannot
        // represent heat spreading within it. (Power is uniform inside
        // a core, so grid mode relaxes, never sharpens, this case.)
        let plan = Floorplan::grid(4, 4, SquareMillimeters::new(5.1)).expect("valid floorplan");
        let block =
            ThermalModel::new(&plan, PackageConfig::paper_dac15()).expect("valid thermal model");
        let grid = ThermalModel::with_subdivision(&plan, PackageConfig::paper_dac15(), 3)
            .expect("valid thermal model");
        let mut power = vec![Watts::zero(); 16];
        power[5] = Watts::new(8.0);
        let t_block = block.steady_state(&power).expect("solve succeeds").peak();
        let map_grid = grid.steady_state(&power).expect("solve succeeds");
        let t_grid = map_grid.peak();
        assert!(
            t_grid <= t_block + 0.05,
            "grid {t_grid} above block {t_block}"
        );
        assert!(
            (t_block - t_grid).abs() < 1.5,
            "models diverge: block {t_block} vs grid {t_grid}"
        );
        // Per-core reporting is still logical-core shaped, and the hot
        // core is identified correctly.
        assert_eq!(map_grid.core_count(), 16);
        let hottest = map_grid
            .die_temperatures()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("test value"))
            .map(|(i, _)| i)
            .expect("test value");
        assert_eq!(hottest, 5);
    }

    #[test]
    fn zero_subdivision_rejected() {
        let plan = Floorplan::grid(2, 2, SquareMillimeters::new(5.1)).expect("valid floorplan");
        assert!(matches!(
            ThermalModel::with_subdivision(&plan, PackageConfig::paper_dac15(), 0),
            Err(ThermalError::InvalidPackage {
                name: "subdivision",
                ..
            })
        ));
    }

    #[test]
    fn capacitances_are_positive_and_sized_sanely() {
        let m = model();
        assert!(m.capacitances().iter().all(|&c| c > 0.0));
        // Die cells must respond much faster than the sink.
        let die_tau = m.capacitances()[0];
        let sink_tau = m.capacitances()[2 * 100 + 1];
        assert!(sink_tau > 10.0 * die_tau);
    }
}
