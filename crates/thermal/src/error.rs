//! Error type for the thermal crate.

use std::error::Error;
use std::fmt;

use darksil_numerics::NumericsError;

/// Errors from thermal-model construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A package parameter was non-positive or non-finite.
    InvalidPackage {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The power map length does not match the floorplan's core count.
    PowerMapMismatch {
        /// Supplied entries.
        got: usize,
        /// Expected entries (core count).
        expected: usize,
    },
    /// The die is larger than the spreader or the spreader larger than
    /// the sink — the stack-up would be physically impossible.
    LayerTooSmall {
        /// The layer that is too small.
        layer: &'static str,
    },
    /// A per-core power input was NaN or infinite.
    NonFinitePower {
        /// Index of the offending core.
        core: usize,
        /// The offending value in watts.
        value: f64,
    },
    /// An inner linear-algebra failure.
    Solver(NumericsError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidPackage { name, value } => {
                write!(f, "invalid package parameter {name} = {value}")
            }
            Self::PowerMapMismatch { got, expected } => {
                write!(
                    f,
                    "power map has {got} entries, floorplan has {expected} cores"
                )
            }
            Self::LayerTooSmall { layer } => {
                write!(f, "{layer} is smaller than the layer it must cover")
            }
            Self::NonFinitePower { core, value } => {
                write!(f, "power for core {core} is non-finite ({value})")
            }
            Self::Solver(e) => write!(f, "thermal solve failed: {e}"),
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for ThermalError {
    fn from(e: NumericsError) -> Self {
        Self::Solver(e)
    }
}

impl From<ThermalError> for darksil_robust::DarksilError {
    fn from(e: ThermalError) -> Self {
        match e {
            ThermalError::Solver(inner) => {
                darksil_robust::DarksilError::from(inner).context("thermal solve")
            }
            ThermalError::NonFinitePower { .. } => Self::non_finite(e.to_string()),
            ThermalError::PowerMapMismatch { .. } => Self::dimension(e.to_string()),
            ThermalError::InvalidPackage { .. } | ThermalError::LayerTooSmall { .. } => {
                Self::config(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ThermalError::PowerMapMismatch {
            got: 99,
            expected: 100,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.source().is_none());

        let inner = NumericsError::ConvergenceFailure {
            iterations: 5,
            residual: 1.0,
        };
        let e = ThermalError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("thermal solve failed"));
    }
}
