//! Package (die / TIM / spreader / sink) configuration.

use darksil_units::Celsius;

use crate::ThermalError;

/// Geometry and material of one conductive layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerConfig {
    /// Side length of the (square) layer in metres. `None` means the
    /// layer is congruent with the die.
    pub side_m: Option<f64>,
    /// Thickness in metres.
    pub thickness_m: f64,
    /// Thermal conductivity in W/(m·K).
    pub conductivity: f64,
    /// Volumetric specific heat in J/(m³·K).
    pub specific_heat: f64,
}

impl LayerConfig {
    fn validate(&self, layer: &'static str) -> Result<(), ThermalError> {
        for (name, value) in [
            ("thickness", self.thickness_m),
            ("conductivity", self.conductivity),
            ("specific_heat", self.specific_heat),
        ] {
            if value <= 0.0 || !value.is_finite() {
                let _ = layer;
                return Err(ThermalError::InvalidPackage { name, value });
            }
        }
        if let Some(side) = self.side_m {
            if side <= 0.0 || !side.is_finite() {
                return Err(ThermalError::InvalidPackage {
                    name: "side",
                    value: side,
                });
            }
        }
        Ok(())
    }
}

/// Full package description, defaulting to the paper's §2.1 HotSpot
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackageConfig {
    /// Silicon die layer (congruent with the floorplan).
    pub die: LayerConfig,
    /// Thermal interface material between die and spreader.
    pub interface: LayerConfig,
    /// Copper heat spreader.
    pub spreader: LayerConfig,
    /// Heat sink base.
    pub sink: LayerConfig,
    /// Sink-to-ambient convection resistance in K/W.
    pub convection_resistance: f64,
    /// Lumped convection (fan/fin) heat capacitance in J/K.
    pub convection_capacitance: f64,
    /// Ambient temperature.
    pub ambient: Celsius,
}

impl PackageConfig {
    /// The exact configuration listed in §2.1 of the paper:
    /// 0.15 mm die (k = 100 W/mK, c = 1.75·10⁶ J/m³K), 20 µm TIM
    /// (k = 4 W/mK, c = 4·10⁶), 3×3 cm / 1 mm spreader and 6×6 cm /
    /// 6.9 mm sink (k = 400 W/mK, c = 3.55·10⁶), 0.1 K/W convection
    /// resistance, 140.4 J/K convection capacitance, with HotSpot's
    /// default 45 °C ambient.
    #[must_use]
    pub fn paper_dac15() -> Self {
        Self {
            die: LayerConfig {
                side_m: None,
                thickness_m: 0.15e-3,
                conductivity: 100.0,
                specific_heat: 1.75e6,
            },
            interface: LayerConfig {
                side_m: None,
                thickness_m: 20.0e-6,
                conductivity: 4.0,
                specific_heat: 4.0e6,
            },
            spreader: LayerConfig {
                side_m: Some(0.03),
                thickness_m: 1.0e-3,
                conductivity: 400.0,
                specific_heat: 3.55e6,
            },
            sink: LayerConfig {
                side_m: Some(0.06),
                thickness_m: 6.9e-3,
                conductivity: 400.0,
                specific_heat: 3.55e6,
            },
            convection_resistance: 0.1,
            convection_capacitance: 140.4,
            ambient: Celsius::new(45.0),
        }
    }

    /// A constrained mobile/laptop-class package: same stack-up but a
    /// quarter-size spreader and sink (3 cm, 3.5 mm thick) and a much
    /// weaker 0.6 K/W convection path (thin fins, low airflow).
    #[must_use]
    pub fn laptop() -> Self {
        let mut p = Self::paper_dac15();
        p.spreader.side_m = Some(0.024);
        p.sink.side_m = Some(0.03);
        p.sink.thickness_m = 3.5e-3;
        p.convection_resistance = 0.6;
        p.convection_capacitance = 40.0;
        p
    }

    /// A high-end server package: larger 8×8 cm sink with forced air at
    /// 0.05 K/W.
    #[must_use]
    pub fn server() -> Self {
        let mut p = Self::paper_dac15();
        p.sink.side_m = Some(0.08);
        p.convection_resistance = 0.05;
        p.convection_capacitance = 250.0;
        p
    }

    /// Returns a copy with a different ambient temperature.
    #[must_use]
    pub fn with_ambient(mut self, ambient: Celsius) -> Self {
        self.ambient = ambient;
        self
    }

    /// Returns a copy with a different convection resistance.
    #[must_use]
    pub fn with_convection_resistance(mut self, r: f64) -> Self {
        self.convection_resistance = r;
        self
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidPackage`] for non-positive or
    /// non-finite values.
    pub fn validate(&self) -> Result<(), ThermalError> {
        self.die.validate("die")?;
        self.interface.validate("interface")?;
        self.spreader.validate("spreader")?;
        self.sink.validate("sink")?;
        if self.convection_resistance <= 0.0 || !self.convection_resistance.is_finite() {
            return Err(ThermalError::InvalidPackage {
                name: "convection_resistance",
                value: self.convection_resistance,
            });
        }
        if self.convection_capacitance <= 0.0 || !self.convection_capacitance.is_finite() {
            return Err(ThermalError::InvalidPackage {
                name: "convection_capacitance",
                value: self.convection_capacitance,
            });
        }
        if !self.ambient.is_finite() {
            return Err(ThermalError::InvalidPackage {
                name: "ambient",
                value: self.ambient.value(),
            });
        }
        Ok(())
    }
}

impl Default for PackageConfig {
    fn default() -> Self {
        Self::paper_dac15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = PackageConfig::paper_dac15();
        assert_eq!(p.die.thickness_m, 0.15e-3);
        assert_eq!(p.die.conductivity, 100.0);
        assert_eq!(p.interface.thickness_m, 20.0e-6);
        assert_eq!(p.interface.conductivity, 4.0);
        assert_eq!(p.spreader.side_m, Some(0.03));
        assert_eq!(p.sink.side_m, Some(0.06));
        assert_eq!(p.sink.thickness_m, 6.9e-3);
        assert_eq!(p.convection_resistance, 0.1);
        assert_eq!(p.convection_capacitance, 140.4);
        assert!(p.validate().is_ok());
        assert_eq!(PackageConfig::default(), p);
    }

    #[test]
    fn presets_order_by_cooling_strength() {
        let laptop = PackageConfig::laptop();
        let desktop = PackageConfig::paper_dac15();
        let server = PackageConfig::server();
        assert!(laptop.convection_resistance > desktop.convection_resistance);
        assert!(desktop.convection_resistance > server.convection_resistance);
        assert!(laptop.validate().is_ok());
        assert!(server.validate().is_ok());
    }

    #[test]
    fn builders() {
        let p = PackageConfig::paper_dac15()
            .with_ambient(Celsius::new(25.0))
            .with_convection_resistance(0.2);
        assert_eq!(p.ambient, Celsius::new(25.0));
        assert_eq!(p.convection_resistance, 0.2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut p = PackageConfig::paper_dac15();
        p.die.thickness_m = 0.0;
        assert!(matches!(
            p.validate(),
            Err(ThermalError::InvalidPackage {
                name: "thickness",
                ..
            })
        ));

        let mut p = PackageConfig::paper_dac15();
        p.convection_resistance = -0.1;
        assert!(p.validate().is_err());

        let mut p = PackageConfig::paper_dac15();
        p.spreader.side_m = Some(f64::NAN);
        assert!(p.validate().is_err());

        let mut p = PackageConfig::paper_dac15();
        p.ambient = Celsius::new(f64::INFINITY);
        assert!(p.validate().is_err());
    }
}
