//! Compact thermal RC modelling — the workspace's HotSpot stand-in.
//!
//! The paper obtains on-chip temperatures from HotSpot (§2.1) with a
//! fully specified package: a 0.15 mm die, 20 µm thermal interface
//! material, a 3×3 cm / 1 mm copper spreader and a 6×6 cm / 6.9 mm heat
//! sink with a 0.1 K/W convection resistance. This crate rebuilds that
//! methodology from scratch as a block-level RC network:
//!
//! * one thermal cell per core in the **die**, **spreader** and **sink**
//!   layers (the TIM is folded into the die→spreader resistance),
//! * a **periphery node** for the spreader and sink rings that extend
//!   beyond the die footprint,
//! * lateral conduction within each layer, vertical conduction between
//!   layers, and convection from every sink node to ambient,
//! * heat capacities per cell (plus the package's convection
//!   capacitance) for transient analysis.
//!
//! Steady states solve the SPD system `G·T = P + G_amb·T_amb` with
//! conjugate gradients (or a pre-factored dense LU for solve-many
//! sweeps); transients integrate `C·dT/dt = P + G_amb·T_amb − G·T` with
//! the backward-Euler stepper of `darksil-numerics`.
//!
//! # Examples
//!
//! ```
//! use darksil_floorplan::Floorplan;
//! use darksil_thermal::{PackageConfig, ThermalModel};
//! use darksil_units::{SquareMillimeters, Watts};
//!
//! let plan = Floorplan::grid(10, 10, SquareMillimeters::new(5.1))?;
//! let model = ThermalModel::new(&plan, PackageConfig::paper_dac15())?;
//!
//! // 52 active cores at ≈3.8 W (the Figure 8 scenario).
//! let power: Vec<Watts> = (0..100)
//!     .map(|i| if i < 52 { Watts::new(3.77) } else { Watts::zero() })
//!     .collect();
//! let map = model.steady_state(&power)?;
//! assert!(map.peak().value() > 60.0 && map.peak().value() < 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod map;
mod model;
mod package;
mod transient;

/// Relative CG tolerance used for steady-state solves in a declared
/// *degraded* attempt (see `darksil_robust::is_degraded`): the loosest
/// tolerance the robust chain's relaxed stage would accept, traded for
/// convergence when a full-accuracy solve blew its wall-clock budget.
/// Artefacts produced this way are tagged `"degraded": true` with this
/// knob recorded.
pub const DEGRADED_CG_TOLERANCE: f64 = 1.0e-6;

pub use error::ThermalError;
pub use map::ThermalMap;
pub use model::{SteadySolver, ThermalModel};
pub use package::{LayerConfig, PackageConfig};
pub use transient::TransientSim;
