//! Transient thermal simulation.

use darksil_numerics::ode::{BackwardEuler, LinearOde};
use darksil_units::{Celsius, Seconds, Watts};

use crate::{ThermalError, ThermalMap, ThermalModel};

/// Per-core `thermal.cores` samples are decimated to one every this
/// many steps, keeping the event stream proportional to simulated time
/// rather than to the (much finer) integration step.
const CORE_SAMPLE_EVERY: u64 = 32;

/// A stateful transient simulation over a [`ThermalModel`].
///
/// # Examples
///
/// ```
/// use darksil_floorplan::Floorplan;
/// use darksil_thermal::{PackageConfig, ThermalModel, TransientSim};
/// use darksil_units::{Seconds, SquareMillimeters, Watts};
///
/// let plan = Floorplan::grid(3, 3, SquareMillimeters::new(5.1))?;
/// let model = ThermalModel::new(&plan, PackageConfig::paper_dac15())?;
/// let mut sim = TransientSim::new(&model, Seconds::new(0.01))?;
/// let power = vec![Watts::new(3.0); 9];
/// let after = sim.run(&power, 100)?; // one second of heating
/// assert!(after.peak() > model.ambient());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Integrates `C·dT/dt = P + G_amb·T_amb − G·T` with backward Euler at a
/// fixed step — A-stable, so the step can match the boosting
/// controller's 1 ms period (§6) without resolving the microsecond
/// die dynamics explicitly.
#[derive(Debug, Clone)]
pub struct TransientSim {
    ode: LinearOde,
    stepper: BackwardEuler,
    state: Vec<f64>,
    g_ambient: Vec<f64>,
    ambient_c: f64,
    cores: usize,
    rows: usize,
    cols: usize,
    subdivision: usize,
    core_of_cell: Vec<usize>,
    elapsed: f64,
    dt: f64,
    /// Threshold for `thermal.watermark` crossing events, when set.
    watermark: Option<f64>,
    /// Steps taken so far (drives `thermal.cores` decimation).
    steps_taken: u64,
    /// Peak of the previous step; tracked only while events are being
    /// recorded, to detect watermark crossings.
    prev_peak: Option<f64>,
}

impl TransientSim {
    /// Creates a simulation starting from thermal equilibrium with the
    /// ambient (every node at `T_amb`), stepping at `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Solver`] for a non-positive step or an
    /// inconsistent model.
    pub fn new(model: &ThermalModel, dt: Seconds) -> Result<Self, ThermalError> {
        let ode = LinearOde::new(model.conductance().clone(), model.capacitances().to_vec())?;
        let stepper = ode.backward_euler(dt.value())?;
        let (rows, cols) = model.grid_shape();
        Ok(Self {
            ode,
            stepper,
            state: vec![model.ambient().value(); model.node_count()],
            g_ambient: model.ambient_conductances().to_vec(),
            ambient_c: model.ambient().value(),
            cores: model.core_count(),
            rows,
            cols,
            subdivision: model.subdivision(),
            core_of_cell: model.core_of_cell().to_vec(),
            elapsed: 0.0,
            dt: dt.value(),
            watermark: None,
            steps_taken: 0,
            prev_peak: None,
        })
    }

    /// Sets the watermark threshold: while events are being recorded,
    /// every step's peak is checked against it and crossings emit
    /// `thermal.watermark` events (and per-core samples carry the
    /// threshold so time-above-threshold can be derived). Controllers
    /// set this to their DTM threshold; it has no effect on the
    /// simulation itself.
    pub fn set_watermark(&mut self, threshold: Celsius) {
        self.watermark = Some(threshold.value());
    }

    /// The configured watermark threshold, if any.
    #[must_use]
    pub fn watermark(&self) -> Option<Celsius> {
        self.watermark.map(Celsius::new)
    }

    /// Creates a simulation starting from a previously computed map
    /// (e.g. a steady state), stepping at `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerMapMismatch`] if the map belongs to
    /// a different model and [`ThermalError::Solver`] for solver
    /// failures.
    pub fn from_map(
        model: &ThermalModel,
        initial: &ThermalMap,
        dt: Seconds,
    ) -> Result<Self, ThermalError> {
        if initial.state().len() != model.node_count() {
            return Err(ThermalError::PowerMapMismatch {
                got: initial.state().len(),
                expected: model.node_count(),
            });
        }
        let mut sim = Self::new(model, dt)?;
        sim.state = initial.state().to_vec();
        Ok(sim)
    }

    /// The fixed integration step.
    #[must_use]
    pub fn dt(&self) -> Seconds {
        Seconds::new(self.dt)
    }

    /// Simulated time elapsed so far.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        Seconds::new(self.elapsed)
    }

    /// Advances one step under the given per-core power map and returns
    /// the new temperatures.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerMapMismatch`] for wrong-length maps
    /// and [`ThermalError::Solver`] if the implicit solve fails.
    pub fn step(&mut self, power: &[Watts]) -> Result<ThermalMap, ThermalError> {
        if power.len() != self.cores {
            return Err(ThermalError::PowerMapMismatch {
                got: power.len(),
                expected: self.cores,
            });
        }
        let b = self.input_vector(power);
        self.state = self.stepper.step(&self.state, &b)?;
        self.elapsed += self.dt;
        self.steps_taken += 1;
        let map = self.snapshot();
        if darksil_obs::events_enabled() {
            let total_w: f64 = power.iter().map(|w| w.value()).sum();
            self.emit_step_events(&map, total_w);
        }
        Ok(map)
    }

    /// Emits the per-step domain events (`thermal.step`, decimated
    /// `thermal.cores`, watermark crossings). Only called while event
    /// recording is on, so the disabled path stays a single atomic load
    /// inside `events_enabled`.
    fn emit_step_events(&mut self, map: &ThermalMap, total_power_w: f64) {
        let peak = map.peak().value();
        let t_s = self.elapsed;
        darksil_obs::event("thermal.step", || {
            vec![
                ("t_s", t_s.into()),
                ("peak_c", peak.into()),
                ("power_w", total_power_w.into()),
            ]
        });
        if let Some(threshold) = self.watermark {
            let is_above = peak > threshold;
            let was_above = self.prev_peak.map(|p| p > threshold);
            if was_above != Some(is_above) && (is_above || was_above.is_some()) {
                darksil_obs::event("thermal.watermark", || {
                    vec![
                        ("t_s", t_s.into()),
                        ("peak_c", peak.into()),
                        ("threshold_c", threshold.into()),
                        ("direction", if is_above { "above" } else { "below" }.into()),
                    ]
                });
            }
        }
        self.prev_peak = Some(peak);
        if self.steps_taken.is_multiple_of(CORE_SAMPLE_EVERY) {
            let cores: Vec<f64> = map.die_temperatures().map(Celsius::value).collect();
            let threshold = self.watermark;
            darksil_obs::event("thermal.cores", || {
                let mut fields = vec![("t_s", t_s.into()), ("cores", cores.into())];
                if let Some(threshold) = threshold {
                    fields.push(("threshold_c", threshold.into()));
                }
                fields
            });
        }
    }

    /// Advances `steps` steps under constant power, returning the final
    /// temperatures.
    ///
    /// # Errors
    ///
    /// Same as [`TransientSim::step`].
    pub fn run(&mut self, power: &[Watts], steps: usize) -> Result<ThermalMap, ThermalError> {
        // One coarse span for the whole batch: `step` runs in a tight
        // loop, so per-step spans would distort what they measure.
        let _span = darksil_obs::span("thermal.transient.run");
        darksil_obs::counter("thermal.transient.steps", steps as u64);
        for _ in 0..steps.saturating_sub(1) {
            self.step(power)?;
        }
        if steps > 0 {
            self.step(power)
        } else {
            Ok(self.snapshot())
        }
    }

    /// The current temperatures without advancing time.
    #[must_use]
    pub fn snapshot(&self) -> ThermalMap {
        if self.subdivision == 1 {
            return ThermalMap::from_state(self.state.clone(), self.cores, self.rows, self.cols);
        }
        let die = crate::ThermalModel::project_die(&self.core_of_cell, self.cores, &self.state);
        ThermalMap::from_parts(die, self.state.clone(), self.rows, self.cols)
    }

    /// Derivative magnitude (∞-norm of dT/dt) — a convergence signal.
    #[must_use]
    pub fn rate_of_change(&self, power: &[Watts]) -> f64 {
        let b = self.input_vector(power);
        self.ode
            .derivative(&self.state, &b)
            .iter()
            .fold(0.0, |acc, d| acc.max(d.abs()))
    }

    /// Builds `P + G_amb·T_amb`, spreading each core's power over its
    /// die cells.
    fn input_vector(&self, power: &[Watts]) -> Vec<f64> {
        let mut b: Vec<f64> = self.g_ambient.iter().map(|g| g * self.ambient_c).collect();
        let share = 1.0 / (self.subdivision * self.subdivision) as f64;
        for (cell, &owner) in self.core_of_cell.iter().enumerate() {
            b[cell] += power[owner].value() * share;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackageConfig;
    use darksil_floorplan::Floorplan;
    use darksil_units::SquareMillimeters;

    fn small_model() -> ThermalModel {
        let plan = Floorplan::grid(4, 4, SquareMillimeters::new(5.1)).expect("valid floorplan");
        ThermalModel::new(&plan, PackageConfig::paper_dac15()).expect("valid thermal model")
    }

    #[test]
    fn starts_at_ambient() {
        let m = small_model();
        let sim = TransientSim::new(&m, Seconds::new(1e-3)).expect("test value");
        let map = sim.snapshot();
        assert_eq!(map.peak(), m.ambient());
        assert_eq!(sim.elapsed(), Seconds::zero());
    }

    #[test]
    fn transient_approaches_steady_state() {
        let m = small_model();
        let power = vec![Watts::new(3.0); 16];
        let steady = m.steady_state(&power).expect("solve succeeds");

        let mut sim = TransientSim::new(&m, Seconds::new(0.1)).expect("test value");
        // The slowest time constant is the sink (tens of seconds); run
        // ten minutes of simulated time.
        sim.run(&power, 6000).expect("test value");
        let now = sim.snapshot();
        assert!(
            (now.peak() - steady.peak()).abs() < 0.3,
            "transient {} vs steady {}",
            now.peak(),
            steady.peak()
        );
        assert!(sim.rate_of_change(&power) < 1e-3);
    }

    #[test]
    fn temperature_rises_monotonically_under_step_power() {
        let m = small_model();
        let power = vec![Watts::new(3.0); 16];
        let mut sim = TransientSim::new(&m, Seconds::new(0.01)).expect("test value");
        let mut last = sim.snapshot().peak();
        for _ in 0..100 {
            let t = sim.step(&power).expect("solve succeeds").peak();
            assert!(t >= last - 1e-12);
            last = t;
        }
        assert!(last > m.ambient());
    }

    #[test]
    fn die_reacts_faster_than_package() {
        // After a power step, the first milliseconds raise the die
        // noticeably while the package barely moves — the separation the
        // boosting controller exploits.
        let m = small_model();
        let power = vec![Watts::new(5.0); 16];
        let mut sim = TransientSim::new(&m, Seconds::new(1e-3)).expect("test value");
        let map = sim.run(&power, 20).expect("test value"); // 20 ms
        let die_rise = map.peak() - m.ambient();
        let sink_node = map.state()[2 * 16 + 1];
        let sink_rise = sink_node - m.ambient().value();
        assert!(die_rise > 1.0, "die rise {die_rise}");
        assert!(sink_rise < die_rise / 3.0, "sink rise {sink_rise}");
    }

    #[test]
    fn cooling_after_power_removed() {
        let m = small_model();
        let hot = vec![Watts::new(4.0); 16];
        let mut sim = TransientSim::new(&m, Seconds::new(0.05)).expect("test value");
        sim.run(&hot, 400).expect("test value");
        let peak_hot = sim.snapshot().peak();
        sim.run(&[Watts::zero(); 16], 4000).expect("test value");
        let peak_cold = sim.snapshot().peak();
        assert!(peak_cold < peak_hot);
        assert!(
            (peak_cold - m.ambient()).abs() < 0.5,
            "cooled to {peak_cold}"
        );
    }

    #[test]
    fn restart_from_steady_state_is_stationary() {
        let m = small_model();
        let power = vec![Watts::new(2.0); 16];
        let steady = m.steady_state(&power).expect("solve succeeds");
        let mut sim = TransientSim::from_map(&m, &steady, Seconds::new(0.01)).expect("test value");
        let after = sim.run(&power, 50).expect("test value");
        assert!(
            (after.peak() - steady.peak()).abs() < 1e-6,
            "drifted from {} to {}",
            steady.peak(),
            after.peak()
        );
    }

    #[test]
    fn invalid_inputs() {
        let m = small_model();
        assert!(TransientSim::new(&m, Seconds::zero()).is_err());
        let mut sim = TransientSim::new(&m, Seconds::new(0.01)).expect("test value");
        assert!(matches!(
            sim.step(&[Watts::zero(); 3]),
            Err(ThermalError::PowerMapMismatch {
                got: 3,
                expected: 16
            })
        ));
        // A map from a different-size model is rejected.
        let other_plan =
            Floorplan::grid(2, 2, SquareMillimeters::new(5.1)).expect("valid floorplan");
        let other = ThermalModel::new(&other_plan, PackageConfig::paper_dac15())
            .expect("valid thermal model");
        let map = other
            .steady_state(&[Watts::zero(); 4])
            .expect("solve succeeds");
        assert!(TransientSim::from_map(&m, &map, Seconds::new(0.01)).is_err());
    }

    #[test]
    fn grid_mode_transient_matches_its_steady_state() {
        let plan = Floorplan::grid(3, 3, SquareMillimeters::new(5.1)).expect("valid floorplan");
        let m = ThermalModel::with_subdivision(&plan, PackageConfig::paper_dac15(), 2)
            .expect("valid thermal model");
        let power = vec![Watts::new(2.5); 9];
        let steady = m.steady_state(&power).expect("solve succeeds");
        let mut sim = TransientSim::new(&m, Seconds::new(0.1)).expect("test value");
        sim.run(&power, 6000).expect("test value");
        let now = sim.snapshot();
        assert!(
            (now.peak() - steady.peak()).abs() < 0.3,
            "transient {} vs steady {}",
            now.peak(),
            steady.peak()
        );
        assert_eq!(now.core_count(), 9);
    }

    #[test]
    fn elapsed_time_tracks_steps() {
        let m = small_model();
        let mut sim = TransientSim::new(&m, Seconds::new(0.25)).expect("test value");
        sim.run(&[Watts::zero(); 16], 8).expect("test value");
        assert!((sim.elapsed().value() - 2.0).abs() < 1e-12);
        assert_eq!(sim.dt(), Seconds::new(0.25));
    }
}
