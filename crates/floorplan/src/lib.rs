//! Chip floorplans for homogeneous manycore systems.
//!
//! The paper evaluates manycore chips of 100, 198 and 361 out-of-order
//! Alpha 21264 cores arranged in a regular grid (§2.1). This crate
//! provides:
//!
//! * [`Floorplan`] — a rectangular grid of identical square cores with
//!   geometry queries (position, area, adjacency, Manhattan and
//!   Euclidean centre distance),
//! * [`CoreId`] — a typed index into a floorplan,
//! * [`GridMap`] — a per-core scalar field (power, temperature) with
//!   ASCII rendering used to visualise thermal maps like Figure 8.
//!
//! # Examples
//!
//! ```
//! use darksil_floorplan::Floorplan;
//! use darksil_units::SquareMillimeters;
//!
//! // 100-core chip at 16 nm: each core is 5.1 mm².
//! let plan = Floorplan::grid(10, 10, SquareMillimeters::new(5.1))?;
//! assert_eq!(plan.core_count(), 100);
//! assert!((plan.chip_area().value() - 510.0).abs() < 1e-9);
//! # Ok::<(), darksil_floorplan::FloorplanError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod grid_map;
mod plan;

pub use grid_map::GridMap;
pub use plan::{CoreId, Floorplan, FloorplanError, NeighborIter};
