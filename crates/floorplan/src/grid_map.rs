//! Per-core scalar fields (power maps, thermal maps) over a floorplan.

use crate::{CoreId, Floorplan, FloorplanError};

/// A scalar value per core of a floorplan, e.g. a power or temperature
/// map. Provides aggregate queries and ASCII rendering of the kind used
/// to present Figure 8's thermal profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct GridMap {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl GridMap {
    /// Creates a map over `plan` filled with `fill`.
    #[must_use]
    pub fn filled(plan: &Floorplan, fill: f64) -> Self {
        Self {
            rows: plan.rows(),
            cols: plan.cols(),
            values: vec![fill; plan.core_count()],
        }
    }

    /// Creates a map from a per-core vector in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] if the vector length
    /// does not match the plan's core count.
    pub fn from_values(plan: &Floorplan, values: Vec<f64>) -> Result<Self, FloorplanError> {
        if values.len() != plan.core_count() {
            return Err(FloorplanError::CoreOutOfRange {
                index: values.len(),
                count: plan.core_count(),
            });
        }
        Ok(Self {
            rows: plan.rows(),
            cols: plan.cols(),
            values,
        })
    }

    /// Number of cores covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map is empty (never true for a valid floorplan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn get(&self, core: CoreId) -> f64 {
        self.values[core.index()]
    }

    /// Sets the value at a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set(&mut self, core: CoreId, value: f64) {
        self.values[core.index()] = value;
    }

    /// Raw row-major values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Maximum value, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum value, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Arithmetic mean, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Sum of all values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Renders the map as an ASCII heat map: each core becomes one glyph
    /// from `' '` (min) through `.:-=+*#%@` to `'@'` (max). Rows are
    /// separated by newlines. Useful for eyeballing thermal patterns in
    /// terminals and test logs (cf. Figure 8).
    #[must_use]
    pub fn render_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let (lo, hi) = match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => return String::new(),
        };
        let span = if hi > lo { hi - lo } else { 1.0 };
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.values[r * self.cols + c];
                let t = ((v - lo) / span).clamp(0.0, 1.0);
                let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders with a fixed scale `[lo, hi]` so two maps can be compared
    /// with identical colour-mapping (Figure 8 uses one 64–82 °C scale
    /// for both mapping patterns).
    #[must_use]
    pub fn render_ascii_scaled(&self, lo: f64, hi: f64) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let span = if hi > lo { hi - lo } else { 1.0 };
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.values[r * self.cols + c];
                let t = ((v - lo) / span).clamp(0.0, 1.0);
                let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darksil_units::SquareMillimeters;

    fn plan() -> Floorplan {
        Floorplan::grid(3, 4, SquareMillimeters::new(1.0)).expect("valid floorplan")
    }

    #[test]
    fn filled_and_aggregates() {
        let m = GridMap::filled(&plan(), 2.5);
        assert_eq!(m.len(), 12);
        assert_eq!(m.sum(), 30.0);
        assert_eq!(m.mean(), Some(2.5));
        assert_eq!(m.min(), Some(2.5));
        assert_eq!(m.max(), Some(2.5));
        assert!(!m.is_empty());
    }

    #[test]
    fn set_get() {
        let mut m = GridMap::filled(&plan(), 0.0);
        m.set(CoreId(5), 7.0);
        assert_eq!(m.get(CoreId(5)), 7.0);
        assert_eq!(m.max(), Some(7.0));
    }

    #[test]
    fn from_values_validates_length() {
        let p = plan();
        assert!(GridMap::from_values(&p, vec![0.0; 11]).is_err());
        let m = GridMap::from_values(&p, (0..12).map(|i| i as f64).collect())
            .expect("numerics succeed");
        assert_eq!(m.get(CoreId(11)), 11.0);
    }

    #[test]
    fn ascii_rendering_shape() {
        let p = plan();
        let mut m = GridMap::filled(&p, 0.0);
        m.set(CoreId(0), 10.0);
        let art = m.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Hottest core renders as the densest glyph.
        assert_eq!(lines[0].chars().next(), Some('@'));
    }

    #[test]
    fn fixed_scale_rendering_is_comparable() {
        let p = plan();
        let cold = GridMap::filled(&p, 64.0);
        let hot = GridMap::filled(&p, 82.0);
        let a = cold.render_ascii_scaled(64.0, 82.0);
        let b = hot.render_ascii_scaled(64.0, 82.0);
        assert!(a.contains(' '));
        assert!(b.contains('@'));
    }

    #[test]
    fn constant_map_renders_without_nan() {
        let m = GridMap::filled(&plan(), 5.0);
        let art = m.render_ascii();
        assert!(!art.is_empty());
    }
}
