//! Grid floorplan geometry.

use std::error::Error;
use std::fmt;

use darksil_units::SquareMillimeters;

/// A typed index identifying one core of a [`Floorplan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Returns the raw index.
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(i: usize) -> Self {
        Self(i)
    }
}

/// Errors produced when constructing or querying floorplans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorplanError {
    /// Grid dimensions were zero.
    EmptyGrid,
    /// The per-core area was not strictly positive.
    NonPositiveArea,
    /// A core index exceeded the plan's core count.
    CoreOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of cores in the plan.
        count: usize,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyGrid => write!(f, "floorplan grid must have at least one row and column"),
            Self::NonPositiveArea => write!(f, "core area must be strictly positive"),
            Self::CoreOutOfRange { index, count } => {
                write!(f, "core index {index} out of range for {count}-core plan")
            }
        }
    }
}

impl Error for FloorplanError {}

/// A rectangular grid of identical square cores.
///
/// Cores are numbered row-major: core `r·cols + c` sits at grid position
/// `(row r, column c)`. The paper's chips are 10×10 (100 cores),
/// 18×11 (198 cores) and 19×19 (361 cores).
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    rows: usize,
    cols: usize,
    core_area_mm2: f64,
}

impl Floorplan {
    /// Creates a `rows × cols` grid of cores, each of the given area.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::EmptyGrid`] for a zero dimension and
    /// [`FloorplanError::NonPositiveArea`] for a non-positive area.
    pub fn grid(
        rows: usize,
        cols: usize,
        core_area: SquareMillimeters,
    ) -> Result<Self, FloorplanError> {
        if rows == 0 || cols == 0 {
            return Err(FloorplanError::EmptyGrid);
        }
        if core_area.value() <= 0.0 || !core_area.value().is_finite() {
            return Err(FloorplanError::NonPositiveArea);
        }
        Ok(Self {
            rows,
            cols,
            core_area_mm2: core_area.value(),
        })
    }

    /// Creates the squarest grid holding exactly `count` cores, matching
    /// the paper's configurations: 100 → 10×10, 198 → 18×11, 361 → 19×19.
    /// For a count with no factorisation close to square (primes), the
    /// fallback is a single row.
    ///
    /// # Errors
    ///
    /// Same as [`Floorplan::grid`].
    pub fn squarish(count: usize, core_area: SquareMillimeters) -> Result<Self, FloorplanError> {
        if count == 0 {
            return Err(FloorplanError::EmptyGrid);
        }
        let mut best = (count, 1);
        let mut r = (count as f64).sqrt() as usize;
        while r >= 1 {
            if count.is_multiple_of(r) {
                best = (count / r, r);
                break;
            }
            r -= 1;
        }
        Self::grid(best.0, best.1, core_area)
    }

    /// Number of grid rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cores.
    #[must_use]
    pub const fn core_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Area of a single core.
    #[must_use]
    pub fn core_area(&self) -> SquareMillimeters {
        SquareMillimeters::new(self.core_area_mm2)
    }

    /// Side length of a (square) core in millimetres.
    #[must_use]
    pub fn core_side_mm(&self) -> f64 {
        self.core_area_mm2.sqrt()
    }

    /// Total die area.
    #[must_use]
    pub fn chip_area(&self) -> SquareMillimeters {
        SquareMillimeters::new(self.core_area_mm2 * self.core_count() as f64)
    }

    /// Die width (columns direction) in millimetres.
    #[must_use]
    pub fn chip_width_mm(&self) -> f64 {
        self.core_side_mm() * self.cols as f64
    }

    /// Die height (rows direction) in millimetres.
    #[must_use]
    pub fn chip_height_mm(&self) -> f64 {
        self.core_side_mm() * self.rows as f64
    }

    /// Grid coordinates `(row, col)` of a core.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for invalid ids.
    pub fn coordinates(&self, core: CoreId) -> Result<(usize, usize), FloorplanError> {
        if core.0 >= self.core_count() {
            return Err(FloorplanError::CoreOutOfRange {
                index: core.0,
                count: self.core_count(),
            });
        }
        Ok((core.0 / self.cols, core.0 % self.cols))
    }

    /// The core at grid coordinates `(row, col)`, if in range.
    #[must_use]
    pub fn core_at(&self, row: usize, col: usize) -> Option<CoreId> {
        (row < self.rows && col < self.cols).then(|| CoreId(row * self.cols + col))
    }

    /// Centre position of a core in millimetres from the die's top-left
    /// corner, as `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for invalid ids.
    pub fn center_mm(&self, core: CoreId) -> Result<(f64, f64), FloorplanError> {
        let (row, col) = self.coordinates(core)?;
        let side = self.core_side_mm();
        Ok(((col as f64 + 0.5) * side, (row as f64 + 0.5) * side))
    }

    /// Manhattan grid distance between two cores (number of hops).
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for invalid ids.
    pub fn manhattan_distance(&self, a: CoreId, b: CoreId) -> Result<usize, FloorplanError> {
        let (ra, ca) = self.coordinates(a)?;
        let (rb, cb) = self.coordinates(b)?;
        Ok(ra.abs_diff(rb) + ca.abs_diff(cb))
    }

    /// Euclidean centre-to-centre distance in millimetres.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for invalid ids.
    pub fn center_distance_mm(&self, a: CoreId, b: CoreId) -> Result<f64, FloorplanError> {
        let (xa, ya) = self.center_mm(a)?;
        let (xb, yb) = self.center_mm(b)?;
        Ok(((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt())
    }

    /// Iterator over the 4-neighbourhood (N/S/E/W) of a core. Edge and
    /// corner cores yield fewer neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for invalid ids.
    pub fn neighbors(&self, core: CoreId) -> Result<NeighborIter, FloorplanError> {
        let (row, col) = self.coordinates(core)?;
        let mut ids = [None; 4];
        let mut n = 0;
        let mut push = |id: Option<CoreId>| {
            if let Some(id) = id {
                ids[n] = Some(id);
                n += 1;
            }
        };
        push(row.checked_sub(1).and_then(|r| self.core_at(r, col)));
        push(self.core_at(row + 1, col));
        push(col.checked_sub(1).and_then(|c| self.core_at(row, c)));
        push(self.core_at(row, col + 1));
        Ok(NeighborIter { ids, next: 0 })
    }

    /// Iterator over all core ids in row-major order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.core_count()).map(CoreId)
    }
}

/// Iterator over the grid neighbours of a core.
///
/// Produced by [`Floorplan::neighbors`].
#[derive(Debug, Clone)]
pub struct NeighborIter {
    ids: [Option<CoreId>; 4],
    next: usize,
}

impl Iterator for NeighborIter {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        while self.next < 4 {
            let item = self.ids[self.next];
            self.next += 1;
            if item.is_some() {
                return item;
            }
        }
        None
    }
}

/// Serialises transparently as the core index.
impl darksil_json::ToJson for CoreId {
    fn to_json(&self) -> darksil_json::Json {
        darksil_json::ToJson::to_json(&self.0)
    }
}

impl darksil_json::FromJson for CoreId {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        <usize as darksil_json::FromJson>::from_json(v).map(Self)
    }
}

impl darksil_json::ToJson for Floorplan {
    fn to_json(&self) -> darksil_json::Json {
        darksil_json::Json::Obj(vec![
            (
                "rows".to_string(),
                darksil_json::ToJson::to_json(&self.rows),
            ),
            (
                "cols".to_string(),
                darksil_json::ToJson::to_json(&self.cols),
            ),
            (
                "core_area_mm2".to_string(),
                darksil_json::ToJson::to_json(&self.core_area_mm2),
            ),
        ])
    }
}

/// Deserialisation routes through [`Floorplan::grid`], so zero-core
/// grids and non-positive or non-finite core areas are rejected with
/// the same validation as programmatic construction.
impl darksil_json::FromJson for Floorplan {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        let mut r = darksil_json::ObjReader::new(v, "Floorplan")?;
        let rows: usize = r.req("rows")?;
        let cols: usize = r.req("cols")?;
        let area: f64 = r.req("core_area_mm2")?;
        r.finish()?;
        Self::grid(rows, cols, SquareMillimeters::new(area))
            .map_err(|e| darksil_json::JsonError::msg(format!("invalid floorplan: {e}")))
    }
}

impl From<FloorplanError> for darksil_robust::DarksilError {
    fn from(e: FloorplanError) -> Self {
        match &e {
            FloorplanError::CoreOutOfRange { .. } => Self::dimension(e.to_string()),
            FloorplanError::EmptyGrid | FloorplanError::NonPositiveArea => {
                Self::config(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_10x10() -> Floorplan {
        Floorplan::grid(10, 10, SquareMillimeters::new(5.1)).expect("valid floorplan")
    }

    #[test]
    fn paper_configurations() {
        // 22 nm: 9.6 mm² per core; 16/11/8 nm: 5.1 / 2.7 / 1.4 mm².
        let p100 = Floorplan::squarish(100, SquareMillimeters::new(5.1)).expect("valid floorplan");
        assert_eq!((p100.rows(), p100.cols()), (10, 10));
        let p198 = Floorplan::squarish(198, SquareMillimeters::new(2.7)).expect("valid floorplan");
        assert_eq!(p198.core_count(), 198);
        assert_eq!((p198.rows(), p198.cols()), (18, 11));
        let p361 = Floorplan::squarish(361, SquareMillimeters::new(1.4)).expect("valid floorplan");
        assert_eq!((p361.rows(), p361.cols()), (19, 19));
    }

    #[test]
    fn coordinates_round_trip() {
        let p = plan_10x10();
        for core in p.cores() {
            let (r, c) = p.coordinates(core).expect("test value");
            assert_eq!(p.core_at(r, c), Some(core));
        }
    }

    #[test]
    fn geometry() {
        let p = Floorplan::grid(2, 3, SquareMillimeters::new(4.0)).expect("valid floorplan");
        assert_eq!(p.core_side_mm(), 2.0);
        assert_eq!(p.chip_width_mm(), 6.0);
        assert_eq!(p.chip_height_mm(), 4.0);
        assert_eq!(p.chip_area().value(), 24.0);
        let (x, y) = p.center_mm(CoreId(4)).expect("test value"); // row 1, col 1
        assert_eq!((x, y), (3.0, 3.0));
    }

    #[test]
    fn neighbor_counts() {
        let p = plan_10x10();
        // Corner core: 2 neighbours.
        assert_eq!(p.neighbors(CoreId(0)).expect("test value").count(), 2);
        // Edge core: 3 neighbours.
        assert_eq!(p.neighbors(CoreId(5)).expect("test value").count(), 3);
        // Interior core: 4 neighbours.
        assert_eq!(p.neighbors(CoreId(55)).expect("test value").count(), 4);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let p = Floorplan::grid(4, 5, SquareMillimeters::new(1.0)).expect("valid floorplan");
        for a in p.cores() {
            for b in p.neighbors(a).expect("test value") {
                assert!(
                    p.neighbors(b).expect("test value").any(|x| x == a),
                    "{a} -> {b} not symmetric"
                );
            }
        }
    }

    #[test]
    fn distances() {
        let p = plan_10x10();
        assert_eq!(
            p.manhattan_distance(CoreId(0), CoreId(99))
                .expect("test value"),
            18
        );
        assert_eq!(
            p.manhattan_distance(CoreId(0), CoreId(0))
                .expect("test value"),
            0
        );
        let d = p
            .center_distance_mm(CoreId(0), CoreId(1))
            .expect("test value");
        assert!((d - p.core_side_mm()).abs() < 1e-12);
    }

    #[test]
    fn invalid_construction() {
        assert_eq!(
            Floorplan::grid(0, 5, SquareMillimeters::new(1.0)),
            Err(FloorplanError::EmptyGrid)
        );
        assert_eq!(
            Floorplan::grid(2, 2, SquareMillimeters::new(0.0)),
            Err(FloorplanError::NonPositiveArea)
        );
        assert_eq!(
            Floorplan::grid(2, 2, SquareMillimeters::new(f64::NAN)),
            Err(FloorplanError::NonPositiveArea)
        );
    }

    #[test]
    fn out_of_range_core() {
        let p = plan_10x10();
        assert!(matches!(
            p.coordinates(CoreId(100)),
            Err(FloorplanError::CoreOutOfRange {
                index: 100,
                count: 100
            })
        ));
        assert!(p.neighbors(CoreId(500)).is_err());
    }

    #[test]
    fn json_round_trip_and_validation() {
        let p = plan_10x10();
        let json = darksil_json::to_string_pretty(&p);
        let back: Floorplan = darksil_json::from_str(&json).expect("round trip");
        assert_eq!(p, back);
        // Zero-core and non-positive-area plans are rejected on load.
        let zero = r#"{ "rows": 0, "cols": 4, "core_area_mm2": 1.0 }"#;
        assert!(darksil_json::from_str::<Floorplan>(zero).is_err());
        let bad_area = r#"{ "rows": 2, "cols": 2, "core_area_mm2": -1.0 }"#;
        assert!(darksil_json::from_str::<Floorplan>(bad_area).is_err());
    }

    #[test]
    fn prime_count_degenerates_to_row() {
        let p = Floorplan::squarish(13, SquareMillimeters::new(1.0)).expect("valid floorplan");
        assert_eq!(p.core_count(), 13);
        assert_eq!(p.rows() * p.cols(), 13);
    }
}
