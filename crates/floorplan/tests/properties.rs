//! Property tests for floorplan geometry.

use darksil_floorplan::{CoreId, Floorplan, GridMap};
use darksil_units::SquareMillimeters;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coordinates_round_trip(rows in 1_usize..20, cols in 1_usize..20) {
        let plan = Floorplan::grid(rows, cols, SquareMillimeters::new(2.0)).unwrap();
        for core in plan.cores() {
            let (r, c) = plan.coordinates(core).unwrap();
            prop_assert_eq!(plan.core_at(r, c), Some(core));
        }
    }

    #[test]
    fn neighbors_are_symmetric_and_adjacent(rows in 2_usize..12, cols in 2_usize..12) {
        let plan = Floorplan::grid(rows, cols, SquareMillimeters::new(1.0)).unwrap();
        for a in plan.cores() {
            for b in plan.neighbors(a).unwrap() {
                prop_assert!(plan.neighbors(b).unwrap().any(|x| x == a));
                prop_assert_eq!(plan.manhattan_distance(a, b).unwrap(), 1);
            }
        }
    }

    #[test]
    fn manhattan_distance_is_a_metric(
        rows in 2_usize..10,
        cols in 2_usize..10,
        seed in 0_usize..1000,
    ) {
        let plan = Floorplan::grid(rows, cols, SquareMillimeters::new(1.0)).unwrap();
        let n = plan.core_count();
        let a = CoreId(seed % n);
        let b = CoreId((seed * 7 + 3) % n);
        let c = CoreId((seed * 13 + 5) % n);
        let d = |x, y| plan.manhattan_distance(x, y).unwrap();
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert_eq!(d(a, a), 0);
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
    }

    #[test]
    fn center_distance_consistent_with_geometry(
        rows in 2_usize..10,
        cols in 2_usize..10,
        area in 0.5_f64..10.0,
    ) {
        let plan = Floorplan::grid(rows, cols, SquareMillimeters::new(area)).unwrap();
        // Adjacent cores sit exactly one side length apart.
        let a = CoreId(0);
        let b = CoreId(1.min(plan.core_count() - 1));
        if a != b {
            let d = plan.center_distance_mm(a, b).unwrap();
            prop_assert!((d - plan.core_side_mm()).abs() < 1e-9);
        }
        // Chip area is cores × core area.
        let chip = plan.chip_area().value();
        prop_assert!((chip - area * plan.core_count() as f64).abs() < 1e-9 * chip);
    }

    #[test]
    fn squarish_is_exact_and_compact(count in 1_usize..400) {
        let plan = Floorplan::squarish(count, SquareMillimeters::new(1.0)).unwrap();
        prop_assert_eq!(plan.core_count(), count);
        // Aspect ratio never exceeds what the factorisation forces: the
        // chosen rows×cols uses the largest factor ≤ √count.
        prop_assert!(plan.rows() >= plan.cols());
    }

    #[test]
    fn grid_map_aggregates(
        rows in 1_usize..8,
        cols in 1_usize..8,
        values in prop::collection::vec(-50.0_f64..150.0, 64),
    ) {
        let plan = Floorplan::grid(rows, cols, SquareMillimeters::new(1.0)).unwrap();
        let n = plan.core_count();
        let vals = values[..n].to_vec();
        let map = GridMap::from_values(&plan, vals.clone()).unwrap();
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(map.max(), Some(max));
        prop_assert_eq!(map.min(), Some(min));
        prop_assert!((map.sum() - vals.iter().sum::<f64>()).abs() < 1e-9);
        // Rendering is shape-preserving.
        let art = map.render_ascii();
        prop_assert_eq!(art.lines().count(), rows);
        prop_assert!(art.lines().all(|l| l.chars().count() == cols));
    }
}
