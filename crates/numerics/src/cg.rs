//! Preconditioned conjugate-gradient solver for SPD systems.

use crate::{axpy, dot, norm2, CsrMatrix, NumericsError};

/// Options controlling a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance: converged when
    /// `‖b − A·x‖ ≤ tol · ‖b‖`.
    pub tolerance: f64,
    /// Hard iteration cap (defaults to `10 · n` at solve time when zero).
    pub max_iterations: usize,
    /// Enable Jacobi (diagonal) preconditioning. Thermal conductance
    /// matrices have widely varying diagonals (die vs heat-sink nodes),
    /// where this helps substantially.
    pub jacobi_preconditioner: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            tolerance: 1.0e-10,
            max_iterations: 0,
            jacobi_preconditioner: true,
        }
    }
}

/// Diagnostic information from a successful CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOutcome {
    /// Iterations consumed.
    pub iterations: usize,
    /// Final absolute residual norm.
    pub residual: f64,
}

/// Solves `A·x = b` for a symmetric positive-definite `A`.
///
/// Returns the solution vector. Use [`conjugate_gradient_with_outcome`]
/// to also retrieve iteration diagnostics.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] for incompatible shapes
/// and [`NumericsError::ConvergenceFailure`] if the tolerance is not met
/// within the iteration cap.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    options: &CgOptions,
) -> Result<Vec<f64>, NumericsError> {
    conjugate_gradient_with_outcome(a, b, options).map(|(x, _)| x)
}

/// Like [`conjugate_gradient`] but also returns a [`CgOutcome`].
///
/// # Errors
///
/// Same as [`conjugate_gradient`].
pub fn conjugate_gradient_with_outcome(
    a: &CsrMatrix,
    b: &[f64],
    options: &CgOptions,
) -> Result<(Vec<f64>, CgOutcome), NumericsError> {
    conjugate_gradient_from(a, b, None, options)
}

/// Like [`conjugate_gradient_with_outcome`] but warm-started from `x0`
/// when one is given. Used by the robust fallback chain to resume a
/// stalled solve from its best iterate instead of restarting at zero.
///
/// On failure the error carries the convergence diagnostics; the caller
/// can retry with relaxed options or fall back to a dense factorisation.
///
/// # Errors
///
/// Same as [`conjugate_gradient`], plus [`NumericsError::DimensionMismatch`]
/// if `x0` has the wrong length.
pub fn conjugate_gradient_from(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &CgOptions,
) -> Result<(Vec<f64>, CgOutcome), NumericsError> {
    let (x, outcome, converged) = conjugate_gradient_best_effort(a, b, x0, options)?;
    if converged {
        Ok((x, outcome))
    } else {
        Err(NumericsError::ConvergenceFailure {
            iterations: outcome.iterations,
            residual: outcome.residual,
        })
    }
}

/// Best-effort CG: runs the iteration and returns the final iterate even
/// when the tolerance was not met (third tuple element is `false` then).
///
/// The robust solver chain uses this to hand a stalled iterate to the
/// next fallback stage as a warm start instead of discarding the work.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] for incompatible shapes;
/// convergence failure is reported through the flag, not an error.
pub fn conjugate_gradient_best_effort(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &CgOptions,
) -> Result<(Vec<f64>, CgOutcome, bool), NumericsError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericsError::DimensionMismatch {
            context: format!("CG requires a square matrix, got {}×{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: format!("rhs has {} rows, matrix has {n}", b.len()),
        });
    }

    let max_iter = if options.max_iterations == 0 {
        10 * n.max(10)
    } else {
        options.max_iterations
    };

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok((
            vec![0.0; n],
            CgOutcome {
                iterations: 0,
                residual: 0.0,
            },
            true,
        ));
    }
    let target = options.tolerance * b_norm;

    // Jacobi preconditioner M⁻¹ = diag(A)⁻¹.
    let inv_diag: Option<Vec<f64>> = if options.jacobi_preconditioner {
        Some(
            a.diagonal()
                .iter()
                .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
                .collect(),
        )
    } else {
        None
    };
    let apply_precond = |r: &[f64], z: &mut Vec<f64>| {
        z.clear();
        match &inv_diag {
            Some(m) => z.extend(r.iter().zip(m).map(|(ri, mi)| ri * mi)),
            None => z.extend_from_slice(r),
        }
    };

    let (mut x, mut r) = match x0 {
        Some(start) => {
            if start.len() != n {
                return Err(NumericsError::DimensionMismatch {
                    context: format!("warm start has {} rows, matrix has {n}", start.len()),
                });
            }
            let ax = a.mul_vec(start);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            (start.to_vec(), r)
        }
        None => (vec![0.0; n], b.to_vec()),
    };
    let initial_res = norm2(&r);
    if initial_res <= target {
        return Ok((
            x,
            CgOutcome {
                iterations: 0,
                residual: initial_res,
            },
            true,
        ));
    }
    let mut z = Vec::with_capacity(n);
    apply_precond(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 1..=max_iter {
        // Cancellation point: a supervised job's deadline (or explicit
        // cancel) stops a runaway solve here instead of wedging the
        // worker. Unsupervised callers run under an unbounded context,
        // where the poll always passes.
        if let Err(e) = darksil_robust::check_deadline("cg iteration") {
            return Err(NumericsError::Cancelled {
                context: format!("{} after {} iterations", e.message(), iter - 1),
            });
        }
        a.mul_vec_into(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if p_ap <= 0.0 {
            // Not SPD (or breakdown): stop and hand back the last good
            // iterate with the unconverged flag set.
            return Ok((
                x,
                CgOutcome {
                    iterations: iter,
                    residual: norm2(&r),
                },
                false,
            ));
        }
        let alpha = rz / p_ap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);

        let res = norm2(&r);
        if res <= target {
            return Ok((
                x,
                CgOutcome {
                    iterations: iter,
                    residual: res,
                },
                true,
            ));
        }

        apply_precond(&r, &mut z);
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }

    let residual = norm2(&r);
    Ok((
        x,
        CgOutcome {
            iterations: max_iter,
            residual,
        },
        false,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// 1-D Laplacian with a Dirichlet-like anchor — SPD.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_to_reference(0, 1.0);
        t.to_csr()
    }

    #[test]
    fn solves_small_spd_system() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 4.0);
        t.add(0, 1, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 1, 3.0);
        let a = t.to_csr();
        let x =
            conjugate_gradient(&a, &[1.0, 2.0], &CgOptions::default()).expect("numerics succeed");
        let r = a.mul_vec(&x);
        assert!((r[0] - 1.0).abs() < 1e-8);
        assert!((r[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn matches_dense_lu_on_laplacian() {
        let n = 40;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 5) as f64 + 0.5).collect();
        let x_cg = conjugate_gradient(&a, &b, &CgOptions::default()).expect("numerics succeed");
        let x_lu = a.to_dense().solve(&b).expect("solve succeeds");
        for (c, l) in x_cg.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-6, "cg {c} vs lu {l}");
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplacian(5);
        let (x, outcome) = conjugate_gradient_with_outcome(&a, &[0.0; 5], &CgOptions::default())
            .expect("numerics succeed");
        assert_eq!(x, vec![0.0; 5]);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn preconditioner_reduces_iterations_on_ill_scaled_system() {
        // Diagonal entries differing by orders of magnitude, like die vs
        // heat-sink nodes.
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        for i in 0..n {
            let scale = if i % 2 == 0 { 1.0e3 } else { 1.0e-2 };
            t.stamp_to_reference(i, scale);
        }
        let a = t.to_csr();
        let b = vec![1.0; n];

        let with = conjugate_gradient_with_outcome(
            &a,
            &b,
            &CgOptions {
                jacobi_preconditioner: true,
                ..CgOptions::default()
            },
        )
        .expect("test value")
        .1;
        let without = conjugate_gradient_with_outcome(
            &a,
            &b,
            &CgOptions {
                jacobi_preconditioner: false,
                ..CgOptions::default()
            },
        )
        .expect("test value")
        .1;
        assert!(
            with.iterations <= without.iterations,
            "jacobi {} vs plain {}",
            with.iterations,
            without.iterations
        );
    }

    #[test]
    fn iteration_cap_is_honoured() {
        let a = laplacian(100);
        let b = vec![1.0; 100];
        let err = conjugate_gradient(
            &a,
            &b,
            &CgOptions {
                tolerance: 1.0e-14,
                max_iterations: 2,
                jacobi_preconditioner: false,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NumericsError::ConvergenceFailure { iterations: 2, .. }
        ));
    }

    #[test]
    fn a_tripped_deadline_cancels_the_iteration() {
        let a = laplacian(100);
        let b = vec![1.0; 100];
        let ctx = darksil_robust::RunContext::with_token(
            darksil_robust::CancellationToken::with_deadline(std::time::Duration::from_millis(0)),
        );
        let err =
            darksil_robust::scoped(&ctx, || conjugate_gradient(&a, &b, &CgOptions::default()))
                .expect_err("expired deadline stops the solve");
        assert!(matches!(err, NumericsError::Cancelled { .. }), "{err:?}");
        // Outside the scope the same solve completes normally.
        conjugate_gradient(&a, &b, &CgOptions::default()).expect("unsupervised solve converges");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = laplacian(4);
        assert!(matches!(
            conjugate_gradient(&a, &[1.0; 3], &CgOptions::default()),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }
}
