//! Numerical kernels for the `darksil` workspace.
//!
//! The thermal substrate (`darksil-thermal`) needs to solve moderately
//! large sparse symmetric-positive-definite systems (steady state) and to
//! integrate stiff linear ODEs (transient turbo-boost simulations), and
//! the power crate fits Eq. (1) of the paper to sampled data. Rather than
//! pull in a linear-algebra dependency, this crate provides exactly the
//! kernels needed, organised around **two solve paths**:
//!
//! # The factor-cached fast path
//!
//! The RC conductance topology is fixed per floorplan — across a sweep,
//! a leakage fixed point, or a placement-optimisation loop only the
//! power right-hand side changes. [`factor_spd`] pays for a
//! fill-reducing ordering and symbolic analysis **once**, returning
//! reusable [`SpdFactors`] whose [`solve`](SpdFactors::solve) /
//! [`solve_many`](SpdFactors::solve_many) are pure sparse
//! substitutions, and whose
//! [`refactor_diagonal`](SpdFactors::refactor_diagonal) absorbs
//! diagonal-only matrix updates without repeating the symbolic work.
//! [`FactorCache`] keys factors by content digest (bounded,
//! thread-safe), and [`solve_spd_cached`] is the drop-in entry point:
//! factored solve + residual check, falling back to the robust chain
//! when the matrix is unfactorable or the solution drifts.
//!
//! # The robust iterative path
//!
//! [`solve_spd_robust`] runs Jacobi-preconditioned
//! [`conjugate_gradient`], escalating to restarted CG and finally dense
//! LU ([`DenseMatrix`], [`LuFactors`]) so callers always get a finite
//! answer or a typed error. [`solve_spd_robust_from`] warm-starts the
//! first CG attempt from a caller-supplied seed (e.g. the neighbouring
//! sweep point's solution), guarded so a warm start never returns a
//! worse residual than a cold one.
//!
//! Supporting kernels: [`CsrMatrix`] / [`TripletMatrix`] sparse
//! storage, [`ode`] backward-Euler / RK4 steppers for
//! `C·dx/dt = b − G·x`, and [`fit_least_squares`] linear least squares.
//!
//! # Examples
//!
//! Factor once, solve many — the fig8 hot-path shape:
//!
//! ```
//! use darksil_numerics::{factor_spd, TripletMatrix};
//!
//! // A 1-D RC chain: fixed topology, varying power inputs.
//! let n = 16;
//! let mut t = TripletMatrix::new(n, n);
//! for i in 0..n - 1 {
//!     t.stamp_conductance(i, i + 1, 2.0);
//! }
//! for i in 0..n {
//!     t.stamp_to_reference(i, 0.5);
//! }
//! let g = t.to_csr();
//!
//! // Ordering + symbolic analysis + numeric factorisation: once.
//! let factors = factor_spd(&g)?;
//!
//! // Every subsequent right-hand side is a cheap substitution.
//! let loads: Vec<Vec<f64>> = (0..4)
//!     .map(|k| (0..n).map(|i| ((i + k) % 3) as f64).collect())
//!     .collect();
//! let temps = factors.solve_many(&loads)?;
//! for (b, x) in loads.iter().zip(&temps) {
//!     let r = g.mul_vec(x);
//!     assert!(r.iter().zip(b).all(|(ri, bi)| (ri - bi).abs() < 1e-9));
//! }
//! # Ok::<(), darksil_numerics::NumericsError>(())
//! ```
//!
//! The robust iterative path for one-off systems:
//!
//! ```
//! use darksil_numerics::{TripletMatrix, conjugate_gradient, CgOptions};
//!
//! // A tiny SPD system: [[4,1],[1,3]] x = [1,2]
//! let mut t = TripletMatrix::new(2, 2);
//! t.add(0, 0, 4.0);
//! t.add(0, 1, 1.0);
//! t.add(1, 0, 1.0);
//! t.add(1, 1, 3.0);
//! let a = t.to_csr();
//! let x = conjugate_gradient(&a, &[1.0, 2.0], &CgOptions::default())?;
//! assert!((a.mul_vec(&x)[0] - 1.0).abs() < 1e-8);
//! # Ok::<(), darksil_numerics::NumericsError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cg;
mod dense;
mod error;
pub mod factor;
mod lstsq;
pub mod ode;
pub mod robust;
mod sparse;

pub use cg::{
    conjugate_gradient, conjugate_gradient_best_effort, conjugate_gradient_from,
    conjugate_gradient_with_outcome, CgOptions, CgOutcome,
};
pub use dense::{DenseMatrix, LuFactors};
pub use error::NumericsError;
pub use factor::{
    factor_cache_stats, factor_spd, matrix_digest, solve_spd_cached, solve_spd_cached_from,
    solve_spd_factored, FactorCache, FactorCacheStats, SpdFactors,
};
pub use lstsq::{fit_least_squares, polynomial_fit};
pub use robust::{solve_spd_robust, solve_spd_robust_from, SolveDiagnostics, SolveStage};
pub use sparse::{CsrMatrix, TripletMatrix};

/// Euclidean norm of a vector.
#[must_use]
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha·x` (BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_dot() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
