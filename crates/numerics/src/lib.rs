//! Numerical kernels for the `darksil` workspace.
//!
//! The thermal substrate (`darksil-thermal`) needs to solve moderately
//! large sparse symmetric-positive-definite systems (steady state) and to
//! integrate stiff linear ODEs (transient turbo-boost simulations), and
//! the power crate fits Eq. (1) of the paper to sampled data. Rather than
//! pull in a linear-algebra dependency, this crate provides exactly the
//! kernels needed:
//!
//! * [`DenseMatrix`] with LU factorisation ([`LuFactors`]) and partial
//!   pivoting — used for small systems and for cross-validating the
//!   iterative solver,
//! * [`CsrMatrix`] compressed sparse row storage built via
//!   [`TripletMatrix`],
//! * [`conjugate_gradient`] with Jacobi preconditioning for SPD systems,
//! * [`ode`] backward-Euler / RK4 steppers for `C·dx/dt = b − G·x`,
//! * [`fit_least_squares`] linear least squares via normal equations.
//!
//! # Examples
//!
//! ```
//! use darksil_numerics::{TripletMatrix, conjugate_gradient, CgOptions};
//!
//! // A tiny SPD system: [[4,1],[1,3]] x = [1,2]
//! let mut t = TripletMatrix::new(2, 2);
//! t.add(0, 0, 4.0);
//! t.add(0, 1, 1.0);
//! t.add(1, 0, 1.0);
//! t.add(1, 1, 3.0);
//! let a = t.to_csr();
//! let x = conjugate_gradient(&a, &[1.0, 2.0], &CgOptions::default())?;
//! assert!((a.mul_vec(&x)[0] - 1.0).abs() < 1e-8);
//! # Ok::<(), darksil_numerics::NumericsError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cg;
mod dense;
mod error;
mod lstsq;
pub mod ode;
pub mod robust;
mod sparse;

pub use cg::{
    conjugate_gradient, conjugate_gradient_best_effort, conjugate_gradient_from,
    conjugate_gradient_with_outcome, CgOptions, CgOutcome,
};
pub use dense::{DenseMatrix, LuFactors};
pub use error::NumericsError;
pub use lstsq::{fit_least_squares, polynomial_fit};
pub use robust::{solve_spd_robust, SolveDiagnostics, SolveStage};
pub use sparse::{CsrMatrix, TripletMatrix};

/// Euclidean norm of a vector.
#[must_use]
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha·x` (BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_dot() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
