//! Sparse matrices: triplet (COO) assembly and CSR storage.

use crate::DenseMatrix;

/// Coordinate-format accumulator used to assemble sparse matrices.
///
/// Duplicate `(row, col)` entries are summed when converting to CSR,
/// which matches how conductances are stamped into a thermal network
/// (each resistor contributes to four entries, several resistors may
/// share an entry).
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows × cols` accumulator.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; repeated calls accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "triplet out of bounds");
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b` the way a
    /// resistor is stamped into a nodal-analysis matrix:
    /// `+g` on both diagonals, `−g` on both off-diagonals.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or the matrix is not
    /// square.
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        assert_eq!(self.rows, self.cols, "stamping requires a square matrix");
        self.add(a, a, g);
        self.add(b, b, g);
        self.add(a, b, -g);
        self.add(b, a, -g);
    }

    /// Stamps a conductance from node `a` to an implicit reference node
    /// (e.g. ambient): only the diagonal entry is affected.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds.
    pub fn stamp_to_reference(&mut self, a: usize, g: f64) {
        self.add(a, a, g);
    }

    /// Number of raw (pre-deduplication) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to compressed sparse row format, summing duplicates.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        row_ptr.push(0);

        let mut current_row = 0;
        for (r, c, v) in sorted {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            // Merge with the previous entry only if it belongs to the same
            // row (i.e. was pushed after the current row started) and the
            // same column.
            let row_start = row_ptr.last().copied().unwrap_or(0);
            match (col_idx.last(), values.last_mut()) {
                (Some(&last_col), Some(last_val)) if col_idx.len() > row_start && last_col == c => {
                    *last_val += v;
                }
                _ => {
                    col_idx.push(c);
                    values.push(v);
                }
            }
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, or `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.col_idx[start..end].binary_search(&col) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product writing into a caller-provided buffer
    /// (avoids per-iteration allocation inside iterative solvers).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x dimension mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec: y dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let start = self.row_ptr[i];
            let end = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in start..end {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// `‖b − A·x‖₂` without allocating the intermediate product — the
    /// residual check on the factored fast path runs once per solve, so
    /// it must not cost more than the substitution it guards.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    #[must_use]
    pub fn residual_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(x.len(), self.cols, "residual: x dimension mismatch");
        assert_eq!(b.len(), self.rows, "residual: b dimension mismatch");
        let mut sum = 0.0;
        for (i, &bi) in b.iter().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            let d = bi - acc;
            sum += d * d;
        }
        sum.sqrt()
    }

    /// The main diagonal as a vector (zeros where not stored).
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Checks structural symmetry with exact value equality of mirrored
    /// entries up to `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for row in 0..self.rows {
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                let col = self.col_idx[k];
                if (self.values[k] - self.get(col, row)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Expands to a dense matrix (for validation / small systems only).
    #[must_use]
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for row in 0..self.rows {
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                d[(row, self.col_idx[k])] += self.values[k];
            }
        }
        d
    }

    /// Iterates over stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |row| {
            (self.row_ptr[row]..self.row_ptr[row + 1])
                .map(move |k| (row, self.col_idx[k], self.values[k]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.add(0, 0, 2.0);
        t.add(0, 2, 1.0);
        t.add(1, 1, 3.0);
        t.add(2, 0, 1.0);
        t.add(2, 2, 4.0);
        t.to_csr()
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.5);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn zeros_are_skipped() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 0.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let sparse = a.mul_vec(&x);
        let dense = a.to_dense().mul_vec(&x);
        assert_eq!(sparse, dense);
        assert_eq!(sparse, vec![5.0, 6.0, 13.0]);
    }

    #[test]
    fn conductance_stamp_is_symmetric_with_zero_row_sums() {
        let mut t = TripletMatrix::new(4, 4);
        t.stamp_conductance(0, 1, 2.0);
        t.stamp_conductance(1, 2, 0.5);
        t.stamp_conductance(2, 3, 1.5);
        let a = t.to_csr();
        assert!(a.is_symmetric(0.0));
        // A pure resistor network with no reference has zero row sums.
        let ones = vec![1.0; 4];
        for v in a.mul_vec(&ones) {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn reference_stamp_breaks_singularity() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_to_reference(0, 0.5);
        let a = t.to_csr().to_dense();
        // Now solvable: current injected at node 1 flows to reference.
        let x = a.solve(&[0.0, 1.0]).expect("solve succeeds");
        assert!(x[1] > x[0]);
    }

    #[test]
    fn get_missing_entry_is_zero() {
        let a = example();
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = example();
        assert_eq!(a.diagonal(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = example();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), a.nnz());
        assert!(entries.contains(&(2, 0, 1.0)));
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut t = TripletMatrix::new(4, 4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 2.0);
        let a = t.to_csr();
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn asymmetric_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0);
        assert!(!t.to_csr().is_symmetric(1e-12));
    }
}
