//! Error type shared by the numerical kernels.

use std::error::Error;
use std::fmt;

/// Errors produced by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A matrix was singular (or numerically singular) during
    /// factorisation; carries the pivot column at which elimination broke
    /// down.
    SingularMatrix {
        /// Column index of the vanishing pivot.
        pivot: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    ConvergenceFailure {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// Operand dimensions were incompatible.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// An input (matrix entry or right-hand side) was NaN or infinite.
    NonFinite {
        /// Where the offending value was found.
        context: String,
    },
    /// The solve observed a tripped cancellation token (wall-clock
    /// deadline or explicit cancel) at an iteration boundary and
    /// stopped cooperatively.
    Cancelled {
        /// What was interrupted and why.
        context: String,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            Self::ConvergenceFailure {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            Self::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            Self::NonFinite { context } => {
                write!(f, "non-finite value: {context}")
            }
            Self::Cancelled { context } => {
                write!(f, "solve cancelled: {context}")
            }
        }
    }
}

impl Error for NumericsError {}

impl From<NumericsError> for darksil_robust::DarksilError {
    fn from(e: NumericsError) -> Self {
        match &e {
            NumericsError::SingularMatrix { .. } | NumericsError::ConvergenceFailure { .. } => {
                Self::solver(e.to_string())
            }
            NumericsError::DimensionMismatch { .. } => Self::dimension(e.to_string()),
            NumericsError::NonFinite { .. } => Self::non_finite(e.to_string()),
            NumericsError::Cancelled { .. } => Self::deadline(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error>() {}
        assert_bounds::<NumericsError>();
    }

    #[test]
    fn display_messages() {
        let e = NumericsError::SingularMatrix { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 3");
        let e = NumericsError::DimensionMismatch {
            context: "rhs has 4 rows, matrix has 5".into(),
        };
        assert!(e.to_string().contains("rhs has 4 rows"));
        let e = NumericsError::ConvergenceFailure {
            iterations: 100,
            residual: 1.0e-3,
        };
        assert!(e.to_string().contains("100 iterations"));
        let e = NumericsError::Cancelled {
            context: "cg iteration: wall-clock deadline exceeded".into(),
        };
        assert!(e.to_string().contains("cancelled"));
    }

    #[test]
    fn cancellation_maps_to_the_deadline_class() {
        let e: darksil_robust::DarksilError = NumericsError::Cancelled {
            context: "cg iteration".into(),
        }
        .into();
        assert_eq!(e.class(), darksil_robust::ErrorClass::Deadline);
    }
}
