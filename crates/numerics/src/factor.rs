//! Cached sparse LDLᵀ factorisation: factor once, solve many.
//!
//! The thermal RC conductance topology is fixed per floorplan — across a
//! sweep, a fixed-point iteration, or a pattern-optimisation loop only
//! the power right-hand side (and occasionally a few diagonal terms)
//! change. This module exploits that structure:
//!
//! * [`factor_spd`] runs a fill-reducing minimum-degree ordering
//!   and a symbolic analysis **once**, producing reusable
//!   [`SpdFactors`]; every subsequent [`SpdFactors::solve`] is a sparse
//!   forward/diagonal/backward substitution — no iteration at all.
//! * [`SpdFactors::refactor_diagonal`] re-runs only the numeric phase
//!   when diagonal terms change (e.g. a convection or leakage knob),
//!   reusing the ordering and symbolic structure.
//! * [`SpdFactors::solve_many`] batches multi-RHS solves.
//! * [`FactorCache`] keys factors by a content digest of the matrix —
//!   the same discipline as the engine's content-addressed result cache
//!   — bounded and thread-safe, so concurrent engine jobs solving on the
//!   same floorplan factor it exactly once per process.
//! * [`solve_spd_cached`] is the drop-in robust entry point: factored
//!   fast path with a residual check, falling back into the
//!   CG → restarted-CG → dense-LU chain (optionally warm-started) when
//!   the matrix cannot be factored or the factored solution drifts.
//!
//! Factorisation is deterministic, so results are byte-identical whether
//! a factor is computed fresh or served from the cache, at any worker
//! count.
#![deny(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::robust::solve_chain_from;
use crate::{norm2, CgOptions, CsrMatrix, NumericsError, SolveDiagnostics, SolveStage};

/// Sentinel for "no parent" in the elimination tree.
const NONE: usize = usize::MAX;

/// Bound on cached factorisations held by the process-global
/// [`FactorCache`]: enough for every distinct floorplan/package/step
/// matrix a large sweep touches, small enough to stay a rounding error
/// in memory next to the result cache.
const GLOBAL_CACHE_CAPACITY: usize = 32;

/// Symmetry tolerance required of factorable matrices: mirrored entries
/// must agree to this relative precision or the factor path declines
/// and the robust chain takes over.
const SYMMETRY_TOL: f64 = 1.0e-9;

// ---------------------------------------------------------------------------
// Minimum-degree ordering
// ---------------------------------------------------------------------------

/// Deterministic fill-reducing ordering: greedy minimum degree on the
/// explicit elimination graph. Returns `perm` with `perm[new] = old`.
///
/// At every step the vertex of smallest current degree (ties broken by
/// index, so the ordering is reproducible) is eliminated and its
/// neighbourhood turned into a clique — exactly the fill the numeric
/// phase will create. Thermal RC networks are stacked grids plus a few
/// hubs (the spreader and sink periphery rings couple to every edge
/// cell of their layer); minimum degree defers the hubs to the end of
/// the order naturally and beats a bandwidth ordering on the layered
/// bulk. The O(n²)-ish cost is paid once per cached factorisation.
fn min_degree_order(a: &CsrMatrix) -> Vec<usize> {
    let n = a.rows();
    let words = n.div_ceil(64);
    // Dense bitset adjacency rows: clique merges become word-wise ORs
    // and degrees are popcounts, so each elimination costs
    // O(degree · n/64) instead of O(degree²·log n) set inserts.
    let mut adj = vec![0_u64; n * words];
    for (r, c, _) in a.iter() {
        if r != c {
            adj[r * words + c / 64] |= 1 << (c % 64);
            adj[c * words + r / 64] |= 1 << (r % 64);
        }
    }
    let popcount = |row: &[u64]| -> usize { row.iter().map(|w| w.count_ones() as usize).sum() };
    let mut degree: Vec<usize> = (0..n)
        .map(|i| popcount(&adj[i * words..(i + 1) * words]))
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Smallest current degree, ties broken by index for a
        // reproducible ordering.
        let Some(v) = (0..n)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| degree[i])
        else {
            break;
        };
        eliminated[v] = true;
        order.push(v);
        let row_v: Vec<u64> = adj[v * words..(v + 1) * words].to_vec();
        for (base, &word) in row_v.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let u = base * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let row_u = &mut adj[u * words..(u + 1) * words];
                // Merge v's neighbourhood (the elimination clique),
                // then drop v itself and any self-loop.
                for (dst, &src) in row_u.iter_mut().zip(&row_v) {
                    *dst |= src;
                }
                row_u[v / 64] &= !(1 << (v % 64));
                row_u[u / 64] &= !(1 << (u % 64));
                degree[u] = popcount(&adj[u * words..(u + 1) * words]);
            }
        }
    }
    order
}

// ---------------------------------------------------------------------------
// SpdFactors
// ---------------------------------------------------------------------------

/// A reusable sparse LDLᵀ factorisation `P·A·Pᵀ = L·D·Lᵀ` of a symmetric
/// positive-definite matrix.
///
/// Produced by [`factor_spd`]. The fill-reducing ordering and symbolic
/// analysis are done once at construction; [`SpdFactors::solve`] and
/// [`SpdFactors::solve_many`] are pure substitutions, and
/// [`SpdFactors::refactor_diagonal`] re-runs only the numeric phase when
/// diagonal entries change.
#[derive(Debug, Clone)]
pub struct SpdFactors {
    n: usize,
    /// `perm[new] = old`.
    perm: Vec<usize>,
    /// Elimination tree over permuted indices (`NONE` = root).
    parent: Vec<usize>,
    /// Permuted upper triangle of `A` in compressed-column form (the
    /// numeric phase's input; kept so diagonal updates can refactor
    /// without the original matrix).
    b_colptr: Vec<usize>,
    b_rowidx: Vec<usize>,
    b_values: Vec<f64>,
    /// Position of each diagonal entry in `b_values`, by permuted index.
    diag_pos: Vec<usize>,
    /// `L` (unit diagonal, strictly-lower part) in compressed-column form.
    l_colptr: Vec<usize>,
    /// Row indices are stored narrow (`u32`) to halve the memory the
    /// substitution loops stream per solve.
    l_rowidx: Vec<u32>,
    l_values: Vec<f64>,
    /// The diagonal matrix `D`.
    d: Vec<f64>,
    /// Reciprocals of `d`, precomputed so the solve hot loop multiplies
    /// instead of divides.
    d_inv: Vec<f64>,
    /// First column of the dense trailing block. Minimum-degree pushes
    /// fill towards the end of the order; once the tail is at least half
    /// full it is cheaper to process as a packed dense triangle (no
    /// index loads, contiguous streaming) than as indexed sparse
    /// columns. `n` when no tail qualifies.
    dense_start: usize,
    /// Strictly-lower entries of columns `dense_start..n`, packed
    /// column-major: column `j` stores rows `j+1..n` contiguously,
    /// explicit zeros included.
    dense_cols: Vec<f64>,
}

/// A trailing block is stored dense once its fill is at least this
/// fraction of the full triangle. Dense slots stream ≈4× faster than
/// indexed sparse entries, so break-even is near 0.25; 0.5 keeps a
/// safety margin and bounds the dense storage at twice the true fill.
const DENSE_TAIL_MIN_FILL: f64 = 0.5;

impl SpdFactors {
    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` (strictly lower triangle; the unit diagonal
    /// is implicit). A measure of fill-in for diagnostics and tests.
    #[must_use]
    pub fn nnz_l(&self) -> usize {
        self.l_values.len()
    }

    /// First column (permuted order) of the packed dense trailing
    /// block, or `dimension()` when no tail qualified. Diagnostic.
    #[must_use]
    pub fn dense_block_start(&self) -> usize {
        self.dense_start
    }

    /// Stored entries of `L` per column (permuted order) — the fill
    /// profile, useful for ordering diagnostics.
    #[must_use]
    pub fn column_fill_profile(&self) -> Vec<usize> {
        (0..self.n)
            .map(|j| self.l_colptr[j + 1] - self.l_colptr[j])
            .collect()
    }

    /// Solves `A·x = b` by permuted forward/diagonal/backward
    /// substitution.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if b.len() != self.n {
            return Err(NumericsError::DimensionMismatch {
                context: format!("rhs has {} rows, matrix has {}", b.len(), self.n),
            });
        }
        let n = self.n;
        let s = self.dense_start;
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // L·y = P·b (unit diagonal): indexed columns, then the packed
        // dense tail.
        for j in 0..s {
            let xj = x[j];
            if xj != 0.0 {
                let (lo, hi) = (self.l_colptr[j], self.l_colptr[j + 1]);
                for (&r, &v) in self.l_rowidx[lo..hi].iter().zip(&self.l_values[lo..hi]) {
                    x[r as usize] -= v * xj;
                }
            }
        }
        let mut off = 0;
        for j in s..n {
            let xj = x[j];
            let col = &self.dense_cols[off..off + (n - 1 - j)];
            off += n - 1 - j;
            if xj != 0.0 {
                for (xi, &v) in x[j + 1..].iter_mut().zip(col) {
                    *xi -= v * xj;
                }
            }
        }
        // D·z = y.
        for (xi, di) in x.iter_mut().zip(&self.d_inv) {
            *xi *= di;
        }
        // Lᵀ·w = z: dense tail first (reverse order), then the indexed
        // columns.
        for j in (s..n).rev() {
            off -= n - 1 - j;
            let col = &self.dense_cols[off..off + (n - 1 - j)];
            let xs = &x[j + 1..];
            // Four independent accumulators break the FMA latency chain
            // of a sequential dot product.
            let mut acc = [0.0_f64; 4];
            let mut xc = xs.chunks_exact(4);
            let mut vc = col.chunks_exact(4);
            for (xk, vk) in (&mut xc).zip(&mut vc) {
                acc[0] += vk[0] * xk[0];
                acc[1] += vk[1] * xk[1];
                acc[2] += vk[2] * xk[2];
                acc[3] += vk[3] * xk[3];
            }
            let mut rest = 0.0;
            for (&xi, &v) in xc.remainder().iter().zip(vc.remainder()) {
                rest += v * xi;
            }
            x[j] -= acc[0] + acc[1] + acc[2] + acc[3] + rest;
        }
        for j in (0..s).rev() {
            let (lo, hi) = (self.l_colptr[j], self.l_colptr[j + 1]);
            let mut xj = x[j];
            for (&r, &v) in self.l_rowidx[lo..hi].iter().zip(&self.l_values[lo..hi]) {
                xj -= v * x[r as usize];
            }
            x[j] = xj;
        }
        // Undo the permutation.
        let mut out = vec![0.0; n];
        for (k, &p) in self.perm.iter().enumerate() {
            out[p] = x[k];
        }
        Ok(out)
    }

    /// Solves one factored system for many right-hand sides — the
    /// batched form of [`SpdFactors::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if any right-hand
    /// side has the wrong length.
    pub fn solve_many<B: AsRef<[f64]>>(&self, rhs: &[B]) -> Result<Vec<Vec<f64>>, NumericsError> {
        rhs.iter().map(|b| self.solve(b.as_ref())).collect()
    }

    /// Replaces the matrix diagonal (given in original node order) and
    /// re-runs the numeric factorisation, reusing the ordering and
    /// symbolic structure. Exactly equivalent to factoring the updated
    /// matrix from scratch, at a fraction of the cost.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] for a wrong-length
    /// diagonal, [`NumericsError::NonFinite`] for NaN/Inf entries, and
    /// [`NumericsError::SingularMatrix`] when the updated matrix is no
    /// longer positive definite.
    pub fn refactor_diagonal(&mut self, diag: &[f64]) -> Result<(), NumericsError> {
        if diag.len() != self.n {
            return Err(NumericsError::DimensionMismatch {
                context: format!("diagonal has {} entries, matrix has {}", diag.len(), self.n),
            });
        }
        if let Some(bad) = diag.iter().position(|v| !v.is_finite()) {
            return Err(NumericsError::NonFinite {
                context: format!("diagonal entry {bad} is {}", diag[bad]),
            });
        }
        for (k, &pos) in self.diag_pos.iter().enumerate() {
            self.b_values[pos] = diag[self.perm[k]];
        }
        self.numeric()
    }

    /// Chooses the dense trailing block and packs its columns from the
    /// just-computed sparse factor. Runs after every numeric phase.
    #[allow(clippy::cast_precision_loss)]
    fn pack_dense(&mut self) {
        let n = self.n;
        // Largest tail whose fill reaches DENSE_TAIL_MIN_FILL of the
        // packed triangle.
        let mut start = n;
        let mut tail_nnz = 0_usize;
        let mut slots = 0_usize;
        for j in (0..n).rev() {
            tail_nnz += self.l_colptr[j + 1] - self.l_colptr[j];
            slots += n - 1 - j;
            if slots > 0 && tail_nnz as f64 >= DENSE_TAIL_MIN_FILL * slots as f64 {
                start = j;
            }
        }
        self.dense_start = start;
        let total: usize = (start..n).map(|j| n - 1 - j).sum();
        self.dense_cols.clear();
        self.dense_cols.resize(total, 0.0);
        let mut off = 0;
        for j in start..n {
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                let r = self.l_rowidx[p] as usize;
                self.dense_cols[off + r - j - 1] = self.l_values[p];
            }
            off += n - 1 - j;
        }
    }

    /// The numeric phase of up-looking sparse LDLᵀ over the stored
    /// permuted upper triangle, following the classic `LDL` elimination
    /// (Davis): for each row `k`, scatter the upper column into a dense
    /// work vector, walk the elimination tree for the row pattern, and
    /// eliminate in topological order.
    fn numeric(&mut self) -> Result<(), NumericsError> {
        let n = self.n;
        let mut y = vec![0.0; n];
        let mut pattern = vec![0_usize; n];
        let mut flag = vec![NONE; n];
        let mut lnz = vec![0_usize; n];
        self.l_values.clear();
        self.l_values.resize(self.l_rowidx.len(), 0.0);

        for k in 0..n {
            let mut top = n;
            flag[k] = k;
            for p in self.b_colptr[k]..self.b_colptr[k + 1] {
                let mut i = self.b_rowidx[p];
                y[i] += self.b_values[p];
                // Row pattern: path from i up the elimination tree.
                let mut len = 0;
                while flag[i] != k {
                    pattern[len] = i;
                    len += 1;
                    flag[i] = k;
                    i = self.parent[i];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = pattern[len];
                }
            }
            let mut dk = y[k];
            y[k] = 0.0;
            for &i in &pattern[top..n] {
                let yi = y[i];
                y[i] = 0.0;
                let p2 = self.l_colptr[i] + lnz[i];
                for p in self.l_colptr[i]..p2 {
                    y[self.l_rowidx[p] as usize] -= self.l_values[p] * yi;
                }
                let l_ki = yi / self.d[i];
                dk -= l_ki * yi;
                #[allow(clippy::cast_possible_truncation)] // n ≤ u32::MAX checked at entry
                {
                    self.l_rowidx[p2] = k as u32;
                }
                self.l_values[p2] = l_ki;
                lnz[i] += 1;
            }
            if !(dk.is_finite() && dk > 0.0) {
                return Err(NumericsError::SingularMatrix {
                    pivot: self.perm[k],
                });
            }
            self.d[k] = dk;
            self.d_inv[k] = 1.0 / dk;
        }
        self.pack_dense();
        Ok(())
    }
}

/// Factorises a sparse symmetric positive-definite matrix as
/// `P·A·Pᵀ = L·D·Lᵀ`: minimum-degree ordering, one symbolic
/// analysis, then the numeric factorisation.
///
/// The result is reusable: solve any number of right-hand sides with
/// [`SpdFactors::solve`] / [`SpdFactors::solve_many`], and absorb
/// diagonal-only matrix updates with [`SpdFactors::refactor_diagonal`]
/// without repeating the symbolic work.
///
/// # Errors
///
/// - [`NumericsError::DimensionMismatch`] if the matrix is not square or
///   is not symmetric (to a 1e-9 relative tolerance) — LDLᵀ
///   without pivoting requires exact structural symmetry.
/// - [`NumericsError::NonFinite`] for NaN/Inf entries.
/// - [`NumericsError::SingularMatrix`] when a pivot is non-positive,
///   i.e. the matrix is not positive definite; the carried index is the
///   original (unpermuted) node.
pub fn factor_spd(a: &CsrMatrix) -> Result<SpdFactors, NumericsError> {
    let n = a.rows();
    if n > u32::MAX as usize {
        return Err(NumericsError::DimensionMismatch {
            context: format!("LDLt row indices are u32; {n} rows exceed that"),
        });
    }
    if a.cols() != n {
        return Err(NumericsError::DimensionMismatch {
            context: format!(
                "LDLt requires a square matrix, got {}×{}",
                a.rows(),
                a.cols()
            ),
        });
    }
    if let Some((row, col, value)) = a.iter().find(|(_, _, v)| !v.is_finite()) {
        return Err(NumericsError::NonFinite {
            context: format!("matrix entry ({row}, {col}) is {value}"),
        });
    }
    if !a.is_symmetric(SYMMETRY_TOL) {
        return Err(NumericsError::DimensionMismatch {
            context: "LDLt requires a symmetric matrix".to_string(),
        });
    }

    let perm = min_degree_order(a);
    let mut perm_inv = vec![0_usize; n];
    for (new, &old) in perm.iter().enumerate() {
        perm_inv[old] = new;
    }

    // Permuted upper triangle in compressed-column form, sorted by
    // (column, row). Structural symmetry means keeping the entries that
    // land in the upper triangle covers the whole matrix.
    let mut upper: Vec<(usize, usize, f64)> = a
        .iter()
        .filter_map(|(r, c, v)| {
            let (pr, pc) = (perm_inv[r], perm_inv[c]);
            (pr <= pc).then_some((pc, pr, v))
        })
        .collect();
    upper.sort_unstable_by_key(|&(c, r, _)| (c, r));

    let mut b_colptr = vec![0_usize; n + 1];
    let mut b_rowidx = Vec::with_capacity(upper.len());
    let mut b_values = Vec::with_capacity(upper.len());
    let mut diag_pos = vec![NONE; n];
    for &(c, r, v) in &upper {
        b_colptr[c + 1] += 1;
        if r == c {
            diag_pos[c] = b_rowidx.len();
        }
        b_rowidx.push(r);
        b_values.push(v);
    }
    for c in 0..n {
        b_colptr[c + 1] += b_colptr[c];
    }
    if let Some(k) = diag_pos.iter().position(|&p| p == NONE) {
        // A structurally missing diagonal cannot be positive definite.
        return Err(NumericsError::SingularMatrix { pivot: perm[k] });
    }

    // Symbolic phase: elimination tree + per-column counts of L.
    let mut parent = vec![NONE; n];
    let mut flag = vec![NONE; n];
    let mut lnz = vec![0_usize; n];
    for k in 0..n {
        flag[k] = k;
        for &row in &b_rowidx[b_colptr[k]..b_colptr[k + 1]] {
            let mut i = row;
            while flag[i] != k {
                if parent[i] == NONE {
                    parent[i] = k;
                }
                lnz[i] += 1;
                flag[i] = k;
                i = parent[i];
            }
        }
    }
    let mut l_colptr = vec![0_usize; n + 1];
    for k in 0..n {
        l_colptr[k + 1] = l_colptr[k] + lnz[k];
    }
    let nnz_l = l_colptr[n];

    let mut factors = SpdFactors {
        n,
        perm,
        parent,
        b_colptr,
        b_rowidx,
        b_values,
        diag_pos,
        l_colptr,
        l_rowidx: vec![0; nnz_l],
        l_values: vec![0.0; nnz_l],
        d: vec![0.0; n],
        d_inv: vec![0.0; n],
        dense_start: n,
        dense_cols: Vec::new(),
    };
    factors.numeric()?;
    Ok(factors)
}

// ---------------------------------------------------------------------------
// FactorCache
// ---------------------------------------------------------------------------

/// FNV-1a content digest of a matrix: dimensions, sparsity pattern and
/// value bits. Two matrices share a digest exactly when they are
/// entry-for-entry identical — the cache key discipline of the engine's
/// content-addressed result cache.
#[must_use]
pub fn matrix_digest(a: &CsrMatrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(a.rows() as u64);
    mix(a.cols() as u64);
    for (r, c, v) in a.iter() {
        mix(r as u64);
        mix(c as u64);
        mix(v.to_bits());
    }
    h
}

/// Aggregate counters of a [`FactorCache`], for health endpoints and the
/// trace summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorCacheStats {
    /// Lookups served from an existing factorisation.
    pub hits: u64,
    /// Lookups that had to factor (or re-discover a non-factorable
    /// matrix).
    pub misses: u64,
    /// Factorisations currently held.
    pub entries: usize,
}

struct CacheInner {
    /// LRU order: most recently used last.
    entries: Vec<(u64, Arc<SpdFactors>)>,
    /// Digests that failed to factor (non-symmetric, not SPD): remembered
    /// so the robust chain is taken directly instead of re-attempting a
    /// doomed factorisation every solve.
    failed: Vec<u64>,
}

/// A bounded, thread-safe cache of [`SpdFactors`] keyed by matrix
/// content digest ([`matrix_digest`]).
///
/// Factorisation happens under the cache lock, so concurrent solvers on
/// the same matrix factor it exactly once and hit/miss counts are
/// deterministic at any worker count. Capacity overflow evicts the
/// least-recently-used entry. Results are byte-identical whether a
/// factor is fresh or cached — factorisation is deterministic.
pub struct FactorCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for FactorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FactorCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl FactorCache {
    /// Creates an empty cache bounded to `capacity` factorisations.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                failed: Vec::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-global cache used by [`solve_spd_cached`] and the
    /// backward-Euler stepper.
    pub fn global() -> &'static Self {
        static GLOBAL: OnceLock<FactorCache> = OnceLock::new();
        GLOBAL.get_or_init(|| Self::new(GLOBAL_CACHE_CAPACITY))
    }

    /// Returns the factorisation for `a`, computing and caching it on
    /// first sight. Returns `None` when `a` is not factorable
    /// (non-symmetric or not positive definite) — callers fall back to
    /// the robust iterative chain; the failure is remembered so the
    /// attempt is not repeated.
    pub fn get_or_factor(&self, a: &CsrMatrix) -> Option<Arc<SpdFactors>> {
        let digest = matrix_digest(a);
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            // A panic mid-factor never leaves a partial entry behind;
            // keep serving from the surviving state.
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(pos) = inner.entries.iter().position(|(d, _)| *d == digest) {
            let entry = inner.entries.remove(pos);
            let factors = entry.1.clone();
            inner.entries.push(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            darksil_obs::counter("numerics.factor_cache.hit", 1);
            return Some(factors);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        darksil_obs::counter("numerics.factor_cache.miss", 1);
        if inner.failed.contains(&digest) {
            return None;
        }
        let _span = darksil_obs::span("numerics.factor");
        match factor_spd(a) {
            Ok(factors) => {
                #[allow(clippy::cast_precision_loss)]
                darksil_obs::observe("numerics.factor.nnz_l", factors.nnz_l() as f64);
                let factors = Arc::new(factors);
                inner.entries.push((digest, factors.clone()));
                if inner.entries.len() > self.capacity {
                    inner.entries.remove(0);
                }
                Some(factors)
            }
            Err(_) => {
                darksil_obs::counter("numerics.factor.unfactorable", 1);
                inner.failed.push(digest);
                if inner.failed.len() > self.capacity {
                    inner.failed.remove(0);
                }
                None
            }
        }
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> FactorCacheStats {
        let entries = match self.inner.lock() {
            Ok(guard) => guard.entries.len(),
            Err(poisoned) => poisoned.into_inner().entries.len(),
        };
        FactorCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// Counters of the process-global [`FactorCache`] — what `darksil serve`
/// reports under `/v1/stats` and the sweep CLI prints after a run.
#[must_use]
pub fn factor_cache_stats() -> FactorCacheStats {
    FactorCache::global().stats()
}

// ---------------------------------------------------------------------------
// Cached robust solve
// ---------------------------------------------------------------------------

/// Solves `A·x = b` through the factor-cached fast path with a residual
/// check, falling back to the CG → restarted-CG → dense-LU chain when
/// the matrix is not factorable or the factored solution drifts.
///
/// Equivalent to [`solve_spd_cached_from`] without a warm-start seed.
///
/// # Errors
///
/// Same as [`crate::solve_spd_robust`] — the factored path itself never
/// errors for well-posed inputs; it declines and the chain takes over.
pub fn solve_spd_cached(
    a: &CsrMatrix,
    b: &[f64],
    options: &CgOptions,
) -> Result<(Vec<f64>, SolveDiagnostics), NumericsError> {
    solve_spd_cached_from(a, b, None, options)
}

/// [`solve_spd_cached`] with an optional warm-start seed for the
/// fallback chain (e.g. the previous sweep point's or fixed-point
/// iteration's solution). The seed is ignored by the factored path —
/// a direct solve needs no starting point — and guarded on the CG path:
/// a seed is only used when its residual improves on a cold start, so a
/// warm-started solve never returns a worse residual than a cold one.
///
/// # Errors
///
/// Same as [`crate::solve_spd_robust`].
pub fn solve_spd_cached_from(
    a: &CsrMatrix,
    b: &[f64],
    seed: Option<&[f64]>,
    options: &CgOptions,
) -> Result<(Vec<f64>, SolveDiagnostics), NumericsError> {
    let factors = if b.len() == a.rows() {
        FactorCache::global().get_or_factor(a)
    } else {
        None
    };
    solve_spd_factored(factors.as_deref(), a, b, seed, options)
}

/// The factor-cached solve with caller-resolved factors — the hot-loop
/// form of [`solve_spd_cached_from`] for callers that hold their own
/// [`SpdFactors`] (e.g. a thermal model solving hundreds of loads on
/// one matrix), skipping the per-solve digest and cache lookup.
///
/// `factors` of `None` (matrix unfactorable or not resolved) goes
/// straight to the CG → restarted-CG → dense-LU chain, warm-started
/// from `seed` when one is supplied. Factored solutions are residual-
/// checked against `options.tolerance`; on drift the chain takes over,
/// seeded from the factored iterate.
///
/// # Errors
///
/// Same as [`crate::solve_spd_robust`].
pub fn solve_spd_factored(
    factors: Option<&SpdFactors>,
    a: &CsrMatrix,
    b: &[f64],
    seed: Option<&[f64]>,
    options: &CgOptions,
) -> Result<(Vec<f64>, SolveDiagnostics), NumericsError> {
    let _span = darksil_obs::span("numerics.solve_spd");
    #[allow(clippy::cast_precision_loss)]
    darksil_obs::observe("numerics.solve_rows", a.rows() as f64);

    let mut drift_iterate: Option<Vec<f64>> = None;
    if let Some(factors) = factors.filter(|f| f.dimension() == b.len()) {
        let x = factors.solve(b)?;
        let residual = residual_norm(a, &x, b);
        let target = options.tolerance * norm2(b);
        if x.iter().all(|v| v.is_finite()) && residual <= target.max(f64::MIN_POSITIVE) {
            let diagnostics = SolveDiagnostics {
                stage: SolveStage::Factored,
                cg_iterations: 0,
                residual,
                fallbacks: 0,
            };
            crate::robust::record_diagnostics(&diagnostics);
            return Ok((x, diagnostics));
        }
        // Drift: hand the factored iterate to the chain as a seed —
        // it is almost certainly the best start available.
        darksil_obs::counter("numerics.factor.drift", 1);
        if x.iter().all(|v| v.is_finite()) {
            drift_iterate = Some(x);
        }
    }
    let chain_seed: Option<&[f64]> = drift_iterate.as_deref().or(seed);
    let result = solve_chain_from(a, b, chain_seed, options);
    if let Ok((_, diagnostics)) = &result {
        crate::robust::record_diagnostics(diagnostics);
    }
    result
}

/// `‖b − A·x‖₂`, computed without allocating an intermediate `A·x`.
fn residual_norm(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    a.residual_norm(x, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_spd_robust, TripletMatrix};

    /// A W×H RC-grid Laplacian with a leak to the reference node — the
    /// shape of every thermal conductance matrix in this workspace.
    fn grid_laplacian(w: usize, h: usize) -> CsrMatrix {
        let n = w * h;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    t.stamp_conductance(i, i + 1, 2.0);
                }
                if y + 1 < h {
                    t.stamp_conductance(i, i + w, 2.0);
                }
                t.stamp_to_reference(i, 0.5);
            }
        }
        t.to_csr()
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7) % 5) as f64 - 1.0).collect()
    }

    #[test]
    fn factored_solve_matches_robust_chain() {
        let a = grid_laplacian(8, 8);
        let b = rhs(64);
        let f = factor_spd(&a).expect("grid is SPD");
        let x = f.solve(&b).expect("solve succeeds");
        let (x_cg, _) = solve_spd_robust(&a, &b, &CgOptions::default()).expect("cg solves");
        for (a_, b_) in x.iter().zip(&x_cg) {
            assert!((a_ - b_).abs() < 1e-7, "{a_} vs {b_}");
        }
        assert!(residual_norm(&a, &x, &b) < 1e-10 * norm2(&b).max(1.0));
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let a = grid_laplacian(5, 4);
        let f = factor_spd(&a).expect("grid is SPD");
        let rhss: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..20).map(|i| ((i + k) % 3) as f64).collect())
            .collect();
        let batch = f.solve_many(&rhss).expect("batch solves");
        for (b, x) in rhss.iter().zip(&batch) {
            assert_eq!(x, &f.solve(b).expect("solve succeeds"));
        }
    }

    #[test]
    fn ordering_is_a_permutation() {
        let a = grid_laplacian(6, 6);
        let perm = min_degree_order(&a);
        let mut seen = [false; 36];
        for &p in &perm {
            assert!(!seen[p], "duplicate index {p}");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_in_stays_bounded_on_grids() {
        // Minimum degree on a W×H grid keeps fill modest; it must stay
        // far below the dense lower triangle.
        let a = grid_laplacian(12, 12);
        let f = factor_spd(&a).expect("grid is SPD");
        let n = 144;
        assert!(
            f.nnz_l() < n * 14,
            "excessive fill: {} entries in L",
            f.nnz_l()
        );
    }

    #[test]
    fn diagonal_refactor_matches_from_scratch() {
        let a = grid_laplacian(7, 5);
        let mut f = factor_spd(&a).expect("grid is SPD");
        // Bump every diagonal entry (e.g. a changed convection term).
        let new_diag: Vec<f64> = a
            .diagonal()
            .iter()
            .enumerate()
            .map(|(i, d)| d + 0.1 + (i % 3) as f64 * 0.05)
            .collect();
        f.refactor_diagonal(&new_diag).expect("refactor succeeds");

        let mut t = TripletMatrix::new(35, 35);
        for (r, c, v) in a.iter() {
            if r != c {
                t.add(r, c, v);
            }
        }
        for (i, &d) in new_diag.iter().enumerate() {
            t.add(i, i, d);
        }
        let fresh = factor_spd(&t.to_csr()).expect("updated grid is SPD");
        assert_eq!(f.l_values, fresh.l_values);
        assert_eq!(f.d, fresh.d);
    }

    #[test]
    fn non_spd_matrix_is_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, -1.0);
        t.add(1, 1, -1.0);
        assert!(matches!(
            factor_spd(&t.to_csr()),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn asymmetric_matrix_is_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 2.0);
        t.add(0, 1, 1.0);
        t.add(1, 1, 2.0);
        assert!(matches!(
            factor_spd(&t.to_csr()),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn missing_diagonal_is_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0);
        t.add(1, 0, 1.0);
        t.add(0, 0, 1.0);
        assert!(matches!(
            factor_spd(&t.to_csr()),
            Err(NumericsError::SingularMatrix { pivot: 1 })
        ));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let f = factor_spd(&grid_laplacian(3, 3)).expect("grid is SPD");
        assert!(matches!(
            f.solve(&[1.0; 4]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
        let mut f2 = f;
        assert!(matches!(
            f2.refactor_diagonal(&[1.0; 4]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cache_hits_after_first_factor_and_stays_bounded() {
        let cache = FactorCache::new(2);
        let a = grid_laplacian(4, 4);
        let b = grid_laplacian(5, 5);
        let c = grid_laplacian(6, 6);
        assert!(cache.get_or_factor(&a).is_some());
        assert!(cache.get_or_factor(&a).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // Third distinct matrix evicts the least recently used.
        assert!(cache.get_or_factor(&b).is_some());
        assert!(cache.get_or_factor(&c).is_some());
        assert_eq!(cache.stats().entries, 2);
        // `a` was evicted: looking it up again is a miss that refactors.
        assert!(cache.get_or_factor(&a).is_some());
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn cache_remembers_unfactorable_matrices() {
        let cache = FactorCache::new(4);
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, -1.0);
        t.add(1, 1, -1.0);
        let bad = t.to_csr();
        assert!(cache.get_or_factor(&bad).is_none());
        assert!(cache.get_or_factor(&bad).is_none());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn cached_solve_agrees_with_robust_and_reports_factored_stage() {
        let a = grid_laplacian(9, 9);
        let b = rhs(81);
        let (x, diag) = solve_spd_cached(&a, &b, &CgOptions::default()).expect("solves");
        assert_eq!(diag.stage, SolveStage::Factored);
        assert_eq!(diag.cg_iterations, 0);
        let (x_cg, _) = solve_spd_robust(&a, &b, &CgOptions::default()).expect("cg solves");
        for (a_, b_) in x.iter().zip(&x_cg) {
            assert!((a_ - b_).abs() < 1e-7);
        }
    }

    #[test]
    fn cached_solve_falls_back_on_unfactorable_input() {
        // Negative definite: the factor path declines, dense LU rescues.
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, -1.0);
        t.add(1, 1, -1.0);
        let a = t.to_csr();
        let (x, diag) = solve_spd_cached(&a, &[3.0, 3.0], &CgOptions::default()).expect("lu");
        assert_eq!(diag.stage, SolveStage::DenseLu);
        assert!((x[0] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn cached_solve_rejects_nan_rhs() {
        let a = grid_laplacian(3, 3);
        let mut b = vec![1.0; 9];
        b[4] = f64::NAN;
        assert!(matches!(
            solve_spd_cached(&a, &b, &CgOptions::default()),
            Err(NumericsError::NonFinite { .. })
        ));
    }

    #[test]
    fn digest_distinguishes_values_and_pattern() {
        let a = grid_laplacian(4, 4);
        let mut t = TripletMatrix::new(16, 16);
        for (r, c, v) in a.iter() {
            t.add(r, c, if r == c { v + 1.0e-12 } else { v });
        }
        assert_ne!(matrix_digest(&a), matrix_digest(&t.to_csr()));
        assert_eq!(matrix_digest(&a), matrix_digest(&grid_laplacian(4, 4)));
    }

    #[test]
    fn concurrent_lookups_factor_once() {
        let cache = std::sync::Arc::new(FactorCache::new(4));
        let a = grid_laplacian(10, 10);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = cache.clone();
                let a = &a;
                scope.spawn(move || {
                    assert!(cache.get_or_factor(a).is_some());
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "exactly one thread factors");
        assert_eq!(s.hits, 3);
    }
}
