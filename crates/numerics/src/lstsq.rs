//! Linear least squares via normal equations.
//!
//! Used by `darksil-power` to fit the coefficients of Eq. (1) to
//! McPAT-style samples (the Figure 3 reproduction): the model is linear
//! in `(Ceff, Ileak-scale, Pind)` once voltage/frequency pairs are fixed,
//! so ordinary least squares applies directly.

use crate::{DenseMatrix, NumericsError};

/// Solves `min ‖A·x − y‖₂` through the normal equations `AᵀA·x = Aᵀy`.
///
/// Suitable for the small, well-conditioned design matrices in this
/// workspace (a handful of columns). For rank-deficient systems an error
/// is returned rather than a minimum-norm solution.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] when `y.len()` differs
/// from the row count and [`NumericsError::SingularMatrix`] when `AᵀA`
/// is singular (collinear columns).
pub fn fit_least_squares(a: &DenseMatrix, y: &[f64]) -> Result<Vec<f64>, NumericsError> {
    if y.len() != a.rows() {
        return Err(NumericsError::DimensionMismatch {
            context: format!("observations {} vs design rows {}", y.len(), a.rows()),
        });
    }
    // Column equilibration: physical design matrices (e.g. Eq. (1) with
    // frequencies in hertz next to a constant column) span many orders
    // of magnitude, which squares into the normal equations. Scale each
    // column to unit norm, solve, then unscale the coefficients.
    let (rows, cols) = (a.rows(), a.cols());
    let mut scales = vec![1.0; cols];
    for (j, scale) in scales.iter_mut().enumerate() {
        let norm = (0..rows).map(|i| a[(i, j)] * a[(i, j)]).sum::<f64>().sqrt();
        if norm > 0.0 {
            *scale = norm;
        }
    }
    let mut scaled = a.clone();
    for i in 0..rows {
        for j in 0..cols {
            scaled[(i, j)] /= scales[j];
        }
    }
    let at = scaled.transpose();
    let ata = at.mul_mat(&scaled);
    let aty = at.mul_vec(y);
    let mut x = ata.solve(&aty)?;
    for (xi, s) in x.iter_mut().zip(&scales) {
        *xi /= s;
    }
    Ok(x)
}

/// Fits a polynomial of the given `degree` to `(x, y)` samples, returning
/// coefficients in ascending-power order (`c0 + c1·x + …`).
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] when `x` and `y` differ
/// in length or there are fewer samples than coefficients, and
/// [`NumericsError::SingularMatrix`] for degenerate sample sets.
pub fn polynomial_fit(x: &[f64], y: &[f64], degree: usize) -> Result<Vec<f64>, NumericsError> {
    if x.len() != y.len() {
        return Err(NumericsError::DimensionMismatch {
            context: format!("x has {} samples, y has {}", x.len(), y.len()),
        });
    }
    let ncoef = degree + 1;
    if x.len() < ncoef {
        return Err(NumericsError::DimensionMismatch {
            context: format!("{} samples cannot determine {ncoef} coefficients", x.len()),
        });
    }
    let mut design = DenseMatrix::zeros(x.len(), ncoef);
    for (i, &xi) in x.iter().enumerate() {
        let mut p = 1.0;
        for j in 0..ncoef {
            design[(i, j)] = p;
            p *= xi;
        }
    }
    fit_least_squares(&design, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 + 0.5 * v).collect();
        let c = polynomial_fit(&x, &y, 1).expect("fit succeeds");
        assert!((c[0] - 2.0).abs() < 1e-10);
        assert!((c[1] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn cubic_through_noise_free_samples() {
        let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.4).collect();
        let y: Vec<f64> = x.iter().map(|v| 1.0 - v + 0.25 * v.powi(3)).collect();
        let c = polynomial_fit(&x, &y, 3).expect("fit succeeds");
        assert!((c[0] - 1.0).abs() < 1e-8);
        assert!((c[1] + 1.0).abs() < 1e-8);
        assert!(c[2].abs() < 1e-8);
        assert!((c[3] - 0.25).abs() < 1e-8);
    }

    #[test]
    fn overdetermined_noisy_fit_minimises_residual() {
        // y = 3x with symmetric noise: the LS slope stays near 3.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.1, 5.9, 9.1, 11.9];
        let c = polynomial_fit(&x, &y, 1).expect("fit succeeds");
        assert!((c[1] - 3.0).abs() < 0.1, "slope {}", c[1]);
    }

    #[test]
    fn general_design_matrix() {
        // Fit z = 2·a + 3·b from samples of (a, b).
        let design = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]);
        let y = [2.0, 3.0, 5.0, 7.0];
        let c = fit_least_squares(&design, &y).expect("fit succeeds");
        assert!((c[0] - 2.0).abs() < 1e-10);
        assert!((c[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn collinear_columns_are_singular() {
        let design = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(matches!(
            fit_least_squares(&design, &[1.0, 2.0, 3.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn insufficient_samples_rejected() {
        assert!(matches!(
            polynomial_fit(&[1.0], &[1.0], 2),
            Err(NumericsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            polynomial_fit(&[1.0, 2.0], &[1.0], 1),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }
}
