//! Integrators for the linear ODE system `C·dx/dt = b − G·x`.
//!
//! This is exactly the form of a thermal RC network: `C` is the diagonal
//! heat-capacity matrix, `G` the conductance matrix, `b` the injected
//! power (plus ambient coupling). The system is stiff — die nodes have
//! millisecond time constants while the heat sink's is tens of seconds —
//! so the default stepper is backward Euler (A-stable). An explicit RK4
//! stepper is provided for accuracy cross-checks at small steps.

use std::sync::{Arc, OnceLock};

use crate::factor::{FactorCache, SpdFactors};
use crate::{conjugate_gradient, CgOptions, CsrMatrix, NumericsError, TripletMatrix};

/// A linear first-order system `C·dx/dt = b − G·x` with diagonal `C`.
#[derive(Debug, Clone)]
pub struct LinearOde {
    g: CsrMatrix,
    capacitance: Vec<f64>,
}

impl LinearOde {
    /// Creates the system from a conductance matrix and per-node
    /// capacitances.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `capacitance`
    /// does not match the matrix dimension or `G` is not square, and a
    /// mismatch error if any capacitance is non-positive.
    pub fn new(g: CsrMatrix, capacitance: Vec<f64>) -> Result<Self, NumericsError> {
        if g.rows() != g.cols() {
            return Err(NumericsError::DimensionMismatch {
                context: format!("G must be square, got {}×{}", g.rows(), g.cols()),
            });
        }
        if capacitance.len() != g.rows() {
            return Err(NumericsError::DimensionMismatch {
                context: format!(
                    "capacitance has {} entries, G has {} rows",
                    capacitance.len(),
                    g.rows()
                ),
            });
        }
        if capacitance.iter().any(|&c| c <= 0.0) {
            return Err(NumericsError::DimensionMismatch {
                context: "all node capacitances must be positive".into(),
            });
        }
        Ok(Self { g, capacitance })
    }

    /// Dimension of the system.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.capacitance.len()
    }

    /// Borrow of the conductance matrix.
    #[must_use]
    pub fn conductance(&self) -> &CsrMatrix {
        &self.g
    }

    /// Evaluates `dx/dt = C⁻¹·(b − G·x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `b` have the wrong length.
    #[must_use]
    pub fn derivative(&self, x: &[f64], b: &[f64]) -> Vec<f64> {
        let mut gx = self.g.mul_vec(x);
        for ((gxi, bi), ci) in gx.iter_mut().zip(b).zip(&self.capacitance) {
            *gxi = (bi - *gxi) / ci;
        }
        gx
    }

    /// Builds a [`BackwardEuler`] stepper with step `dt`.
    ///
    /// The implicit system `(C/dt + G)·x⁺ = C/dt·x + b` is assembled once;
    /// every step is then a single SPD solve.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `dt` is not
    /// positive.
    pub fn backward_euler(&self, dt: f64) -> Result<BackwardEuler, NumericsError> {
        if dt <= 0.0 || !dt.is_finite() {
            return Err(NumericsError::DimensionMismatch {
                context: format!("step size must be positive and finite, got {dt}"),
            });
        }
        let n = self.dimension();
        let mut t = TripletMatrix::new(n, n);
        for (row, col, v) in self.g.iter() {
            t.add(row, col, v);
        }
        for (i, &c) in self.capacitance.iter().enumerate() {
            t.add(i, i, c / dt);
        }
        Ok(BackwardEuler {
            system: t.to_csr(),
            c_over_dt: self.capacitance.iter().map(|c| c / dt).collect(),
            dt,
            factors: OnceLock::new(),
        })
    }

    /// Takes one explicit RK4 step of size `dt` from `x` under constant
    /// input `b`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `b` have the wrong length.
    #[must_use]
    pub fn rk4_step(&self, x: &[f64], b: &[f64], dt: f64) -> Vec<f64> {
        let k1 = self.derivative(x, b);
        let x2: Vec<f64> = x.iter().zip(&k1).map(|(xi, k)| xi + 0.5 * dt * k).collect();
        let k2 = self.derivative(&x2, b);
        let x3: Vec<f64> = x.iter().zip(&k2).map(|(xi, k)| xi + 0.5 * dt * k).collect();
        let k3 = self.derivative(&x3, b);
        let x4: Vec<f64> = x.iter().zip(&k3).map(|(xi, k)| xi + dt * k).collect();
        let k4 = self.derivative(&x4, b);
        x.iter()
            .enumerate()
            .map(|(i, xi)| xi + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
            .collect()
    }
}

/// Pre-assembled backward-Euler stepper for a [`LinearOde`].
///
/// The implicit matrix `(C/dt + G)` is fixed for the stepper's lifetime,
/// so the first [`BackwardEuler::step`] factors it through the global
/// [`FactorCache`]; every subsequent step is a sparse substitution. When
/// the matrix cannot be factored the stepper transparently falls back to
/// conjugate gradient per step.
#[derive(Debug, Clone)]
pub struct BackwardEuler {
    system: CsrMatrix,
    c_over_dt: Vec<f64>,
    dt: f64,
    /// Lazily-resolved cached factors: `None` inside means the matrix was
    /// tried and is not factorable (use CG per step).
    factors: OnceLock<Option<Arc<SpdFactors>>>,
}

impl BackwardEuler {
    /// The step size this stepper was assembled for.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advances the state by one step under constant input `b`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the inner solve (factored fast
    /// path with conjugate-gradient fallback).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `b` have the wrong length.
    pub fn step(&self, x: &[f64], b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        assert_eq!(x.len(), self.c_over_dt.len(), "state dimension mismatch");
        assert_eq!(b.len(), self.c_over_dt.len(), "input dimension mismatch");
        let rhs: Vec<f64> = x
            .iter()
            .zip(&self.c_over_dt)
            .zip(b)
            .map(|((xi, ci), bi)| ci * xi + bi)
            .collect();
        let factors = self
            .factors
            .get_or_init(|| FactorCache::global().get_or_factor(&self.system));
        if let Some(factors) = factors {
            let x_next = factors.solve(&rhs)?;
            if x_next.iter().all(|v| v.is_finite()) {
                return Ok(x_next);
            }
        }
        conjugate_gradient(&self.system, &rhs, &CgOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single RC node: C·dT/dt = P − g·T, analytic solution
    /// `T(t) = P/g · (1 − e^{−g t / C})` from `T(0) = 0`.
    fn single_node(g: f64) -> LinearOde {
        let mut t = TripletMatrix::new(1, 1);
        t.stamp_to_reference(0, g);
        LinearOde::new(t.to_csr(), vec![2.0]).expect("numerics succeed")
    }

    #[test]
    fn backward_euler_converges_to_steady_state() {
        let sys = single_node(0.5);
        let stepper = sys.backward_euler(0.1).expect("numerics succeed");
        let mut x = vec![0.0];
        for _ in 0..2000 {
            x = stepper.step(&x, &[3.0]).expect("solve succeeds");
        }
        // Steady state: T = P/g = 6.0.
        assert!((x[0] - 6.0).abs() < 1e-6, "got {}", x[0]);
    }

    #[test]
    fn rk4_matches_analytic_solution() {
        let sys = single_node(0.5);
        let dt = 0.01;
        let mut x = vec![0.0];
        let steps = 100; // t = 1.0
        for _ in 0..steps {
            x = sys.rk4_step(&x, &[3.0], dt);
        }
        let analytic = 6.0 * (1.0 - (-0.5 * 1.0 / 2.0_f64).exp());
        assert!((x[0] - analytic).abs() < 1e-8, "{} vs {analytic}", x[0]);
    }

    #[test]
    fn backward_euler_is_stable_on_stiff_system() {
        // Two nodes with time constants differing by 1e4; take steps far
        // larger than the fast time constant — explicit methods would
        // blow up, BE must remain bounded.
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_to_reference(0, 100.0);
        t.stamp_to_reference(1, 0.01);
        let sys = LinearOde::new(t.to_csr(), vec![1.0e-4, 10.0]).expect("numerics succeed");
        let stepper = sys.backward_euler(1.0).expect("numerics succeed");
        let mut x = vec![50.0, 50.0];
        for _ in 0..100 {
            x = stepper.step(&x, &[1.0, 1.0]).expect("solve succeeds");
            assert!(x.iter().all(|v| v.is_finite() && v.abs() < 1.0e6));
        }
    }

    #[test]
    fn rk4_and_be_agree_at_small_steps() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 1, 2.0);
        t.stamp_conductance(1, 2, 1.0);
        t.stamp_to_reference(2, 0.5);
        let sys = LinearOde::new(t.to_csr(), vec![1.0, 1.0, 1.0]).expect("numerics succeed");
        let dt = 1.0e-3;
        let stepper = sys.backward_euler(dt).expect("numerics succeed");
        let b = [1.0, 0.0, 0.5];
        let mut x_be = vec![0.0; 3];
        let mut x_rk = vec![0.0; 3];
        for _ in 0..1000 {
            x_be = stepper.step(&x_be, &b).expect("solve succeeds");
            x_rk = sys.rk4_step(&x_rk, &b, dt);
        }
        for (a, b) in x_be.iter().zip(&x_rk) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let sys = single_node(1.0);
        assert!(sys.backward_euler(0.0).is_err());
        assert!(sys.backward_euler(-1.0).is_err());
        assert!(sys.backward_euler(f64::NAN).is_err());

        let mut t = TripletMatrix::new(1, 1);
        t.stamp_to_reference(0, 1.0);
        assert!(LinearOde::new(t.to_csr(), vec![0.0]).is_err());
        let mut t2 = TripletMatrix::new(1, 1);
        t2.stamp_to_reference(0, 1.0);
        assert!(LinearOde::new(t2.to_csr(), vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn derivative_is_zero_at_steady_state() {
        let sys = single_node(0.5);
        let d = sys.derivative(&[6.0], &[3.0]);
        assert!(d[0].abs() < 1e-12);
    }
}
