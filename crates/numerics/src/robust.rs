//! Robust SPD solve with a staged fallback chain.
//!
//! Stage 1 runs Jacobi-preconditioned CG with the caller's options.
//! Stage 2 restarts CG from the stalled iterate with a relaxed tolerance
//! and a doubled iteration budget. Stage 3 abandons iteration entirely
//! and factorises the (small, by then known-finite) system densely.
//! Callers therefore only see [`NumericsError::ConvergenceFailure`] when
//! even LU cannot produce a finite solution, and the returned
//! [`SolveDiagnostics`] record which stage produced the answer.

use crate::cg::conjugate_gradient_best_effort;
use crate::{norm2, CgOptions, CsrMatrix, NumericsError};

/// How much stage 2 relaxes the requested tolerance.
const RELAXATION: f64 = 1.0e4;
/// Loosest relative tolerance stage 2 is allowed to accept.
const RELAXED_FLOOR: f64 = 1.0e-6;

/// Which stage of the fallback chain produced the solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStage {
    /// Direct solve through cached sparse LDLᵀ factors — no iteration.
    Factored,
    /// First-attempt preconditioned CG.
    Cg,
    /// CG restarted from the stalled iterate with relaxed tolerance.
    RestartedCg,
    /// Dense LU factorisation.
    DenseLu,
}

impl SolveStage {
    /// Stable lower-case label for logs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Factored => "factored",
            Self::Cg => "cg",
            Self::RestartedCg => "restarted_cg",
            Self::DenseLu => "dense_lu",
        }
    }
}

/// Diagnostics attached to every robust solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveDiagnostics {
    /// Stage that produced the returned solution.
    pub stage: SolveStage,
    /// CG iterations spent across all attempts.
    pub cg_iterations: usize,
    /// Absolute residual norm `‖b − A·x‖` of the returned solution.
    pub residual: f64,
    /// Number of fallback transitions taken (0 = first attempt worked).
    pub fallbacks: usize,
}

/// Solves `A·x = b` through the CG → restarted CG → dense LU chain.
///
/// # Errors
///
/// - [`NumericsError::NonFinite`] if the matrix or right-hand side
///   contains NaN or infinite entries (checked up front, naming the
///   offending position).
/// - [`NumericsError::DimensionMismatch`] for incompatible shapes.
/// - [`NumericsError::ConvergenceFailure`] or
///   [`NumericsError::SingularMatrix`] only when every stage, including
///   dense LU, failed.
pub fn solve_spd_robust(
    a: &CsrMatrix,
    b: &[f64],
    options: &CgOptions,
) -> Result<(Vec<f64>, SolveDiagnostics), NumericsError> {
    solve_spd_robust_from(a, b, None, options)
}

/// [`solve_spd_robust`] with an optional warm-start seed for the first
/// CG attempt — typically the previous fixed-point iteration's or the
/// neighbouring sweep point's solution.
///
/// The seed is guarded: it is only used when it is finite and its
/// residual beats a cold (zero) start, so a warm-started solve never
/// returns a worse residual than a cold one would.
///
/// # Errors
///
/// Same as [`solve_spd_robust`].
pub fn solve_spd_robust_from(
    a: &CsrMatrix,
    b: &[f64],
    seed: Option<&[f64]>,
    options: &CgOptions,
) -> Result<(Vec<f64>, SolveDiagnostics), NumericsError> {
    let _span = darksil_obs::span("numerics.solve_spd");
    #[allow(clippy::cast_precision_loss)]
    darksil_obs::observe("numerics.solve_rows", a.rows() as f64);
    let result = solve_chain_from(a, b, seed, options);
    if let Ok((_, diag)) = &result {
        record_diagnostics(diag);
    }
    result
}

/// Records the per-solve counters and observations for a finished
/// solve. Shared between the robust chain and the factor-cached path so
/// both feed the same `trace summarize` derived solver line.
pub(crate) fn record_diagnostics(diag: &SolveDiagnostics) {
    darksil_obs::counter(
        match diag.stage {
            SolveStage::Factored => "numerics.stage.factored",
            SolveStage::Cg => "numerics.stage.cg",
            SolveStage::RestartedCg => "numerics.stage.restarted_cg",
            SolveStage::DenseLu => "numerics.stage.dense_lu",
        },
        1,
    );
    darksil_obs::counter("numerics.fallback", diag.fallbacks as u64);
    // CG observations describe the iterative chain; a factored solve
    // never ran it, and skipping the zero samples keeps the fast path
    // lean and the series meaningful.
    if diag.stage != SolveStage::Factored {
        #[allow(clippy::cast_precision_loss)]
        darksil_obs::observe("numerics.cg.iterations", diag.cg_iterations as f64);
        darksil_obs::observe("numerics.cg.residual", diag.residual);
    }
}

pub(crate) fn solve_chain_from(
    a: &CsrMatrix,
    b: &[f64],
    seed: Option<&[f64]>,
    options: &CgOptions,
) -> Result<(Vec<f64>, SolveDiagnostics), NumericsError> {
    check_finite_inputs(a, b)?;

    // A warm start must never make things worse: only use the seed when
    // it is finite, shaped right, and its residual beats a cold (zero)
    // start's residual ‖b‖.
    let seed = seed.filter(|s| {
        s.len() == b.len() && s.iter().all(|v| v.is_finite()) && {
            let ax = a.mul_vec(s);
            let r2: f64 = b
                .iter()
                .zip(&ax)
                .map(|(bi, axi)| (bi - axi) * (bi - axi))
                .sum();
            r2.sqrt() < norm2(b)
        }
    });
    if seed.is_some() {
        darksil_obs::counter("numerics.warm_start", 1);
    }

    // Stage 1: the caller's CG configuration.
    let (x1, out1, converged) = conjugate_gradient_best_effort(a, b, seed, options)?;
    if converged && x1.iter().all(|v| v.is_finite()) {
        return Ok((
            x1,
            SolveDiagnostics {
                stage: SolveStage::Cg,
                cg_iterations: out1.iterations,
                residual: out1.residual,
                fallbacks: 0,
            },
        ));
    }

    // Stage 2: restart from the stalled iterate (when finite) with a
    // relaxed tolerance and twice the iteration budget.
    let relaxed = CgOptions {
        tolerance: (options.tolerance * RELAXATION).min(RELAXED_FLOOR),
        max_iterations: stage_two_budget(options, a.rows()),
        jacobi_preconditioner: true,
    };
    let warm: Option<&[f64]> = if x1.iter().all(|v| v.is_finite()) {
        Some(&x1)
    } else {
        None
    };
    let (x2, out2, converged2) = conjugate_gradient_best_effort(a, b, warm, &relaxed)?;
    let total_cg = out1.iterations + out2.iterations;
    if converged2 && x2.iter().all(|v| v.is_finite()) {
        return Ok((
            x2,
            SolveDiagnostics {
                stage: SolveStage::RestartedCg,
                cg_iterations: total_cg,
                residual: out2.residual,
                fallbacks: 1,
            },
        ));
    }

    // Stage 3: dense LU. The system is known finite, so any remaining
    // failure is a genuinely singular matrix.
    let x3 = a.to_dense().solve(b)?;
    if let Some(bad) = x3.iter().position(|v| !v.is_finite()) {
        return Err(NumericsError::NonFinite {
            context: format!("dense LU produced a non-finite solution at row {bad}"),
        });
    }
    let ax = a.mul_vec(&x3);
    let residual = norm2(
        &b.iter()
            .zip(&ax)
            .map(|(bi, axi)| bi - axi)
            .collect::<Vec<f64>>(),
    );
    Ok((
        x3,
        SolveDiagnostics {
            stage: SolveStage::DenseLu,
            cg_iterations: total_cg,
            residual,
            fallbacks: 2,
        },
    ))
}

fn stage_two_budget(options: &CgOptions, n: usize) -> usize {
    let base = if options.max_iterations == 0 {
        10 * n.max(10)
    } else {
        options.max_iterations
    };
    (2 * base).max(20)
}

/// Rejects NaN/Inf in the matrix entries or right-hand side up front so
/// the iteration never silently propagates them.
fn check_finite_inputs(a: &CsrMatrix, b: &[f64]) -> Result<(), NumericsError> {
    if let Some((row, col, value)) = a.iter().find(|(_, _, v)| !v.is_finite()) {
        return Err(NumericsError::NonFinite {
            context: format!("matrix entry ({row}, {col}) is {value}"),
        });
    }
    if let Some(bad) = b.iter().position(|v| !v.is_finite()) {
        return Err(NumericsError::NonFinite {
            context: format!("right-hand side entry {bad} is {}", b[bad]),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_to_reference(0, 1.0);
        t.to_csr()
    }

    #[test]
    fn healthy_system_stays_in_stage_one() {
        let a = laplacian(30);
        let b = vec![1.0; 30];
        let (x, diag) = solve_spd_robust(&a, &b, &CgOptions::default()).expect("solves");
        assert_eq!(diag.stage, SolveStage::Cg);
        assert_eq!(diag.fallbacks, 0);
        let r = a.mul_vec(&x);
        assert!((r[10] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn starved_cg_falls_back_but_still_solves() {
        // A 2-iteration cap cannot converge a 100-node chain; the chain
        // must escalate yet still return an accurate solution.
        let a = laplacian(100);
        let b = vec![1.0; 100];
        let opts = CgOptions {
            tolerance: 1.0e-12,
            max_iterations: 2,
            jacobi_preconditioner: true,
        };
        let (x, diag) = solve_spd_robust(&a, &b, &opts).expect("fallback chain solves");
        assert!(diag.fallbacks >= 1, "expected at least one fallback");
        let r = a.mul_vec(&x);
        for (i, ri) in r.iter().enumerate() {
            assert!((ri - 1.0).abs() < 1e-3, "row {i}: {ri}");
        }
    }

    #[test]
    fn dense_lu_rescues_breakdown() {
        // A negative-definite matrix makes CG break down immediately
        // (p·Ap < 0); LU still solves it. (The chain does not require
        // SPD to terminate.)
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, -1.0);
        t.add(1, 1, -1.0);
        let a = t.to_csr();
        let (x, diag) = solve_spd_robust(&a, &[3.0, 3.0], &CgOptions::default()).expect("lu");
        assert_eq!(diag.stage, SolveStage::DenseLu);
        assert!((x[0] + 3.0).abs() < 1e-9 && (x[1] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn nan_inputs_are_rejected_by_name() {
        let a = laplacian(4);
        let mut b = vec![1.0; 4];
        b[2] = f64::NAN;
        let err = solve_spd_robust(&a, &b, &CgOptions::default()).expect_err("rejects NaN");
        assert!(matches!(err, NumericsError::NonFinite { .. }));
        assert!(err.to_string().contains("entry 2"), "{err}");

        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, f64::INFINITY);
        t.add(1, 1, 1.0);
        let err = solve_spd_robust(&t.to_csr(), &[1.0, 1.0], &CgOptions::default())
            .expect_err("rejects Inf");
        assert!(err.to_string().contains("(0, 0)"), "{err}");
    }

    #[test]
    fn warm_start_from_exact_solution_converges_immediately() {
        let a = laplacian(40);
        let b = vec![1.0; 40];
        let (x, _) = solve_spd_robust(&a, &b, &CgOptions::default()).expect("cold solves");
        let (x2, diag) =
            solve_spd_robust_from(&a, &b, Some(&x), &CgOptions::default()).expect("warm solves");
        assert_eq!(diag.stage, SolveStage::Cg);
        assert!(
            diag.cg_iterations <= 1,
            "exact seed should need at most one iteration, took {}",
            diag.cg_iterations
        );
        let r = a.mul_vec(&x2);
        assert!((r[20] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bad_seed_is_discarded() {
        let a = laplacian(20);
        let b = vec![1.0; 20];
        // A wildly wrong seed (worse than a zero start) and a NaN seed
        // must both be ignored rather than poisoning the solve.
        for seed in [vec![1.0e9; 20], vec![f64::NAN; 20], vec![0.0; 5]] {
            let (x, _) = solve_spd_robust_from(&a, &b, Some(&seed), &CgOptions::default())
                .expect("solves despite bad seed");
            let r = a.mul_vec(&x);
            assert!((r[10] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn singular_matrix_still_errors() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(0, 1, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 1, 1.0);
        let err = solve_spd_robust(&t.to_csr(), &[1.0, 2.0], &CgOptions::default())
            .expect_err("singular");
        assert!(matches!(err, NumericsError::SingularMatrix { .. }));
    }
}
