//! Dense row-major matrices and LU factorisation with partial pivoting.

use crate::NumericsError;

/// A dense, row-major `f64` matrix.
///
/// Sized for the small-to-medium systems that appear in this workspace:
/// least-squares normal equations (a handful of unknowns) and
/// cross-validation of the sparse thermal solver (a few hundred nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "from_rows: ragged row");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn mul_mat(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "mul_mat: dimension mismatch");
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Factorises a square matrix as `P·A = L·U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] if a pivot vanishes and
    /// [`NumericsError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<LuFactors, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                context: format!(
                    "LU requires a square matrix, got {}×{}",
                    self.rows, self.cols
                ),
            });
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: pick the largest magnitude in this column.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in col + 1..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < f64::EPSILON * 16.0 {
                return Err(NumericsError::SingularMatrix { pivot: col });
            }
            if pivot_row != col {
                lu.swap_rows(col, pivot_row);
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let diag = lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] / diag;
                lu[(r, col)] = factor;
                for c in col + 1..n {
                    let v = lu[(col, c)];
                    lu[(r, c)] -= factor * v;
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Convenience: factorise and solve `A·x = b` in one call.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`DenseMatrix::lu`] and
    /// [`LuFactors::solve`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        self.lu()?.solve(b)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// The result of an LU factorisation: packed `L` (unit diagonal, below)
/// and `U` (on/above the diagonal) plus the row permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong
    /// length.
    // The triangular substitution loops index `x` strictly below/above
    // `i`; iterator forms would obscure the dependence structure.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                context: format!("rhs has {} rows, matrix has {}", b.len(), n),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorised matrix.
    #[must_use]
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.sign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solve_3x3() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = a.solve(&b).expect("solve succeeds");
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).expect("solve succeeds");
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.lu() {
            Err(NumericsError::SingularMatrix { pivot }) => assert_eq!(pivot, 1),
            other => unreachable!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let det = a.lu().expect("numerics succeed").determinant();
        assert!((det + 1.0).abs() < 1e-12);
        let i3 = DenseMatrix::identity(3);
        assert!((i3.lu().expect("numerics succeed").determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_and_matmul() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
        let ata = at.mul_mat(&a);
        assert_eq!(ata[(0, 0)], 10.0);
        assert_eq!(ata[(1, 1)], 20.0);
        assert_eq!(ata[(0, 1)], ata[(1, 0)]);
    }

    #[test]
    fn factor_once_solve_many() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().expect("numerics succeed");
        for b in [[1.0, 2.0], [5.0, -1.0], [0.0, 0.0]] {
            let x = lu.solve(&b).expect("solve succeeds");
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let lu = DenseMatrix::identity(3).lu().expect("numerics succeed");
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn moderately_large_diagonally_dominant_system() {
        // Mimics a thermal conductance matrix: diagonally dominant SPD.
        let n = 60;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 4.0;
            if i > 0 {
                a[(i, i - 1)] = -1.0;
                a[(i - 1, i)] = -1.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let x = a.solve(&b).expect("solve succeeds");
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
