//! Criterion microbenchmarks of the robust SPD solver on RC-grid
//! systems like the thermal model's: a W×H grid Laplacian with a
//! leak to the reference node, solved for a checkerboard load.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darksil_numerics::{factor_spd, solve_spd_robust, CgOptions, CsrMatrix, TripletMatrix};

/// A W×H grid Laplacian: lateral conductances between 4-neighbours
/// plus a vertical leak to the reference node, matching the structure
/// of the thermal RC networks the solver sees in production.
fn grid_laplacian(w: usize, h: usize) -> CsrMatrix {
    let n = w * h;
    let mut t = TripletMatrix::new(n, n);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.stamp_conductance(i, i + 1, 2.0);
            }
            if y + 1 < h {
                t.stamp_conductance(i, i + w, 2.0);
            }
            t.stamp_to_reference(i, 0.5);
        }
    }
    t.to_csr()
}

fn checkerboard_load(n: usize) -> Vec<f64> {
    (0..n).map(|i| if i % 2 == 0 { 3.0 } else { 0.0 }).collect()
}

fn bench_solve_spd(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_spd");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));

    for (label, w, h) in [
        ("small_8x8", 8, 8),
        ("medium_20x20", 20, 20),
        ("large_40x40", 40, 40),
    ] {
        let a = grid_laplacian(w, h);
        let b = checkerboard_load(w * h);
        let options = CgOptions::default();
        g.bench_with_input(BenchmarkId::new("grid", label), &a, |bench, a| {
            bench.iter(|| {
                let (x, diag) = solve_spd_robust(black_box(a), black_box(&b), &options)
                    .expect("SPD grid system must solve");
                black_box((x, diag))
            });
        });
    }
    g.finish();
}

/// The fig8 hot-path comparison: one matrix, many right-hand sides
/// (like the ~100 steady-state solves behind a thermal-aware placement).
/// "cg_per_rhs" pays a full iterative solve per load; "factor_once"
/// factors once and substitutes per load.
fn bench_factor_vs_cg(c: &mut Criterion) {
    const RHS_COUNT: usize = 32;

    let mut g = c.benchmark_group("factor_once_vs_cg_per_rhs");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(20);

    for (label, w, h) in [
        ("small_8x8", 8, 8),
        ("medium_20x20", 20, 20),
        ("large_40x40", 40, 40),
    ] {
        let a = grid_laplacian(w, h);
        let n = w * h;
        let loads: Vec<Vec<f64>> = (0..RHS_COUNT)
            .map(|k| {
                (0..n)
                    .map(|i| if (i + k) % 3 == 0 { 3.0 } else { 0.5 })
                    .collect()
            })
            .collect();
        let options = CgOptions::default();

        g.bench_with_input(BenchmarkId::new("cg_per_rhs", label), &a, |bench, a| {
            bench.iter(|| {
                for b in &loads {
                    let (x, _) = solve_spd_robust(black_box(a), black_box(b), &options)
                        .expect("SPD grid system must solve");
                    black_box(x);
                }
            });
        });

        g.bench_with_input(BenchmarkId::new("factor_once", label), &a, |bench, a| {
            bench.iter(|| {
                let factors = factor_spd(black_box(a)).expect("grid factors");
                let xs = factors.solve_many(black_box(&loads)).expect("batch solves");
                black_box(xs)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solve_spd, bench_factor_vs_cg);
criterion_main!(benches);
