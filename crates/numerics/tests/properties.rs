//! Property tests for the numerical kernels.

use darksil_numerics::ode::LinearOde;
use darksil_numerics::{
    conjugate_gradient, fit_least_squares, polynomial_fit, CgOptions, DenseMatrix, TripletMatrix,
};
use proptest::prelude::*;

/// A random strictly diagonally dominant matrix — always non-singular,
/// and SPD when built symmetrically.
fn diag_dominant(entries: &[f64], n: usize) -> DenseMatrix {
    let mut a = DenseMatrix::zeros(n, n);
    let mut k = 0;
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = entries[k % entries.len()];
                k += 1;
                a[(i, j)] = v;
                row_sum += v.abs();
            }
        }
        a[(i, i)] = row_sum + 1.0;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_solve_has_small_residual(
        entries in prop::collection::vec(-2.0_f64..2.0, 30),
        rhs in prop::collection::vec(-10.0_f64..10.0, 6),
    ) {
        let a = diag_dominant(&entries, 6);
        let x = a.solve(&rhs).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&rhs) {
            prop_assert!((ri - bi).abs() < 1e-8, "{ri} vs {bi}");
        }
    }

    #[test]
    fn determinant_of_product_scaled_identity(scale in 0.1_f64..10.0) {
        let n = 4;
        let mut a = DenseMatrix::identity(n);
        for i in 0..n {
            a[(i, i)] = scale;
        }
        let det = a.lu().unwrap().determinant();
        prop_assert!((det - scale.powi(n as i32)).abs() < 1e-9 * scale.powi(n as i32));
    }

    #[test]
    fn csr_mul_matches_dense(
        coords in prop::collection::vec((0_usize..8, 0_usize..8, -3.0_f64..3.0), 1..40),
        x in prop::collection::vec(-5.0_f64..5.0, 8),
    ) {
        let mut t = TripletMatrix::new(8, 8);
        for &(r, c, v) in &coords {
            t.add(r, c, v);
        }
        let a = t.to_csr();
        let sparse = a.mul_vec(&x);
        let dense = a.to_dense().mul_vec(&x);
        for (s, d) in sparse.iter().zip(&dense) {
            prop_assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn triplet_duplicates_accumulate(
        r in 0_usize..4,
        c in 0_usize..4,
        values in prop::collection::vec(-5.0_f64..5.0, 1..10),
    ) {
        let mut t = TripletMatrix::new(4, 4);
        for &v in &values {
            t.add(r, c, v);
        }
        let expect: f64 = values.iter().filter(|v| **v != 0.0).sum();
        prop_assert!((t.to_csr().get(r, c) - expect).abs() < 1e-12);
    }

    #[test]
    fn cg_solves_random_spd_networks(
        conductances in prop::collection::vec(0.05_f64..5.0, 9),
        grounds in prop::collection::vec(0.01_f64..1.0, 2),
        rhs in prop::collection::vec(-3.0_f64..3.0, 10),
    ) {
        let n = 10;
        let mut t = TripletMatrix::new(n, n);
        for (i, &g) in conductances.iter().enumerate() {
            t.stamp_conductance(i, i + 1, g);
        }
        t.stamp_to_reference(0, grounds[0]);
        t.stamp_to_reference(n - 1, grounds[1]);
        let a = t.to_csr();
        let x = conjugate_gradient(&a, &rhs, &CgOptions::default()).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&rhs) {
            prop_assert!((ri - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn polynomial_fit_recovers_exact_lines(
        c0 in -10.0_f64..10.0,
        c1 in -10.0_f64..10.0,
    ) {
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 2.0).collect();
        let y: Vec<f64> = x.iter().map(|v| c0 + c1 * v).collect();
        let c = polynomial_fit(&x, &y, 1).unwrap();
        prop_assert!((c[0] - c0).abs() < 1e-8);
        prop_assert!((c[1] - c1).abs() < 1e-8);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns(
        y in prop::collection::vec(-5.0_f64..5.0, 6),
    ) {
        // Design: [1, x, x²] over fixed abscissae.
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let mut design = DenseMatrix::zeros(6, 3);
        for (i, &xi) in x.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = xi;
            design[(i, 2)] = xi * xi;
        }
        let c = fit_least_squares(&design, &y).unwrap();
        let fitted = design.mul_vec(&c);
        let residual: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        // Normal equations ⇒ Aᵀ·r = 0.
        let atr = design.transpose().mul_vec(&residual);
        for v in atr {
            prop_assert!(v.abs() < 1e-6, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn backward_euler_steady_state_is_fixed_point(
        g in 0.1_f64..10.0,
        cap in 0.1_f64..10.0,
        p in 0.0_f64..10.0,
        dt in 0.001_f64..1.0,
    ) {
        let mut t = TripletMatrix::new(1, 1);
        t.stamp_to_reference(0, g);
        let sys = LinearOde::new(t.to_csr(), vec![cap]).unwrap();
        let stepper = sys.backward_euler(dt).unwrap();
        let x_star = p / g;
        let next = stepper.step(&[x_star], &[p]).unwrap();
        prop_assert!((next[0] - x_star).abs() < 1e-8 * (1.0 + x_star));
    }
}

// Properties of the robust solver chain: whatever the conductance
// topology and however starved the CG stage is, `solve_spd_robust`
// still delivers an accurate solution — it just reports the fallbacks
// it needed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A healthy SPD system is solved accurately regardless of the
    /// random conductances.
    #[test]
    fn robust_solver_is_accurate_on_random_spd(
        edges in prop::collection::vec(0.1_f64..10.0, 19),
        grounds in prop::collection::vec(0.5_f64..5.0, 20),
        rhs in prop::collection::vec(-10.0_f64..10.0, 20),
    ) {
        use darksil_numerics::solve_spd_robust;
        let n = 20;
        let mut t = TripletMatrix::new(n, n);
        for (i, &g) in edges.iter().enumerate() {
            t.stamp_conductance(i, i + 1, g);
        }
        for (i, &g) in grounds.iter().enumerate() {
            t.stamp_to_reference(i, g);
        }
        let a = t.to_csr();
        let (x, diag) = solve_spd_robust(&a, &rhs, &CgOptions::default())
            .expect("healthy SPD system must solve");
        let residual: f64 = a
            .mul_vec(&x)
            .iter()
            .zip(&rhs)
            .map(|(ax, b)| (ax - b) * (ax - b))
            .sum::<f64>()
            .sqrt();
        let scale = 1.0 + rhs.iter().map(|b| b * b).sum::<f64>().sqrt();
        prop_assert!(residual < 1e-5 * scale, "residual {residual} via {:?}", diag.stage);
    }

    /// Starving CG of iterations never loses the answer: the chain
    /// falls back (restarted CG, then dense LU) and the final solution
    /// is still accurate.
    #[test]
    fn starved_cg_still_solves_via_fallbacks(
        edges in prop::collection::vec(0.1_f64..10.0, 19),
        rhs in prop::collection::vec(-10.0_f64..10.0, 20),
        cap in 1_usize..4,
    ) {
        use darksil_numerics::solve_spd_robust;
        let n = 20;
        let mut t = TripletMatrix::new(n, n);
        for (i, &g) in edges.iter().enumerate() {
            t.stamp_conductance(i, i + 1, g);
        }
        for i in 0..n {
            t.stamp_to_reference(i, 1.0);
        }
        let a = t.to_csr();
        let options = CgOptions {
            max_iterations: cap,
            ..CgOptions::default()
        };
        let (x, diag) = solve_spd_robust(&a, &rhs, &options)
            .expect("fallback chain must rescue a starved CG");
        let residual: f64 = a
            .mul_vec(&x)
            .iter()
            .zip(&rhs)
            .map(|(ax, b)| (ax - b) * (ax - b))
            .sum::<f64>()
            .sqrt();
        let scale = 1.0 + rhs.iter().map(|b| b * b).sum::<f64>().sqrt();
        prop_assert!(residual < 1e-4 * scale, "residual {residual} via {:?}", diag.stage);
        prop_assert!(x.iter().all(|v| v.is_finite()));
    }
}

/// Builds a random `w×h` RC-grid conductance matrix — the exact sparsity
/// shape of a floorplan's thermal network.
fn random_rc_grid(
    w: usize,
    h: usize,
    edges: &[f64],
    grounds: &[f64],
) -> darksil_numerics::CsrMatrix {
    let n = w * h;
    let mut t = TripletMatrix::new(n, n);
    let mut k = 0;
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.stamp_conductance(i, i + 1, edges[k % edges.len()]);
                k += 1;
            }
            if y + 1 < h {
                t.stamp_conductance(i, i + w, edges[k % edges.len()]);
                k += 1;
            }
            t.stamp_to_reference(i, grounds[i % grounds.len()]);
        }
    }
    t.to_csr()
}

fn residual_of(a: &darksil_numerics::CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ax, bi)| (ax - bi) * (ax - bi))
        .sum::<f64>()
        .sqrt()
}

// Properties of the factor-cached fast path: a direct LDLᵀ solve must
// agree with the iterative chain, diagonal-only refactorisation must be
// indistinguishable from factoring fresh, and warm starts must never
// make a solve worse.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The factored path and `solve_spd_robust` agree to tolerance on
    /// random SPD RC grids.
    #[test]
    fn factored_path_agrees_with_robust_chain(
        w in 2_usize..7,
        h in 2_usize..7,
        edges in prop::collection::vec(0.1_f64..10.0, 8),
        grounds in prop::collection::vec(0.05_f64..2.0, 8),
        loads in prop::collection::vec(-10.0_f64..10.0, 8),
    ) {
        use darksil_numerics::{factor_spd, solve_spd_robust};
        let a = random_rc_grid(w, h, &edges, &grounds);
        let n = w * h;
        let b: Vec<f64> = (0..n).map(|i| loads[i % loads.len()]).collect();
        let factors = factor_spd(&a).expect("RC grids are SPD");
        let x = factors.solve(&b).expect("factored solve succeeds");
        let (x_chain, _) = solve_spd_robust(&a, &b, &CgOptions::default())
            .expect("robust chain solves");
        let scale = 1.0 + b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(residual_of(&a, &x, &b) < 1e-8 * scale);
        for (xf, xc) in x.iter().zip(&x_chain) {
            prop_assert!((xf - xc).abs() < 1e-5 * scale, "{xf} vs {xc}");
        }
    }

    /// Refactorising after a diagonal-only update produces exactly the
    /// same factors as factoring the updated matrix from scratch.
    #[test]
    fn diagonal_refactor_matches_fresh_factorisation(
        w in 2_usize..6,
        h in 2_usize..6,
        edges in prop::collection::vec(0.1_f64..10.0, 8),
        grounds in prop::collection::vec(0.05_f64..2.0, 8),
        bumps in prop::collection::vec(0.0_f64..3.0, 8),
    ) {
        use darksil_numerics::factor_spd;
        let a = random_rc_grid(w, h, &edges, &grounds);
        let n = w * h;
        let new_diag: Vec<f64> = a
            .diagonal()
            .iter()
            .enumerate()
            .map(|(i, d)| d + bumps[i % bumps.len()])
            .collect();

        let mut updated = factor_spd(&a).expect("RC grids are SPD");
        updated.refactor_diagonal(&new_diag).expect("diagonal update stays SPD");

        let mut t = TripletMatrix::new(n, n);
        for (r, c, v) in a.iter() {
            if r != c {
                t.add(r, c, v);
            }
        }
        for (i, &d) in new_diag.iter().enumerate() {
            t.add(i, i, d);
        }
        let fresh = factor_spd(&t.to_csr()).expect("updated grid is SPD");
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        prop_assert_eq!(
            updated.solve(&b).expect("updated solve"),
            fresh.solve(&b).expect("fresh solve")
        );
    }

    /// A warm-started solve never returns a worse residual than the
    /// cold-started one (up to the convergence target both are allowed
    /// to stop at) — whatever seed is offered, including terrible ones.
    #[test]
    fn warm_start_never_worse_than_cold(
        w in 2_usize..6,
        h in 2_usize..6,
        edges in prop::collection::vec(0.1_f64..10.0, 8),
        grounds in prop::collection::vec(0.05_f64..2.0, 8),
        loads in prop::collection::vec(-10.0_f64..10.0, 8),
        seed_scale in -2.0_f64..2.0,
    ) {
        use darksil_numerics::{solve_spd_robust, solve_spd_robust_from};
        let a = random_rc_grid(w, h, &edges, &grounds);
        let n = w * h;
        let b: Vec<f64> = (0..n).map(|i| loads[i % loads.len()]).collect();
        let options = CgOptions::default();

        let (x_cold, cold) = solve_spd_robust(&a, &b, &options).expect("cold solves");
        // Seed anywhere between "garbage" and "nearly exact".
        let seed: Vec<f64> = x_cold.iter().map(|v| v * seed_scale).collect();
        let (_, warm) = solve_spd_robust_from(&a, &b, Some(&seed), &options)
            .expect("warm solves");

        let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let target = options.tolerance * (1.0 + norm_b);
        prop_assert!(
            warm.residual <= cold.residual.max(target) * (1.0 + 1e-9),
            "warm residual {} exceeds cold {} (target {target})",
            warm.residual,
            cold.residual
        );
        prop_assert!(warm.cg_iterations <= cold.cg_iterations + 1);
    }
}
