//! Parsec application profiles.

use std::fmt;

use darksil_archsim::{CoreModel, TraceProfile};
use darksil_units::{Gips, Hertz};

/// Maximum threads per application instance — the paper's experiments
/// run "1, 2, …, 8 parallel dependent threads" per instance (§2.3).
pub const MAX_THREADS_PER_INSTANCE: usize = 8;

/// Fraction of lost parallel efficiency that still shows up as core
/// activity (threads of a *dependent* group spin/synchronise rather than
/// halt). Used by [`AppProfile::activity`].
const SYNC_ACTIVITY_DISCOUNT: f64 = 0.3;

/// The seven Parsec applications evaluated in the paper, in the
/// (a)–(g) order of Figures 5 and 7.
///
/// # Examples
///
/// ```
/// use darksil_workload::ParsecApp;
///
/// let p = ParsecApp::Swaptions.profile();
/// // High TLP: an 8-thread instance keeps most of its efficiency …
/// assert!(p.speedup(8) > 5.0);
/// // … while canneal barely scales.
/// assert!(ParsecApp::Canneal.profile().speedup(8) < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParsecApp {
    /// (a) H.264 video encoder — the paper's running example.
    X264,
    /// (b) Option pricing; compute-bound, embarrassingly parallel maths.
    Blackscholes,
    /// (c) Body tracking; moderate TLP, pipeline-limited.
    Bodytrack,
    /// (d) Content-based similarity search; pipeline parallel.
    Ferret,
    /// (e) Cache-aware simulated annealing; memory-bound, scales poorly.
    Canneal,
    /// (f) Deduplication kernel; I/O-ish pipeline.
    Dedup,
    /// (g) Swaption pricing; the most power-hungry of the set.
    Swaptions,
}

impl ParsecApp {
    /// All seven applications in the paper's (a)–(g) order.
    pub const ALL: [Self; 7] = [
        Self::X264,
        Self::Blackscholes,
        Self::Bodytrack,
        Self::Ferret,
        Self::Canneal,
        Self::Dedup,
        Self::Swaptions,
    ];

    /// The calibrated profile for this application.
    ///
    /// Two parallel fractions are carried (see DESIGN.md §7 on the
    /// paper's internal tension): `parallel_fraction` governs the
    /// 1–8-thread *instance* regime every experiment runs in, while
    /// `wide_fraction` is the paper's own Amdahl fit to the 16–64-thread
    /// sweeps of Figure 4 (x264 ≈ 3× at 64 threads ⇒ p ≈ 0.68, canneal
    /// ≈ 1.5× ⇒ p ≈ 0.34 — cross-chip memory contention folded in).
    /// Trace profiles encode the ILP/memory split of §3.3; `ceff_factor`
    /// spreads the applications across the power classes visible in
    /// Figure 5 (swaptions hungriest, canneal lightest).
    #[must_use]
    pub fn profile(self) -> AppProfile {
        let (parallel_fraction, wide_fraction, ilp, mpi, ceff_factor) = match self {
            Self::X264 => (0.88, 0.68, 1.7, 0.0005, 0.97),
            Self::Blackscholes => (0.90, 0.72, 2.2, 0.0002, 0.78),
            Self::Bodytrack => (0.82, 0.55, 1.5, 0.0010, 0.87),
            Self::Ferret => (0.85, 0.66, 1.4, 0.0020, 0.94),
            Self::Canneal => (0.45, 0.34, 0.9, 0.0200, 0.69),
            Self::Dedup => (0.80, 0.60, 1.2, 0.0040, 0.82),
            Self::Swaptions => (0.93, 0.80, 2.0, 0.0002, 1.02),
        };
        AppProfile {
            app: self,
            parallel_fraction,
            wide_fraction,
            // The built-in parameters are all finite and positive, so
            // the fallible constructor is bypassed with a literal
            // rather than panicking on an impossible error.
            trace: TraceProfile {
                ilp_limit: ilp,
                misses_per_instr: mpi,
                mem_latency_ns: 60.0,
            },
            ceff_factor,
        }
    }

    /// Short lowercase name as used in the paper's figures.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::X264 => "x264",
            Self::Blackscholes => "blackscholes",
            Self::Bodytrack => "bodytrack",
            Self::Ferret => "ferret",
            Self::Canneal => "canneal",
            Self::Dedup => "dedup",
            Self::Swaptions => "swaptions",
        }
    }

    /// The (a)–(g) letter the paper's figures use for this application.
    #[must_use]
    pub const fn letter(self) -> char {
        match self {
            Self::X264 => 'a',
            Self::Blackscholes => 'b',
            Self::Bodytrack => 'c',
            Self::Ferret => 'd',
            Self::Canneal => 'e',
            Self::Dedup => 'f',
            Self::Swaptions => 'g',
        }
    }
}

impl fmt::Display for ParsecApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three-axis characterisation of one application (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Which application this profiles.
    pub app: ParsecApp,
    /// Amdahl parallel fraction `p` (0..1) within one instance
    /// (1–8 dependent threads).
    pub parallel_fraction: f64,
    /// Effective Amdahl fraction for wide (16–64 thread) scaling, as
    /// fitted in Figure 4 — lower than `parallel_fraction` because it
    /// absorbs cross-chip memory contention.
    pub wide_fraction: f64,
    /// ILP/memory characteristics for the analytic core model.
    pub trace: TraceProfile,
    /// Effective-capacitance multiplier relative to the x264 baseline
    /// power model.
    pub ceff_factor: f64,
}

impl AppProfile {
    /// Amdahl speed-up at `threads` parallel threads:
    /// `S(t) = 1 / ((1 − p) + p/t)`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn speedup(&self, threads: usize) -> f64 {
        assert!(threads > 0, "an instance has at least one thread");
        let t = threads as f64;
        1.0 / ((1.0 - self.parallel_fraction) + self.parallel_fraction / t)
    }

    /// Parallel efficiency `S(t)/t` in (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn efficiency(&self, threads: usize) -> f64 {
        self.speedup(threads) / threads as f64
    }

    /// Activity factor α of each core running one of `threads`
    /// dependent threads. Lost efficiency only partially reduces
    /// switching activity (synchronising threads spin):
    /// `α = 1 − d·(1 − S(t)/t)` with `d = 0.3`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn activity(&self, threads: usize) -> f64 {
        1.0 - SYNC_ACTIVITY_DISCOUNT * (1.0 - self.efficiency(threads))
    }

    /// Speed-up when one application is spread wide across the chip
    /// (the 16–64-thread regime of Figure 4), using the contention-
    /// laden `wide_fraction`. This is the curve behind the parallelism
    /// wall of §2.3.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn speedup_wide(&self, threads: usize) -> f64 {
        assert!(threads > 0, "an instance has at least one thread");
        let t = threads as f64;
        1.0 / ((1.0 - self.wide_fraction) + self.wide_fraction / t)
    }

    /// Throughput of one instance running `threads` threads at
    /// frequency `f`: the single-thread GIPS of the analytic core model
    /// times the Amdahl speed-up.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn instance_gips(&self, core: &CoreModel, threads: usize, f: Hertz) -> Gips {
        Gips::new(core.gips(&self.trace, f) * self.speedup(threads))
    }
}

darksil_json::impl_json_enum!(ParsecApp {
    X264 => "x264",
    Blackscholes => "blackscholes",
    Bodytrack => "bodytrack",
    Ferret => "ferret",
    Canneal => "canneal",
    Dedup => "dedup",
    Swaptions => "swaptions",
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_speedup_targets() {
        // Figure 4 (at 2 GHz): x264 ≈ 3× at 64 threads, bodytrack ≈ 2×,
        // canneal ≈ 1.5×.
        let x264 = ParsecApp::X264.profile();
        assert!(
            (x264.speedup_wide(64) - 3.0).abs() < 0.3,
            "{}",
            x264.speedup_wide(64)
        );
        let bodytrack = ParsecApp::Bodytrack.profile();
        assert!(
            (bodytrack.speedup_wide(64) - 2.2).abs() < 0.3,
            "{}",
            bodytrack.speedup_wide(64)
        );
        let canneal = ParsecApp::Canneal.profile();
        assert!(
            (canneal.speedup_wide(64) - 1.5).abs() < 0.2,
            "{}",
            canneal.speedup_wide(64)
        );
        // The wide fit always lies below the intra-instance fraction.
        for app in ParsecApp::ALL {
            let p = app.profile();
            assert!(p.wide_fraction < p.parallel_fraction);
        }
    }

    #[test]
    fn speedup_is_monotonic_and_bounded() {
        for app in ParsecApp::ALL {
            let p = app.profile();
            let mut last = 0.0;
            for t in 1..=64 {
                let s = p.speedup(t);
                assert!(s >= last, "{app} not monotone at {t}");
                assert!(s <= t as f64 + 1e-12, "{app} super-linear at {t}");
                last = s;
            }
            // Amdahl ceiling.
            assert!(p.speedup(1_000_000) < 1.0 / (1.0 - p.parallel_fraction) + 1e-6);
        }
    }

    #[test]
    fn single_thread_is_baseline() {
        for app in ParsecApp::ALL {
            let p = app.profile();
            assert!((p.speedup(1) - 1.0).abs() < 1e-12);
            assert!((p.efficiency(1) - 1.0).abs() < 1e-12);
            assert!((p.activity(1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn activity_in_range_and_decreasing() {
        for app in ParsecApp::ALL {
            let p = app.profile();
            let mut last = 1.0;
            for t in 1..=MAX_THREADS_PER_INSTANCE {
                let a = p.activity(t);
                assert!(a > 0.5 && a <= 1.0, "{app} α({t}) = {a}");
                assert!(a <= last + 1e-12);
                last = a;
            }
        }
    }

    #[test]
    fn eight_thread_activity_matches_calibration() {
        // DESIGN.md §6: α ≈ 0.75–0.92 at 8 threads so that ≈3.3–3.7 W
        // per core at 16 nm / 3.6 GHz reproduces Figures 5 and 8.
        for app in ParsecApp::ALL {
            let a = app.profile().activity(8);
            assert!((0.7..=0.95).contains(&a), "{app} α(8) = {a}");
        }
    }

    #[test]
    fn swaptions_is_hungriest_canneal_lightest() {
        let cf: Vec<f64> = ParsecApp::ALL
            .iter()
            .map(|a| a.profile().ceff_factor)
            .collect();
        let max = cf.iter().copied().fold(0.0, f64::max);
        let min = cf.iter().copied().fold(2.0, f64::min);
        assert_eq!(ParsecApp::Swaptions.profile().ceff_factor, max);
        assert_eq!(ParsecApp::Canneal.profile().ceff_factor, min);
    }

    #[test]
    fn canneal_gains_least_from_frequency() {
        // §3.3: high-ILP apps benefit from v/f scaling, memory-bound
        // apps do not.
        let core = CoreModel::alpha_21264();
        let gain = |app: ParsecApp| {
            let p = app.profile();
            p.instance_gips(&core, 1, Hertz::from_ghz(4.0))
                / p.instance_gips(&core, 1, Hertz::from_ghz(2.0))
        };
        let canneal = gain(ParsecApp::Canneal);
        for app in [
            ParsecApp::X264,
            ParsecApp::Blackscholes,
            ParsecApp::Swaptions,
        ] {
            assert!(gain(app) > canneal, "{app} vs canneal");
        }
        assert!(canneal < 1.5);
    }

    #[test]
    fn instance_gips_scale_matches_figure11() {
        // 12 × (x264, 8 threads) at ≈3.2 GHz should land in the
        // 200–300 GIPS band of Figure 11.
        let core = CoreModel::alpha_21264();
        let one = ParsecApp::X264
            .profile()
            .instance_gips(&core, 8, Hertz::from_ghz(3.2));
        let total = one * 12.0;
        assert!(
            total.value() > 180.0 && total.value() < 320.0,
            "got {total}"
        );
    }

    #[test]
    fn letters_and_names() {
        assert_eq!(ParsecApp::X264.letter(), 'a');
        assert_eq!(ParsecApp::Swaptions.letter(), 'g');
        assert_eq!(ParsecApp::Canneal.to_string(), "canneal");
        assert_eq!(ParsecApp::ALL.len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ParsecApp::X264.profile().speedup(0);
    }
}
