//! Application model: Parsec profiles, Amdahl speed-up, and workloads.
//!
//! The paper evaluates seven applications from the Parsec benchmark
//! suite (§2.3): x264, blackscholes, bodytrack, ferret, canneal, dedup
//! and swaptions. Each application is characterised along three axes:
//!
//! * **TLP** — thread-level parallelism, captured as an Amdahl parallel
//!   fraction fitted to the Figure 4 speed-up curves,
//! * **ILP** — instruction-level parallelism and memory behaviour,
//!   captured as a [`darksil_archsim::TraceProfile`] evaluated by the
//!   analytic core model,
//! * **power class** — the application's effective switching capacitance
//!   relative to the x264 baseline of `darksil-power`.
//!
//! Applications run as *instances* of 1–8 dependent threads
//! ([`AppInstance`]); a [`Workload`] is a set of instances to be mapped
//! onto a chip. Multiple instances avoid the parallelism wall: mapping a
//! single application across hundreds of cores would leave every core
//! under-utilised and overstate dark silicon (§2.3).
//!
//! # Examples
//!
//! ```
//! use darksil_workload::{ParsecApp, Workload};
//! use darksil_archsim::CoreModel;
//! use darksil_units::Hertz;
//!
//! let profile = ParsecApp::X264.profile();
//! assert!(profile.speedup(8) > 2.0);
//!
//! // 12 instances of x264 with 8 threads each (Figure 11's workload).
//! let w = Workload::uniform(ParsecApp::X264, 12, 8)?;
//! assert_eq!(w.total_threads(), 96);
//! let gips = w.total_gips(&CoreModel::alpha_21264(), Hertz::from_ghz(3.2));
//! assert!(gips.value() > 150.0 && gips.value() < 350.0);
//! # Ok::<(), darksil_workload::WorkloadError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod app;
mod instance;

pub use app::{AppProfile, ParsecApp, MAX_THREADS_PER_INSTANCE};
pub use instance::{AppInstance, Workload, WorkloadError};
