//! Application instances and workloads.

use std::error::Error;
use std::fmt;

use darksil_archsim::CoreModel;
use darksil_units::{Gips, Hertz};

use crate::{AppProfile, ParsecApp, MAX_THREADS_PER_INSTANCE};

/// Errors produced when building workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Thread count outside `1..=MAX_THREADS_PER_INSTANCE`.
    InvalidThreadCount {
        /// The offending count.
        threads: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidThreadCount { threads } => write!(
                f,
                "thread count {threads} outside 1..={MAX_THREADS_PER_INSTANCE}"
            ),
        }
    }
}

impl Error for WorkloadError {}

/// One running copy of an application with a fixed thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppInstance {
    app: ParsecApp,
    threads: usize,
}

impl AppInstance {
    /// Creates an instance of `app` with `threads` dependent threads.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidThreadCount`] outside
    /// `1..=`[`MAX_THREADS_PER_INSTANCE`].
    pub fn new(app: ParsecApp, threads: usize) -> Result<Self, WorkloadError> {
        if threads == 0 || threads > MAX_THREADS_PER_INSTANCE {
            return Err(WorkloadError::InvalidThreadCount { threads });
        }
        Ok(Self { app, threads })
    }

    /// The application.
    #[must_use]
    pub const fn app(&self) -> ParsecApp {
        self.app
    }

    /// Number of threads (= cores this instance occupies when mapped).
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// The application's profile.
    #[must_use]
    pub fn profile(&self) -> AppProfile {
        self.app.profile()
    }

    /// Per-core activity factor of this instance.
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.profile().activity(self.threads)
    }

    /// Instance throughput at frequency `f`.
    #[must_use]
    pub fn gips(&self, core: &CoreModel, f: Hertz) -> Gips {
        self.profile().instance_gips(core, self.threads, f)
    }
}

impl fmt::Display for AppInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}t", self.app, self.threads)
    }
}

/// An ordered collection of application instances to be mapped onto a
/// chip.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    instances: Vec<AppInstance>,
}

impl Workload {
    /// Creates an empty workload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `count` identical instances of `app`, each with `threads`
    /// threads — the homogeneous workloads of Figures 5–7 and 11–14.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidThreadCount`] for invalid thread
    /// counts.
    pub fn uniform(app: ParsecApp, count: usize, threads: usize) -> Result<Self, WorkloadError> {
        let instance = AppInstance::new(app, threads)?;
        Ok(Self {
            instances: vec![instance; count],
        })
    }

    /// A mixed workload cycling through all seven applications — the
    /// "application mixes" of Figure 9.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidThreadCount`] for invalid thread
    /// counts.
    pub fn parsec_mix(instances: usize, threads: usize) -> Result<Self, WorkloadError> {
        let mut w = Self::new();
        for i in 0..instances {
            w.push(AppInstance::new(
                ParsecApp::ALL[i % ParsecApp::ALL.len()],
                threads,
            )?);
        }
        Ok(w)
    }

    /// A mix of the three highest-ILP applications (blackscholes,
    /// swaptions, x264) — the workloads that profit most from V/f
    /// scaling (§3.3).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidThreadCount`] for invalid thread
    /// counts.
    pub fn high_ilp_mix(instances: usize, threads: usize) -> Result<Self, WorkloadError> {
        let apps = [
            ParsecApp::Blackscholes,
            ParsecApp::Swaptions,
            ParsecApp::X264,
        ];
        (0..instances)
            .map(|i| AppInstance::new(apps[i % apps.len()], threads))
            .collect::<Result<Vec<_>, _>>()
            .map(|v| v.into_iter().collect())
    }

    /// A mix of the three highest-TLP applications (swaptions,
    /// blackscholes, x264 by parallel fraction) — the workloads that
    /// profit most from more, slower cores (§3.3).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidThreadCount`] for invalid thread
    /// counts.
    pub fn high_tlp_mix(instances: usize, threads: usize) -> Result<Self, WorkloadError> {
        let apps = [
            ParsecApp::Swaptions,
            ParsecApp::Blackscholes,
            ParsecApp::X264,
        ];
        (0..instances)
            .map(|i| AppInstance::new(apps[i % apps.len()], threads))
            .collect::<Result<Vec<_>, _>>()
            .map(|v| v.into_iter().collect())
    }

    /// A mix of the memory-bound / poorly scaling applications (canneal,
    /// dedup, ferret).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidThreadCount`] for invalid thread
    /// counts.
    pub fn memory_bound_mix(instances: usize, threads: usize) -> Result<Self, WorkloadError> {
        let apps = [ParsecApp::Canneal, ParsecApp::Dedup, ParsecApp::Ferret];
        (0..instances)
            .map(|i| AppInstance::new(apps[i % apps.len()], threads))
            .collect::<Result<Vec<_>, _>>()
            .map(|v| v.into_iter().collect())
    }

    /// Appends an instance.
    pub fn push(&mut self, instance: AppInstance) {
        self.instances.push(instance);
    }

    /// The instances in order.
    #[must_use]
    pub fn instances(&self) -> &[AppInstance] {
        &self.instances
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the workload has no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Total threads (= cores required to map everything).
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.instances.iter().map(AppInstance::threads).sum()
    }

    /// Total throughput with every instance at frequency `f`.
    #[must_use]
    pub fn total_gips(&self, core: &CoreModel, f: Hertz) -> Gips {
        self.instances.iter().map(|i| i.gips(core, f)).sum()
    }

    /// Iterates over the instances.
    pub fn iter(&self) -> std::slice::Iter<'_, AppInstance> {
        self.instances.iter()
    }
}

impl FromIterator<AppInstance> for Workload {
    fn from_iter<I: IntoIterator<Item = AppInstance>>(iter: I) -> Self {
        Self {
            instances: iter.into_iter().collect(),
        }
    }
}

impl Extend<AppInstance> for Workload {
    fn extend<I: IntoIterator<Item = AppInstance>>(&mut self, iter: I) {
        self.instances.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = &'a AppInstance;
    type IntoIter = std::slice::Iter<'a, AppInstance>;

    fn into_iter(self) -> Self::IntoIter {
        self.instances.iter()
    }
}

impl IntoIterator for Workload {
    type Item = AppInstance;
    type IntoIter = std::vec::IntoIter<AppInstance>;

    fn into_iter(self) -> Self::IntoIter {
        self.instances.into_iter()
    }
}

impl From<WorkloadError> for darksil_robust::DarksilError {
    fn from(e: WorkloadError) -> Self {
        Self::config(e.to_string())
    }
}

impl darksil_json::ToJson for AppInstance {
    fn to_json(&self) -> darksil_json::Json {
        darksil_json::Json::Obj(vec![
            ("app".to_string(), self.app.to_json()),
            ("threads".to_string(), self.threads.to_json()),
        ])
    }
}

impl darksil_json::FromJson for AppInstance {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        let mut obj = darksil_json::ObjReader::new(v, "AppInstance")?;
        let app = obj.req("app")?;
        let threads = obj.req("threads")?;
        obj.finish()?;
        Self::new(app, threads)
            .map_err(|e| darksil_json::JsonError::msg(e.to_string()).in_field("threads"))
    }
}

impl darksil_json::ToJson for Workload {
    fn to_json(&self) -> darksil_json::Json {
        self.instances.to_json()
    }
}

impl darksil_json::FromJson for Workload {
    fn from_json(v: &darksil_json::Json) -> Result<Self, darksil_json::JsonError> {
        Ok(Self {
            instances: Vec::from_json(v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_validation() {
        assert!(AppInstance::new(ParsecApp::X264, 0).is_err());
        assert!(AppInstance::new(ParsecApp::X264, 9).is_err());
        let i = AppInstance::new(ParsecApp::X264, 8).expect("valid workload");
        assert_eq!(i.threads(), 8);
        assert_eq!(i.app(), ParsecApp::X264);
        assert_eq!(i.to_string(), "x264×8t");
    }

    #[test]
    fn uniform_workload() {
        let w = Workload::uniform(ParsecApp::Ferret, 12, 8).expect("valid workload");
        assert_eq!(w.len(), 12);
        assert_eq!(w.total_threads(), 96);
        assert!(!w.is_empty());
    }

    #[test]
    fn mix_cycles_through_all_apps() {
        let w = Workload::parsec_mix(14, 4).expect("valid workload");
        assert_eq!(w.len(), 14);
        // Two full cycles of the seven apps.
        let x264_count = w.iter().filter(|i| i.app() == ParsecApp::X264).count();
        assert_eq!(x264_count, 2);
        assert_eq!(w.total_threads(), 56);
    }

    #[test]
    fn named_mixes_have_the_advertised_character() {
        let core = CoreModel::alpha_21264();
        let f = Hertz::from_ghz(3.0);
        let ilp = Workload::high_ilp_mix(6, 8).expect("valid workload");
        let mem = Workload::memory_bound_mix(6, 8).expect("valid workload");
        assert_eq!(ilp.len(), 6);
        assert_eq!(mem.len(), 6);
        // ILP mix out-runs the memory-bound mix at the same settings.
        assert!(ilp.total_gips(&core, f) > mem.total_gips(&core, f) * 2.0);
        // TLP mix keeps high 8-thread efficiency.
        let tlp = Workload::high_tlp_mix(6, 8).expect("valid workload");
        let avg_eff: f64 = tlp.iter().map(|i| i.profile().efficiency(8)).sum::<f64>() / 6.0;
        assert!(avg_eff > 0.5, "avg efficiency {avg_eff}");
    }

    #[test]
    fn total_gips_is_sum_of_instances() {
        let core = CoreModel::alpha_21264();
        let f = Hertz::from_ghz(3.0);
        let w = Workload::uniform(ParsecApp::Dedup, 3, 4).expect("valid workload");
        let one = AppInstance::new(ParsecApp::Dedup, 4)
            .expect("valid workload")
            .gips(&core, f);
        assert!((w.total_gips(&core, f).value() - 3.0 * one.value()).abs() < 1e-9);
    }

    #[test]
    fn more_threads_more_gips_per_instance() {
        let core = CoreModel::alpha_21264();
        let f = Hertz::from_ghz(3.0);
        for app in ParsecApp::ALL {
            let g1 = AppInstance::new(app, 1)
                .expect("valid workload")
                .gips(&core, f);
            let g8 = AppInstance::new(app, 8)
                .expect("valid workload")
                .gips(&core, f);
            assert!(g8 > g1, "{app}");
        }
    }

    #[test]
    fn collect_and_extend() {
        let mut w: Workload = (1..=4)
            .map(|t| AppInstance::new(ParsecApp::Canneal, t).expect("valid workload"))
            .collect();
        assert_eq!(w.total_threads(), 10);
        w.extend([AppInstance::new(ParsecApp::X264, 2).expect("valid workload")]);
        assert_eq!(w.len(), 5);
        let threads: Vec<usize> = (&w).into_iter().map(AppInstance::threads).collect();
        assert_eq!(threads, vec![1, 2, 3, 4, 2]);
    }

    #[test]
    fn empty_workload_zero_gips() {
        let w = Workload::new();
        assert!(w.is_empty());
        assert_eq!(
            w.total_gips(&CoreModel::alpha_21264(), Hertz::from_ghz(2.0)),
            Gips::zero()
        );
    }

    #[test]
    fn error_display() {
        let e = AppInstance::new(ParsecApp::X264, 99).unwrap_err();
        assert!(e.to_string().contains("99"));
    }
}
