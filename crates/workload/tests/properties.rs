//! Property tests for the workload model.

use darksil_archsim::CoreModel;
use darksil_units::Hertz;
use darksil_workload::{AppInstance, ParsecApp, Workload, MAX_THREADS_PER_INSTANCE};
use proptest::prelude::*;

fn any_app() -> impl Strategy<Value = ParsecApp> {
    (0_usize..7).prop_map(|i| ParsecApp::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instance GIPS is monotone in both threads and frequency for every
    /// application.
    #[test]
    fn instance_gips_is_monotone(
        app in any_app(),
        threads in 1_usize..MAX_THREADS_PER_INSTANCE,
        ghz in 0.4_f64..4.0,
    ) {
        let core = CoreModel::alpha_21264();
        let p = app.profile();
        let f = Hertz::from_ghz(ghz);
        let base = p.instance_gips(&core, threads, f);
        let more_threads = p.instance_gips(&core, threads + 1, f);
        let more_freq = p.instance_gips(&core, threads, Hertz::from_ghz(ghz + 0.2));
        prop_assert!(more_threads >= base);
        prop_assert!(more_freq >= base);
    }

    /// Workload totals decompose over instances.
    #[test]
    fn workload_totals_decompose(
        counts in prop::collection::vec((0_usize..7, 1_usize..9), 1..10),
        ghz in 1.0_f64..4.0,
    ) {
        let core = CoreModel::alpha_21264();
        let f = Hertz::from_ghz(ghz);
        let mut w = Workload::new();
        let mut threads = 0;
        let mut gips = 0.0;
        for (app_idx, t) in counts {
            let inst = AppInstance::new(ParsecApp::ALL[app_idx], t).unwrap();
            threads += t;
            gips += inst.gips(&core, f).value();
            w.push(inst);
        }
        prop_assert_eq!(w.total_threads(), threads);
        prop_assert!((w.total_gips(&core, f).value() - gips).abs() < 1e-9 * (1.0 + gips));
    }

    /// Activity is bounded and decreasing in threads for every app.
    #[test]
    fn activity_bounded(app in any_app(), threads in 1_usize..MAX_THREADS_PER_INSTANCE) {
        let p = app.profile();
        let a = p.activity(threads);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(p.activity(threads + 1) <= a + 1e-12);
    }

    /// JSON round-trips preserve workloads exactly.
    #[test]
    fn workload_json_round_trip(
        counts in prop::collection::vec((0_usize..7, 1_usize..9), 0..8),
    ) {
        let mut w = Workload::new();
        for (app_idx, t) in counts {
            w.push(AppInstance::new(ParsecApp::ALL[app_idx], t).unwrap());
        }
        let json = darksil_json::to_string_pretty(&w);
        let back: Workload = darksil_json::from_str(&json).unwrap();
        prop_assert_eq!(w, back);
    }

    /// Mixes have exactly the requested size and near-uniform app
    /// distribution.
    #[test]
    fn parsec_mix_is_balanced(instances in 1_usize..40, threads in 1_usize..9) {
        let w = Workload::parsec_mix(instances, threads).unwrap();
        prop_assert_eq!(w.len(), instances);
        for app in ParsecApp::ALL {
            let count = w.iter().filter(|i| i.app() == app).count();
            let expect = instances / 7;
            prop_assert!(count == expect || count == expect + 1);
        }
    }
}
