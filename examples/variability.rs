//! Variability-aware dark-silicon management (the DaSim/Hayat context).
//!
//! Manufactured cores differ: leakage varies log-normally core to core.
//! With dark cores to spare, a variability-aware manager lights the
//! efficient silicon and leaves leaky cores dark. This example samples
//! a varied 16 nm chip, maps the same workload onto the best and worst
//! cores, and compares power and peak temperature.
//!
//! Run with: `cargo run --release --example variability`

use darksil_floorplan::CoreId;
use darksil_mapping::{pick_low_leakage, MappedInstance, Mapping, Platform};
use darksil_power::{TechnologyNode, VariationModel};
use darksil_units::Celsius;
use darksil_workload::{ParsecApp, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform =
        Platform::for_node(TechnologyNode::Nm16)?.with_variation(VariationModel::typical(0xDA51));

    let spread = {
        let v = platform.variation();
        let min = v.leakage_factors().iter().copied().fold(9.0, f64::min);
        let max = v.leakage_factors().iter().copied().fold(0.0, f64::max);
        (min, max)
    };
    println!(
        "sampled chip: leakage factors span {:.2}×–{:.2}× (mean {:.3})\n",
        spread.0,
        spread.1,
        platform.variation().mean_leakage()
    );

    // 6 swaptions instances × 8 threads = 48 of 100 cores: plenty of
    // dark silicon to choose from.
    let workload = Workload::uniform(ParsecApp::Swaptions, 6, 8)?;
    let n = workload.total_threads();

    let best_cores = pick_low_leakage(&platform, n);
    let order = platform.variation().cores_by_leakage();
    let worst_cores: Vec<CoreId> = order.iter().rev().take(n).map(|&i| CoreId(i)).collect();

    for (name, cores) in [
        ("low-leakage pick", best_cores),
        ("leaky pick", worst_cores),
    ] {
        let mut mapping = Mapping::new(platform.core_count());
        let mut it = cores.iter().copied();
        for instance in &workload {
            let assigned: Vec<CoreId> = it.by_ref().take(instance.threads()).collect();
            mapping.push(MappedInstance {
                instance: *instance,
                cores: assigned,
                level: platform.max_level(),
            })?;
        }
        let map = mapping.steady_temperatures(&platform)?;
        let temps: Vec<Celsius> = map.die_temperatures().collect();
        let power: darksil_units::Watts = mapping.power_map_at(&platform, &temps).iter().sum();
        println!(
            "{name:<17} total {:.1} W, peak {:.2} °C",
            power.value(),
            map.peak().value()
        );
    }

    println!(
        "\nSame workload, same V/f, same core count — choosing which \
         cores stay dark\nsaves real watts. Dark silicon is a resource, \
         not only a loss."
    );
    Ok(())
}
