//! TSP — a power budget that adapts to the number of active cores.
//!
//! Computes Thermal Safe Power across active-core counts on the 16 nm
//! chip and compares the resulting total safe power against the two
//! fixed TDPs of the paper, then evaluates the Figure 10 experiment:
//! TSP-budgeted performance across technology nodes with growing dark
//! fractions.
//!
//! Run with: `cargo run --release --example tsp_budgeting`

use darksil_core::{tsp_eval, DarkSiliconEstimator};
use darksil_power::TechnologyNode;
use darksil_tsp::TspCalculator;
use darksil_units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)?;
    let platform = est.platform();
    let tsp = TspCalculator::new(platform.floorplan(), platform.thermal(), Celsius::new(80.0));

    println!("== TSP vs TDP on the 16 nm / 100-core chip ==\n");
    println!("active  TSP/core[W]  total-safe[W]   vs TDP 185 W");
    for m in [10, 20, 40, 60, 80, 100] {
        let per_core = tsp.worst_case(m)?;
        let total = per_core * m as f64;
        let verdict = if total.value() > 185.0 {
            "TSP allows MORE than the TDP"
        } else {
            "TSP is stricter here"
        };
        println!(
            "{m:>6}  {:>10.2}  {:>12.0}   {verdict}",
            per_core.value(),
            total.value()
        );
    }

    println!(
        "\nA single TDP is one point on this curve; TSP is the whole \
         curve — few active\ncores may safely burn far more than \
         TDP/m, many active cores must stay below it.\n"
    );

    println!("== Figure 10: performance under TSP across nodes ==\n");
    println!("node    dark%   active  TSP/core[W]  total[GIPS]");
    for (node, dark) in [
        (TechnologyNode::Nm16, 0.20),
        (TechnologyNode::Nm11, 0.30),
        (TechnologyNode::Nm8, 0.40),
    ] {
        let est = DarkSiliconEstimator::for_node(node)?;
        let perf = tsp_eval::tsp_performance(&est, dark)?;
        println!(
            "{:<7} {:>4.0}%  {:>6}  {:>10.2}  {:>11.0}",
            node.to_string(),
            100.0 * dark,
            perf.active_cores,
            perf.tsp_per_core.value(),
            perf.total_gips.value()
        );
    }
    println!(
        "\nMore performance per node despite more dark silicon — the \
         paper's Figure 10."
    );
    Ok(())
}
