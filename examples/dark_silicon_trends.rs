//! Dark-silicon trends across technology nodes — the paper's headline.
//!
//! For 16 nm, 11 nm and 8 nm, estimates dark silicon for every Parsec
//! application at the node's nominal maximum frequency under (a) a
//! 185 W TDP and (b) the 80 °C temperature constraint, and prints how
//! the thermal view shrinks the dark fraction.
//!
//! Run with: `cargo run --release --example dark_silicon_trends`

use darksil_core::DarkSiliconEstimator;
use darksil_power::TechnologyNode;
use darksil_units::Watts;
use darksil_workload::ParsecApp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for node in [
        TechnologyNode::Nm16,
        TechnologyNode::Nm11,
        TechnologyNode::Nm8,
    ] {
        let est = DarkSiliconEstimator::for_node(node)?;
        let f = node.nominal_max_frequency();
        println!(
            "\n== {node}: {} cores, nominal {:.1} GHz ==",
            est.platform().core_count(),
            f.as_ghz()
        );
        println!(
            "{:<14} {:>10} {:>14} {:>10}",
            "app", "dark(TDP)", "dark(thermal)", "saved"
        );

        let mut reductions = Vec::new();
        for app in ParsecApp::ALL {
            let tdp = est.under_power_budget(app, 8, f, Watts::new(185.0))?;
            let thermal = est.under_temperature_constraint(app, 8, f)?;
            let saved = tdp.dark_fraction - thermal.dark_fraction;
            if tdp.dark_fraction > 0.0 {
                reductions.push(100.0 * saved / tdp.dark_fraction);
            }
            println!(
                "{:<14} {:>9.0}% {:>13.0}% {:>9.0}pp",
                app.name(),
                100.0 * tdp.dark_fraction,
                100.0 * thermal.dark_fraction,
                100.0 * saved
            );
        }
        let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
        println!("average dark-silicon reduction from the thermal view: {avg:.0}%");
    }

    println!(
        "\nModeling dark silicon as a TDP constraint overestimates it; \
         the thermal constraint\nrecovers usable cores at every node \
         (Figure 6 of the paper)."
    );
    Ok(())
}
