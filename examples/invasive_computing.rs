//! Invade / retreat: dark-silicon management as a runtime interface.
//!
//! The paper closes by pointing at Invasive Computing as the programming
//! model for the dark-silicon era. This example drives the
//! [`darksil_mapping::ResourceArbiter`]: applications invade cores at
//! runtime, the arbiter grants each claim the fastest thermally safe
//! V/f level, and retreats return headroom to the pool.
//!
//! Run with: `cargo run --release --example invasive_computing`

use darksil_mapping::{Platform, ResourceArbiter};
use darksil_power::TechnologyNode;
use darksil_workload::ParsecApp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::for_node(TechnologyNode::Nm16)?;
    let mut arbiter = ResourceArbiter::new(platform);

    println!("100-core 16 nm chip, T_DTM = 80 °C\n");
    println!(
        "{:<28} {:>6} {:>8} {:>9} {:>9}",
        "event", "free", "claims", "GIPS", "power[W]"
    );

    let mut claims = Vec::new();
    let arrivals = [
        (ParsecApp::X264, 8),
        (ParsecApp::Swaptions, 8),
        (ParsecApp::Swaptions, 8),
        (ParsecApp::Canneal, 8),
        (ParsecApp::Ferret, 8),
        (ParsecApp::Swaptions, 8),
        (ParsecApp::Blackscholes, 8),
        (ParsecApp::Swaptions, 8),
        (ParsecApp::Dedup, 8),
        (ParsecApp::Swaptions, 8),
    ];
    for (app, threads) in arrivals {
        match arbiter.invade(app, threads) {
            Ok(id) => {
                claims.push(id);
                println!(
                    "{:<28} {:>6} {:>8} {:>9.0} {:>9.0}",
                    format!("invade {app}×{threads}t -> {id}"),
                    arbiter.free_cores(),
                    arbiter.claim_count(),
                    arbiter.total_gips().value(),
                    arbiter.total_power()?.value()
                );
            }
            Err(e) => {
                println!("{:<28} refused: {e}", format!("invade {app}×{threads}t"));
            }
        }
    }

    // The earliest claims retreat; the freed thermal headroom admits a
    // new application immediately.
    for id in claims.drain(..2) {
        arbiter.retreat(id);
        println!(
            "{:<28} {:>6} {:>8} {:>9.0} {:>9.0}",
            format!("retreat {id}"),
            arbiter.free_cores(),
            arbiter.claim_count(),
            arbiter.total_gips().value(),
            arbiter.total_power()?.value()
        );
    }
    let id = arbiter.invade(ParsecApp::Bodytrack, 8)?;
    println!(
        "{:<28} {:>6} {:>8} {:>9.0} {:>9.0}",
        format!("invade bodytrack×8t -> {id}"),
        arbiter.free_cores(),
        arbiter.claim_count(),
        arbiter.total_gips().value(),
        arbiter.total_power()?.value()
    );

    let peak = arbiter.mapping().peak_temperature(arbiter.platform())?;
    println!(
        "\nfinal peak temperature {:.1} °C — every grant was thermally vetted.",
        peak.value()
    );
    Ok(())
}
