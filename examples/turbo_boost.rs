//! Turbo boosting vs constant frequency (Figure 11 / Observation 3).
//!
//! Runs 12 instances of x264 (8 threads each) on the 16 nm chip under
//! (a) a closed-loop boosting controller oscillating around 80 °C and
//! (b) the best constant V/f level, then compares settled throughput,
//! temperature behaviour and peak power.
//!
//! Run with: `cargo run --release --example turbo_boost`

use darksil_boost::{run_boosting, run_constant, PolicyConfig};
use darksil_mapping::{place_patterned, Platform};
use darksil_power::TechnologyNode;
use darksil_units::{Hertz, Seconds};
use darksil_workload::{ParsecApp, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform =
        Platform::for_node(TechnologyNode::Nm16)?.with_boost_levels(Hertz::from_ghz(4.4))?;
    let workload = Workload::uniform(ParsecApp::X264, 12, 8)?;
    let mapping = place_patterned(platform.floorplan(), &workload, platform.max_level())?;

    // 10 ms control period keeps this demo fast; the paper (and the
    // `repro fig11 --paper` harness) uses 1 ms.
    let config = PolicyConfig {
        period: Seconds::new(0.01),
        ..PolicyConfig::default()
    };
    let horizon = Seconds::new(60.0);

    println!("simulating {} s of 96 active cores...", horizon.value());
    let boost = run_boosting(&platform, &mapping, horizon, &config)?;
    let constant = run_constant(&platform, &mapping, horizon, &config)?;

    let (f_lo, f_hi) = boost.frequency_band_tail(0.3);
    println!(
        "\nboosting:  avg {:.1} GIPS | frequency oscillates {:.1}–{:.1} GHz | \
         temperature {:.1}–{:.1} °C | peak power {:.0} W",
        boost.average_gips_tail(0.5).value(),
        f_lo.as_ghz(),
        f_hi.as_ghz(),
        boost.min_peak_temperature_tail(0.3).value(),
        boost.peak_temperature().value(),
        boost.peak_power().value()
    );
    let (cf, _) = constant.frequency_band_tail(1.0);
    println!(
        "constant:  avg {:.1} GIPS | fixed at {:.1} GHz | peak {:.1} °C | \
         peak power {:.0} W",
        constant.average_gips_tail(0.5).value(),
        cf.as_ghz(),
        constant.peak_temperature().value(),
        constant.peak_power().value()
    );

    let gain = boost.average_gips_tail(0.5) / constant.average_gips_tail(0.5);
    let power_ratio = boost.peak_power() / constant.peak_power();
    println!(
        "\nObservation 3: boosting wins by only {:.1}% of throughput but \
         needs {:.1}x the peak power —\nconstant frequencies are the \
         sustainable way to spend a thermal budget.",
        (gain - 1.0) * 100.0,
        power_ratio
    );
    Ok(())
}
