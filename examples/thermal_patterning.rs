//! Dark-silicon patterning: where the dark cores sit matters.
//!
//! Maps the same swaptions workload (a) contiguously and (b) with the
//! DaSim-style thermally optimised pattern, solves both to steady state
//! and renders the die thermal maps — the Figure 8 experiment. The
//! contiguous mapping of 52 cores at 196 W trips the 80 °C DTM
//! threshold while the patterned mapping runs 60 cores at 226 W safely.
//!
//! Run with: `cargo run --release --example thermal_patterning`

use darksil_mapping::{place_contiguous, place_thermal_aware, Platform};
use darksil_power::TechnologyNode;
use darksil_units::Celsius;
use darksil_workload::{ParsecApp, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::for_node(TechnologyNode::Nm16)?;
    let level = platform.max_level();

    let cram = Workload::uniform(ParsecApp::Swaptions, 13, 4)?; // 52 cores
    let spread = Workload::uniform(ParsecApp::Swaptions, 15, 4)?; // 60 cores

    let contiguous = place_contiguous(platform.floorplan(), &cram, level)?;
    let patterned = place_thermal_aware(&platform, &spread, level)?;

    for (name, mapping) in [("contiguous", &contiguous), ("patterned", &patterned)] {
        let map = mapping.steady_temperatures(&platform)?;
        let temps: Vec<Celsius> = map.die_temperatures().collect();
        let power: darksil_units::Watts = mapping.power_map_at(&platform, &temps).iter().sum();
        println!(
            "\n== {name}: {} active cores @ {:.1} GHz, {:.0} W total ==",
            mapping.active_core_count(),
            level.frequency.as_ghz(),
            power.value()
        );
        println!(
            "peak {:.1} °C — {}",
            map.peak().value(),
            if map.peak() > platform.t_dtm() {
                "EXCEEDS T_DTM (DTM would throttle)"
            } else {
                "below T_DTM"
            }
        );
        // One glyph per core, fixed 64–82 °C scale so the two maps are
        // directly comparable (denser glyph = hotter).
        println!(
            "{}",
            map.to_grid_map(platform.floorplan())?
                .render_ascii_scaled(64.0, 82.0)
        );
    }

    println!(
        "Patterning turns dark cores into thermal buffers: more active \
         cores, more total\npower, and still a cooler peak (Figure 8)."
    );
    Ok(())
}
