//! Quickstart: how much of a 16 nm 100-core chip goes dark?
//!
//! Builds the paper's evaluation platform, estimates dark silicon for
//! one application under a TDP budget and under the thermal constraint,
//! and prints the comparison — the core workflow of the library.
//!
//! Run with: `cargo run --release --example quickstart`

use darksil_core::DarkSiliconEstimator;
use darksil_power::TechnologyNode;
use darksil_units::{Hertz, Watts};
use darksil_workload::ParsecApp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 16 nm platform: 100 Alpha-class cores, 5.1 mm² each,
    // HotSpot-style package, 80 °C DTM threshold.
    let est = DarkSiliconEstimator::for_node(TechnologyNode::Nm16)?;

    let app = ParsecApp::Swaptions; // the most power-hungry of the suite
    let f = Hertz::from_ghz(3.6); // nominal maximum at 16 nm

    println!("== {app} at {f}, 8 threads per instance ==\n");

    for tdp in [Watts::new(220.0), Watts::new(185.0)] {
        let e = est.under_power_budget(app, 8, f, tdp)?;
        println!(
            "TDP {tdp}: {} active / {} dark ({:.0}% dark), \
             peak {:.1} °C{}",
            e.active_cores,
            e.dark_cores,
            100.0 * e.dark_fraction,
            e.peak_temperature.value(),
            if e.thermal_violation {
                "  << exceeds T_DTM!"
            } else {
                ""
            }
        );
    }

    let thermal = est.under_temperature_constraint(app, 8, f)?;
    println!(
        "T_DTM = 80 °C constraint: {} active / {} dark ({:.0}% dark), \
         peak {:.1} °C, {:.0} W total",
        thermal.active_cores,
        thermal.dark_cores,
        100.0 * thermal.dark_fraction,
        thermal.peak_temperature.value(),
        thermal.total_power.value(),
    );

    println!(
        "\nObservation 1: a fixed TDP either under- or over-estimates \
         dark silicon;\nthe temperature constraint is the accurate model."
    );
    Ok(())
}
